"""Extension — off-line replay vs on-line simulation (§7 future work).

"Finally we plan to compare off-line simulations results with those
produced by on-line simulators."  Our stack contains both: running the
application skeleton directly on a calibrated platform model *is* an
on-line simulation (the §2 BigSim-style approach: computation is not
executed for real, delays are simulated); replaying its acquired trace is
the off-line approach.  This bench compares their predictions against the
ground truth, per instance, together with the cost of each method.
"""

import tempfile
import time

import pytest

from _harness import capped, emit_table
from repro.apps import LuWorkload, lu_class
from repro.core.acquisition import acquire
from repro.core.calibration import calibrate_flop_rate, calibrate_network
from repro.core.replay import TraceReplayer
from repro.platforms import bordereau
from repro.smpi import MpiRuntime, round_robin_deployment
from repro.tracer import VirtualCounterBank

INSTANCES = [("S", 4), ("S", 8), ("S", 16)]


def run_bench():
    ground_truth = bordereau(32)
    deployment4 = round_robin_deployment(ground_truth, 4)
    flops = calibrate_flop_rate(ground_truth, deployment4,
                                LuWorkload("S", 4).program, runs=3,
                                jitter=0.002)
    network = calibrate_network(ground_truth, deployment4[:2])
    calibrated = bordereau(32, ground_truth=False, speed=flops.rate)

    lines = [
        "Extension - on-line simulation vs off-line trace replay "
        "(LU, bordereau)",
        f"(calibrated rate {flops.rate:.4g} flop/s)",
        "",
        f"{'inst.':>7} {'actual':>9} {'online':>16} {'offline':>17}",
        f"{'':>7} {'':>9} {'pred.':>8} {'err':>7} {'pred.':>8} {'err':>8}",
    ]
    rows = {}
    for cls, procs in INSTANCES:
        workload = LuWorkload(cls, procs)
        # Ground truth ("reality").
        actual = MpiRuntime(
            ground_truth, round_robin_deployment(ground_truth, procs),
            papi=VirtualCounterBank(procs),
        ).run(workload.program).time
        # On-line: same program, calibrated constant-rate platform.
        online = MpiRuntime(
            calibrated, round_robin_deployment(calibrated, procs),
            comm_model=network.model, papi=VirtualCounterBank(procs),
        ).run(workload.program).time
        # Off-line: acquire on ground truth, replay on calibrated.
        with tempfile.TemporaryDirectory() as workdir:
            acq = acquire(workload.program, ground_truth, procs,
                          workdir=workdir, papi_jitter=0.002,
                          measure_application=False)
            offline = TraceReplayer(
                calibrated, round_robin_deployment(calibrated, procs),
                comm_model=network.model,
            ).replay(acq.trace_dir).simulated_time
        err_on = (online - actual) / actual
        err_off = (offline - actual) / actual
        rows[(cls, procs)] = (actual, online, err_on, offline, err_off)
        lines.append(
            f"{cls + '/' + str(procs):>7} {actual:>8.2f}s "
            f"{online:>7.2f}s {100 * err_on:>+6.1f}% "
            f"{offline:>7.2f}s {100 * err_off:>+7.1f}%"
        )
    lines += [
        "",
        "Both methods share the calibration error; the off-line replay "
        "additionally",
        "quantises computation into PAPI-measured bursts, so the two "
        "predictions",
        "agree closely with each other — the consistency the paper's "
        "future-work",
        "comparison was after.",
    ]
    emit_table("ext_online_vs_offline.txt", lines)
    return rows


@pytest.mark.benchmark(group="ext-online-offline")
def test_ext_online_vs_offline(benchmark):
    rows = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    for (cls, procs), (actual, online, err_on, offline, err_off) in rows.items():
        # Both predictors stay inside the paper's error envelope...
        assert abs(err_on) < 0.55
        assert abs(err_off) < 0.55
        # ...and agree with each other much more than with reality.
        assert abs(online - offline) / actual < 0.10
