"""§6.5 — acquiring a large trace: LU class D on 1024 processes, folded
(factor 8) onto 32 four-core bordereau nodes (128 cores, about a third of
the cluster).

Paper:
* acquisition (incl. extraction and gathering) took < 25 minutes,
* the TI trace is 32.5 GiB — 7.8x smaller than the 252.5 GiB TAU trace,
* gzip compresses the TI trace to 1.2 GiB (~27x).

Sizes are exact (analytic profiler); the acquisition-time estimate uses
the measured per-record extractor cost, a simulated 4-nomial gather of
the real per-node volumes, and the instrumented-execution estimate from a
capped simulated run of a folded class-D slice (REPRO_PAPER_SCALE=1 runs
the full folded instance instead — hours).
"""

import tempfile

import pytest

from _harness import PAPER_SCALE, capped, emit_table, scale_note
from repro.apps import LuWorkload, lu_class
from repro.apps.lu_profile import (
    lu_instance_profile, lu_rank_profile, rank_burst_mix, sample_rank_lines,
)
from repro.core.acquisition import AcquisitionMode, acquire, build_deployment
from repro.core.gather import simulate_gather
from repro.core.trace import estimate_gzip_ratio
from repro.platforms import bordereau
from repro.smpi import MpiRuntime
from repro.tracer import Tracer, VirtualCounterBank

N_RANKS = 1024
FOLDING = 8          # ranks per core
NODES = 32           # four-core nodes -> 128 cores, 8 ranks per core
PAPER_TI_GIB = 32.5
PAPER_TAU_GIB = 252.5
PAPER_GZ_GIB = 1.2


def folded_execution_estimate() -> float:
    """Instrumented execution time of the folded class-D run.

    At paper scale this is a full (very long) simulation.  By default it
    is analytic: the per-rank burst mix of one SSOR iteration (from the
    dry profiler) priced at the ground-truth efficiency model, times the
    folding factor (32 ranks share a node's 4 cores, with the sharing
    penalty), plus the per-record tracing overhead.  Communication is
    ignored — folded class D is overwhelmingly compute-bound, which is
    why the paper could afford the folded acquisition at all.
    """
    platform = bordereau(NODES, cores=4)
    config = lu_class("D")
    if PAPER_SCALE:
        mode = AcquisitionMode(folding=FOLDING * 4)  # 32 ranks per node
        deployment = build_deployment(platform, N_RANKS, mode)
        runtime = MpiRuntime(platform, deployment, hooks=Tracer(None),
                             papi=VirtualCounterBank(N_RANKS))
        return runtime.run(LuWorkload(config, N_RANKS).program).time

    host = platform.host_list()[0]
    host.resident_ranks = FOLDING * 4
    bursts = rank_burst_mix(config, N_RANKS, N_RANKS // 2 + 3, itmax=1)
    per_iter = sum(
        flops / host.effective_rate_bound(kind, flops)
        for kind, flops in bursts
    )
    host.resident_ranks = 1
    profile = lu_rank_profile(config, N_RANKS, N_RANKS // 2 + 3)
    tracing = profile.tau_records * 1.5e-6  # Tracer default overhead
    # Each rank owns 1/FOLDING of a core: wall time = busy time x folding.
    return per_iter * config.itmax * FOLDING + tracing * FOLDING


def measured_extraction_cost() -> float:
    with tempfile.TemporaryDirectory() as workdir:
        result = acquire(LuWorkload("S", 4).program, bordereau(8), 4,
                         workdir=workdir, measure_application=False)
    return result.extraction.wall_seconds / result.tau_archive.n_records


def run_sec65():
    profile = lu_instance_profile("D", N_RANKS)
    ti_gib = profile.ti_bytes / 2 ** 30
    tau_gib = profile.tau_bytes / 2 ** 30

    # Compression, from a really-generated jittered sample of one rank.
    lines_sample = sample_rank_lines("D", N_RANKS, rank=N_RANKS // 2 + 3,
                                     max_iters=1)
    gz_ratio = estimate_gzip_ratio(lines_sample)
    gz_gib = ti_gib / gz_ratio

    # Acquisition time: execution + extraction (parallel over 128 cores,
    # but folded 8x like the application) + gathering over 32 nodes.
    execution = folded_execution_estimate()
    per_record = measured_extraction_cost()
    records_per_core = profile.tau_records / (NODES * 4)
    extraction = records_per_core * per_record * FOLDING ** 0  # cores busy 1x
    platform = bordereau(NODES, cores=4)
    node_bytes = [profile.ti_bytes / NODES] * NODES
    gather = simulate_gather(platform, platform.host_list(), node_bytes,
                             arity=4).time
    total_minutes = (execution + extraction + gather) / 60

    lines = [
        "Sec. 6.5 - acquiring LU class D / 1024 processes "
        f"(folding 8 on {NODES} four-core nodes)",
        scale_note(),
        "",
        f"TI trace size:        {ti_gib:8.2f} GiB   (paper {PAPER_TI_GIB})",
        f"TAU trace size:       {tau_gib:8.2f} GiB   (paper {PAPER_TAU_GIB})",
        f"TAU / TI ratio:       {tau_gib / ti_gib:8.2f}       (paper 7.8)",
        f"gzip ratio (sampled): {gz_ratio:8.1f}x",
        f"gzipped TI trace:     {gz_gib:8.2f} GiB   (paper {PAPER_GZ_GIB})",
        "",
        f"instrumented execution: {execution:10.1f} s",
        f"extraction (parallel):  {extraction:10.1f} s "
        f"({per_record * 1e6:.2f} us/record measured)",
        f"gathering (4-nomial):   {gather:10.1f} s",
        f"total acquisition:      {total_minutes:10.1f} min "
        f"(paper: < 25 min)",
    ]
    emit_table("sec65_large_trace.txt", lines)
    return {
        "ti_gib": ti_gib, "tau_gib": tau_gib, "gz_gib": gz_gib,
        "gz_ratio": gz_ratio, "minutes": total_minutes,
    }


@pytest.mark.benchmark(group="sec65")
def test_sec65_large_trace(benchmark):
    result = benchmark.pedantic(run_sec65, rounds=1, iterations=1)
    # Sizes in the paper's regime.
    assert abs(result["ti_gib"] - PAPER_TI_GIB) / PAPER_TI_GIB < 0.25
    assert abs(result["tau_gib"] - PAPER_TAU_GIB) / PAPER_TAU_GIB < 0.25
    # Compression lands in the tens-x regime (paper ~27x).
    assert 10 < result["gz_ratio"] < 60
    assert result["gz_gib"] < 3.0
