"""Fig. 9 — time needed to replay a time-independent trace as the number
of processes grows (LU classes B and C).

Paper observations to reproduce:
* replay time is directly proportional to the number of actions in the
  trace (it grows with both class and process count),
* most of the cost is per-action bookkeeping (the paper blames context
  switches between simulated processes; here, generator scheduling).

The per-action replay rate is *measured* on really-replayed capped
traces; full-class replay times are that rate times Table 3's exact
action counts.  ``REPRO_PAPER_SCALE=1`` replays the full traces instead.
"""

import tempfile

import pytest

from _harness import PAPER_SCALE, capped, emit_table, scale_note
from repro.apps import LuWorkload, lu_class
from repro.apps.lu_profile import lu_instance_profile
from repro.core.acquisition import acquire
from repro.core.replay import TraceReplayer
from repro.platforms import bordereau
from repro.smpi import round_robin_deployment

CLASSES = ["B", "C"]
PROCS = [8, 16, 32, 64]
CAP_ITERS = 2


def replay_rate(cls: str, procs: int):
    """(actions/s, measured actions) on a capped, really-replayed trace."""
    itmax = lu_class(cls).itmax if PAPER_SCALE else CAP_ITERS
    config = capped(lu_class(cls), itmax)
    ground_truth = bordereau()
    with tempfile.TemporaryDirectory() as workdir:
        acq = acquire(LuWorkload(config, procs).program, ground_truth,
                      procs, workdir=workdir, measure_application=False)
        calibrated = bordereau(ground_truth=False, speed=4e8)
        replayer = TraceReplayer(
            calibrated, round_robin_deployment(calibrated, procs)
        )
        result = replayer.replay(acq.trace_dir)
    return result.n_actions / result.wall_seconds, result


def run_fig9():
    lines = [
        "Fig. 9 - trace replay time vs process count",
        scale_note(),
        "",
        f"{'inst.':>6} {'actions(M)':>11} {'measured rate':>15} "
        f"{'replay time':>12}",
    ]
    series = {}
    for cls in CLASSES:
        for procs in PROCS:
            rate, measured = replay_rate(cls, procs)
            profile = lu_instance_profile(cls, procs)
            if PAPER_SCALE:
                replay_time = measured.wall_seconds
            else:
                replay_time = profile.ti_actions / rate
            series[(cls, procs)] = (profile.ti_actions, replay_time)
            lines.append(
                f"{cls + '/' + str(procs):>6} "
                f"{profile.ti_actions / 1e6:>10.2f} "
                f"{rate:>11,.0f} a/s {replay_time:>11.1f}s"
            )
    emit_table("fig9_replay_time.txt", lines)
    return series


@pytest.mark.benchmark(group="fig9")
def test_fig9_replay_time(benchmark):
    series = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    for cls in CLASSES:
        times = [series[(cls, p)][1] for p in PROCS]
        actions = [series[(cls, p)][0] for p in PROCS]
        # Replay time grows with the action count (paper's direct link).
        assert times == sorted(times)
        assert actions == sorted(actions)
    for p in PROCS:
        assert series[("C", p)][1] > series[("B", p)][1]


@pytest.mark.benchmark(group="fig9")
def test_fig9_replay_throughput_kernel(benchmark):
    """A classical pytest-benchmark measurement: repeated replays of one
    fixed capped trace (LU B/8, 2 iterations) to track the replayer's
    per-action cost over time."""
    config = capped(lu_class("B"), CAP_ITERS)
    ground_truth = bordereau()
    with tempfile.TemporaryDirectory() as workdir:
        acq = acquire(LuWorkload(config, 8).program, ground_truth, 8,
                      workdir=workdir, measure_application=False)
        from repro.core.trace import read_trace_dir
        trace = read_trace_dir(acq.trace_dir)

    def replay_once():
        calibrated = bordereau(8, ground_truth=False, speed=4e8)
        replayer = TraceReplayer(
            calibrated, round_robin_deployment(calibrated, 8)
        )
        return replayer.replay(trace).n_actions

    n_actions = benchmark(replay_once)
    assert n_actions == trace.n_actions()
