"""Fig. 9 — time needed to replay a time-independent trace as the number
of processes grows (LU classes B and C).

Paper observations to reproduce:
* replay time is directly proportional to the number of actions in the
  trace (it grows with both class and process count),
* most of the cost is per-action bookkeeping (the paper blames context
  switches between simulated processes; here, generator scheduling).

The per-action replay rate is *measured* on really-replayed capped
traces; full-class replay times are that rate times Table 3's exact
action counts.  ``REPRO_PAPER_SCALE=1`` replays the full traces instead.
"""

import tempfile

import pytest

from _harness import PAPER_SCALE, capped, emit_table, scale_note
from repro.apps import LuWorkload, lu_class
from repro.apps.lu_profile import lu_instance_profile
from repro.core.acquisition import acquire
from repro.core.replay import TraceReplayer
from repro.platforms import bordereau
from repro.smpi import round_robin_deployment

CLASSES = ["B", "C"]
PROCS = [8, 16, 32, 64]
CAP_ITERS = 2


def replay_rate(cls: str, procs: int):
    """(actions/s, measured actions) on a capped, really-replayed trace."""
    itmax = lu_class(cls).itmax if PAPER_SCALE else CAP_ITERS
    config = capped(lu_class(cls), itmax)
    ground_truth = bordereau()
    with tempfile.TemporaryDirectory() as workdir:
        acq = acquire(LuWorkload(config, procs).program, ground_truth,
                      procs, workdir=workdir, measure_application=False)
        calibrated = bordereau(ground_truth=False, speed=4e8)
        replayer = TraceReplayer(
            calibrated, round_robin_deployment(calibrated, procs)
        )
        result = replayer.replay(acq.trace_dir)
    return result.n_actions / result.wall_seconds, result


def run_fig9():
    lines = [
        "Fig. 9 - trace replay time vs process count",
        scale_note(),
        "",
        f"{'inst.':>6} {'actions(M)':>11} {'measured rate':>15} "
        f"{'replay time':>12}",
    ]
    series = {}
    for cls in CLASSES:
        for procs in PROCS:
            rate, measured = replay_rate(cls, procs)
            profile = lu_instance_profile(cls, procs)
            if PAPER_SCALE:
                replay_time = measured.wall_seconds
            else:
                replay_time = profile.ti_actions / rate
            series[(cls, procs)] = (profile.ti_actions, replay_time)
            lines.append(
                f"{cls + '/' + str(procs):>6} "
                f"{profile.ti_actions / 1e6:>10.2f} "
                f"{rate:>11,.0f} a/s {replay_time:>11.1f}s"
            )
    emit_table("fig9_replay_time.txt", lines)
    return series


@pytest.mark.benchmark(group="fig9")
def test_fig9_replay_time(benchmark):
    series = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    for cls in CLASSES:
        times = [series[(cls, p)][1] for p in PROCS]
        actions = [series[(cls, p)][0] for p in PROCS]
        # Replay time grows with the action count (paper's direct link).
        assert times == sorted(times)
        assert actions == sorted(actions)
    for p in PROCS:
        assert series[("C", p)][1] > series[("B", p)][1]


@pytest.mark.benchmark(group="fig9")
def test_fig9_metrics_overhead(benchmark):
    """Replay-telemetry overhead budget (docs/observability.md): with
    ``collect_metrics=True`` the Fig. 9 replay must slow down by < 5%;
    with metrics disabled the instrumented kernel takes the exact same
    code path as before (one ``is not None`` test per site), so the
    disabled numbers are reported alongside for regression tracking.

    A few-percent budget is far below timing noise on a shared box, so
    the comparison is made robust three ways: CPU time
    (``time.process_time``) instead of wall time with garbage collection
    paused, the two configurations interleaved with min-of-N per side
    (the minimum is the run least disturbed by scheduling, cache
    eviction and allocator state), and the whole paired measurement
    repeated in a handful of fresh interpreter processes with the min
    taken across them too — code placement varies per process and can
    swing hot-loop timings by several percent, and the cross-process
    minimum removes that layout luck from both sides symmetrically."""
    import os
    import subprocess
    import sys

    config = capped(lu_class("B"), CAP_ITERS)
    ground_truth = bordereau()

    worker = r"""
import gc, sys, time
from repro.core.replay import TraceReplayer
from repro.core.trace import read_trace_dir
from repro.platforms import bordereau
from repro.smpi import round_robin_deployment

trace = read_trace_dir(sys.argv[1])
rounds = int(sys.argv[2])

def replay_once(collect_metrics):
    calibrated = bordereau(8, ground_truth=False, speed=4e8)
    replayer = TraceReplayer(
        calibrated, round_robin_deployment(calibrated, 8),
        collect_metrics=collect_metrics,
    )
    gc.collect()
    gc.disable()
    try:
        t0 = time.process_time()
        result = replayer.replay(trace)
        elapsed = time.process_time() - t0
    finally:
        gc.enable()
    assert result.n_actions == trace.n_actions()
    return elapsed

replay_once(False)   # warm both code paths before measuring
replay_once(True)
base = metered = float("inf")
for _ in range(rounds):
    base = min(base, replay_once(False))
    metered = min(metered, replay_once(True))
print(base, metered)
"""

    def measure(trace_dir):
        procs, rounds = (2, 4) if PAPER_SCALE else (6, 6)
        base = metered = float("inf")
        for _ in range(procs):
            out = subprocess.run(
                [sys.executable, "-c", worker, trace_dir, str(rounds)],
                capture_output=True, text=True, check=True,
                env=dict(os.environ),
            ).stdout.split()
            base = min(base, float(out[0]))
            metered = min(metered, float(out[1]))
        return base, metered

    with tempfile.TemporaryDirectory() as workdir:
        acq = acquire(LuWorkload(config, 8).program, ground_truth, 8,
                      workdir=workdir, measure_application=False)
        from repro.core.trace import read_trace_dir
        trace = read_trace_dir(acq.trace_dir)
        base, metered = benchmark.pedantic(
            measure, args=(acq.trace_dir,), rounds=1, iterations=1)
    overhead = metered / base - 1.0
    n_actions = trace.n_actions()
    emit_table("fig9_metrics_overhead.txt", [
        "Fig. 9 addendum - telemetry overhead on the replay hot path",
        scale_note(),
        "",
        f"{'config':>16} {'CPU time':>12} {'rate':>15}",
        f"{'metrics off':>16} {base:>11.3f}s "
        f"{n_actions / base:>11,.0f} a/s",
        f"{'metrics on':>16} {metered:>11.3f}s "
        f"{n_actions / metered:>11,.0f} a/s",
        "",
        f"overhead with metrics enabled: {100.0 * overhead:+.1f}% "
        f"(budget: < 5%)",
    ])
    assert overhead < 0.05


@pytest.mark.benchmark(group="fig9")
def test_fig9_replay_throughput_kernel(benchmark):
    """A classical pytest-benchmark measurement: repeated replays of one
    fixed capped trace (LU B/8, 2 iterations) to track the replayer's
    per-action cost over time."""
    config = capped(lu_class("B"), CAP_ITERS)
    ground_truth = bordereau()
    with tempfile.TemporaryDirectory() as workdir:
        acq = acquire(LuWorkload(config, 8).program, ground_truth, 8,
                      workdir=workdir, measure_application=False)
        from repro.core.trace import read_trace_dir
        trace = read_trace_dir(acq.trace_dir)

    def replay_once():
        calibrated = bordereau(8, ground_truth=False, speed=4e8)
        replayer = TraceReplayer(
            calibrated, round_robin_deployment(calibrated, 8)
        )
        return replayer.replay(trace).n_actions

    n_actions = benchmark(replay_once)
    assert n_actions == trace.n_actions()
