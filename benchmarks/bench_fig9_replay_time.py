"""Fig. 9 — time needed to replay a time-independent trace as the number
of processes grows (LU classes B and C).

Paper observations to reproduce:
* replay time is directly proportional to the number of actions in the
  trace (it grows with both class and process count),
* most of the cost is per-action bookkeeping (the paper blames context
  switches between simulated processes; here, generator scheduling).

The per-action replay rate is *measured* on really-replayed capped
traces; full-class replay times are that rate times Table 3's exact
action counts.  ``REPRO_PAPER_SCALE=1`` replays the full traces instead.
"""

import os
import subprocess
import sys
import tempfile

import pytest

from _harness import PAPER_SCALE, capped, emit_table, scale_note
from repro.apps import LuWorkload, lu_class
from repro.apps.lu_profile import lu_instance_profile
from repro.core.acquisition import acquire
from repro.core.replay import TraceReplayer
from repro.core.synth import write_synthetic_lu_trace
from repro.platforms import bordereau
from repro.simkernel import Platform
from repro.smpi import round_robin_deployment

CLASSES = ["B", "C"]
PROCS = [8, 16, 32, 64]
CAP_ITERS = 2

# --- rank-scaling sweep (synthetic LU mix, 8 -> 1024 ranks) ---------------
#: Process counts for the synthetic rank-scaling sweep.
SWEEP_RANKS = [8, 64, 256, 1024]
#: SSOR iterations per rank in the synthetic traces (inorm=2 keeps the
#: allReduce in the mix even for short runs).
SWEEP_ITERS = 4
SWEEP_INORM = 2
#: The pure-Python reference solver is O(activities) per recompute; past
#: this rank count its sweep leg takes minutes, so it only runs at paper
#: scale.  The vectorized path runs the full sweep always.
REFERENCE_RANK_CAP = 256
#: Events/s measured at the seed commit (3bdd3bb) on these exact
#: synthetic traces and platform, for the table's "vs seed" column.
SEED_BASELINE_EVPS = {256: 3054.0, 1024: 336.0}


def replay_rate(cls: str, procs: int):
    """(actions/s, measured actions) on a capped, really-replayed trace."""
    itmax = lu_class(cls).itmax if PAPER_SCALE else CAP_ITERS
    config = capped(lu_class(cls), itmax)
    ground_truth = bordereau()
    with tempfile.TemporaryDirectory() as workdir:
        acq = acquire(LuWorkload(config, procs).program, ground_truth,
                      procs, workdir=workdir, measure_application=False)
        calibrated = bordereau(ground_truth=False, speed=4e8)
        replayer = TraceReplayer(
            calibrated, round_robin_deployment(calibrated, procs)
        )
        result = replayer.replay(acq.trace_dir)
    return result.n_actions / result.wall_seconds, result


def run_fig9():
    lines = [
        "Fig. 9 - trace replay time vs process count",
        scale_note(),
        "",
        f"{'inst.':>6} {'actions(M)':>11} {'measured rate':>15} "
        f"{'replay time':>12}",
    ]
    series = {}
    for cls in CLASSES:
        for procs in PROCS:
            rate, measured = replay_rate(cls, procs)
            profile = lu_instance_profile(cls, procs)
            if PAPER_SCALE:
                replay_time = measured.wall_seconds
            else:
                replay_time = profile.ti_actions / rate
            series[(cls, procs)] = (profile.ti_actions, replay_time)
            lines.append(
                f"{cls + '/' + str(procs):>6} "
                f"{profile.ti_actions / 1e6:>10.2f} "
                f"{rate:>11,.0f} a/s {replay_time:>11.1f}s"
            )
    emit_table("fig9_replay_time.txt", lines)
    return series


@pytest.mark.benchmark(group="fig9")
def test_fig9_replay_time(benchmark):
    series = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    for cls in CLASSES:
        times = [series[(cls, p)][1] for p in PROCS]
        actions = [series[(cls, p)][0] for p in PROCS]
        # Replay time grows with the action count (paper's direct link).
        assert times == sorted(times)
        assert actions == sorted(actions)
    for p in PROCS:
        assert series[("C", p)][1] > series[("B", p)][1]


@pytest.mark.benchmark(group="fig9")
def test_fig9_metrics_overhead(benchmark):
    """Replay-telemetry overhead budget (docs/observability.md): with
    ``collect_metrics=True`` the Fig. 9 replay must slow down by < 5%;
    with metrics disabled the instrumented kernel takes the exact same
    code path as before (one ``is not None`` test per site), so the
    disabled numbers are reported alongside for regression tracking.

    A few-percent budget is far below timing noise on a shared box, so
    the comparison is made robust three ways: CPU time
    (``time.process_time``) instead of wall time with garbage collection
    paused, the two configurations interleaved with min-of-N per side
    (the minimum is the run least disturbed by scheduling, cache
    eviction and allocator state), and the whole paired measurement
    repeated in a handful of fresh interpreter processes with the min
    taken across them too — code placement varies per process and can
    swing hot-loop timings by several percent, and the cross-process
    minimum removes that layout luck from both sides symmetrically."""
    import os
    import subprocess
    import sys

    config = capped(lu_class("B"), CAP_ITERS)
    ground_truth = bordereau()

    worker = r"""
import gc, sys, time
from repro.core.replay import TraceReplayer
from repro.core.trace import read_trace_dir
from repro.platforms import bordereau
from repro.smpi import round_robin_deployment

trace = read_trace_dir(sys.argv[1])
rounds = int(sys.argv[2])

def replay_once(collect_metrics):
    calibrated = bordereau(8, ground_truth=False, speed=4e8)
    replayer = TraceReplayer(
        calibrated, round_robin_deployment(calibrated, 8),
        collect_metrics=collect_metrics,
    )
    gc.collect()
    gc.disable()
    try:
        t0 = time.process_time()
        result = replayer.replay(trace)
        elapsed = time.process_time() - t0
    finally:
        gc.enable()
    assert result.n_actions == trace.n_actions()
    return elapsed

replay_once(False)   # warm both code paths before measuring
replay_once(True)
base = metered = float("inf")
for _ in range(rounds):
    base = min(base, replay_once(False))
    metered = min(metered, replay_once(True))
print(base, metered)
"""

    def measure(trace_dir):
        procs, rounds = (2, 4) if PAPER_SCALE else (6, 6)
        base = metered = float("inf")
        for _ in range(procs):
            out = subprocess.run(
                [sys.executable, "-c", worker, trace_dir, str(rounds)],
                capture_output=True, text=True, check=True,
                env=dict(os.environ),
            ).stdout.split()
            base = min(base, float(out[0]))
            metered = min(metered, float(out[1]))
        return base, metered

    with tempfile.TemporaryDirectory() as workdir:
        acq = acquire(LuWorkload(config, 8).program, ground_truth, 8,
                      workdir=workdir, measure_application=False)
        from repro.core.trace import read_trace_dir
        trace = read_trace_dir(acq.trace_dir)
        base, metered = benchmark.pedantic(
            measure, args=(acq.trace_dir,), rounds=1, iterations=1)
    overhead = metered / base - 1.0
    n_actions = trace.n_actions()
    emit_table("fig9_metrics_overhead.txt", [
        "Fig. 9 addendum - telemetry overhead on the replay hot path",
        scale_note(),
        "",
        f"{'config':>16} {'CPU time':>12} {'rate':>15}",
        f"{'metrics off':>16} {base:>11.3f}s "
        f"{n_actions / base:>11,.0f} a/s",
        f"{'metrics on':>16} {metered:>11.3f}s "
        f"{n_actions / metered:>11,.0f} a/s",
        "",
        f"overhead with metrics enabled: {100.0 * overhead:+.1f}% "
        f"(budget: < 5%)",
    ])
    assert overhead < 0.05


@pytest.mark.benchmark(group="fig9")
def test_fig9_replay_throughput_kernel(benchmark):
    """A classical pytest-benchmark measurement: repeated replays of one
    fixed capped trace (LU B/8, 2 iterations) to track the replayer's
    per-action cost over time."""
    config = capped(lu_class("B"), CAP_ITERS)
    ground_truth = bordereau()
    with tempfile.TemporaryDirectory() as workdir:
        acq = acquire(LuWorkload(config, 8).program, ground_truth, 8,
                      workdir=workdir, measure_application=False)
        from repro.core.trace import read_trace_dir
        trace = read_trace_dir(acq.trace_dir)

    def replay_once():
        calibrated = bordereau(8, ground_truth=False, speed=4e8)
        replayer = TraceReplayer(
            calibrated, round_robin_deployment(calibrated, 8)
        )
        return replayer.replay(trace).n_actions

    n_actions = benchmark(replay_once)
    assert n_actions == trace.n_actions()


# ---------------------------------------------------------------------------
# Rank-scaling sweep: synthetic LU mix on a congested cluster
# ---------------------------------------------------------------------------

def congested_platform(n_ranks: int) -> Platform:
    """One cluster whose shared backbone saturates under the LU ghost-cell
    exchange, so every in-flight transfer lands in one coupled max-min
    system — the worst case for the solver and the configuration that
    separates the vectorized and reference paths."""
    platform = Platform()
    platform.add_cluster(
        "c", n_ranks, speed=1e9, link_bw=1.25e9, link_lat=1e-6,
        backbone_bw=1.25e10, backbone_lat=1e-6, backbone_sharing="shared",
    )
    return platform


def replay_synthetic(trace_dir: str, n_ranks: int, lmm_mode: str):
    platform = congested_platform(n_ranks)
    replayer = TraceReplayer(
        platform, round_robin_deployment(platform, n_ranks),
        lmm_mode=lmm_mode,
    )
    return replayer.replay(trace_dir)


def run_rank_scaling():
    lines = [
        "Fig. 9 addendum - replay throughput vs rank count "
        "(synthetic LU mix, congested backbone)",
        scale_note(),
        f"iterations/rank: {SWEEP_ITERS} (inorm={SWEEP_INORM}); "
        f"reference solver swept up to {REFERENCE_RANK_CAP} ranks"
        + ("" if PAPER_SCALE else " (full sweep at paper scale)"),
        "",
        f"{'ranks':>6} {'events':>9} {'auto ev/s':>11} {'ref ev/s':>10} "
        f"{'auto/ref':>9} {'vs seed':>8}",
    ]
    series = {}
    for n_ranks in SWEEP_RANKS:
        with tempfile.TemporaryDirectory() as workdir:
            n_actions = write_synthetic_lu_trace(
                workdir, n_ranks, SWEEP_ITERS, cls="B", inorm=SWEEP_INORM)
            auto = replay_synthetic(workdir, n_ranks, "auto")
            assert auto.n_actions == n_actions
            auto_evps = auto.n_actions / auto.wall_seconds
            ref_evps = None
            if n_ranks <= REFERENCE_RANK_CAP or PAPER_SCALE:
                ref = replay_synthetic(workdir, n_ranks, "reference")
                # Identical simulated time is the end-to-end check that
                # the vectorized solver changed nothing but the speed.
                assert abs(ref.simulated_time - auto.simulated_time) < 1e-9
                ref_evps = ref.n_actions / ref.wall_seconds
        seed = SEED_BASELINE_EVPS.get(n_ranks)
        series[n_ranks] = (auto_evps, ref_evps)
        lines.append(
            f"{n_ranks:>6} {n_actions:>9,} {auto_evps:>11,.0f} "
            + (f"{ref_evps:>10,.0f}" if ref_evps else f"{'-':>10}")
            + (f" {auto_evps / ref_evps:>8.1f}x" if ref_evps
               else f" {'-':>9}")
            + (f" {auto_evps / seed:>7.1f}x" if seed else f" {'-':>8}")
        )
    lines += [
        "",
        "seed baselines (commit 3bdd3bb, same traces/platform): "
        + ", ".join(f"{int(v):,} ev/s @ {k}" for k, v in
                    sorted(SEED_BASELINE_EVPS.items())),
    ]
    emit_table("fig9_rank_scaling.txt", lines)
    return series


@pytest.mark.benchmark(group="fig9")
def test_fig9_rank_scaling(benchmark):
    series = benchmark.pedantic(run_rank_scaling, rounds=1, iterations=1)
    # Acceptance bar: >= 3x over the scalar solver at 256+ ranks.  The
    # in-repo reference mode is already faster than the seed's solver
    # (lazy recomputes, single-constraint fast path), so beating it 3x
    # implies beating the recorded seed baseline by a wide margin.
    auto_evps, ref_evps = series[REFERENCE_RANK_CAP]
    assert ref_evps is not None
    assert auto_evps >= 3.0 * ref_evps
    assert auto_evps >= 3.0 * SEED_BASELINE_EVPS[REFERENCE_RANK_CAP]


# ---------------------------------------------------------------------------
# Compiled driver: token vs compiled (cold / warm .tic cache)
# ---------------------------------------------------------------------------

#: Rank counts for the compiled-vs-token comparison (full sweep at paper
#: scale; 1024-rank token replays take minutes otherwise).
COMPILED_RANKS = [64, 256]
#: Compute-record granularity of the comparison traces.  Function-level
#: instrumentation of LU (one compute record per traced routine) emits
#: jacld/blts and jacu/buts once per k-plane per SSOR iteration — for
#: class B (102 planes) that is ~400 compute records per iteration per
#: rank, so modelling it with 128 records per sweep is conservative.
#: This is the trace shape compilation targets: fusion collapses each
#: run into one exec event, while the token driver pays per-record
#: parse + event cost.  (MPI-boundary instrumentation — one record per
#: sweep — is the rank-scaling sweep above; there the solver dominates
#: and both drivers cost the same.)
COMPILED_SPLIT = 128
#: The acceptance bar: warm-cache compiled replay at this rank count
#: must beat the token driver end-to-end by this factor.
COMPILED_SPEEDUP_RANKS = 256
COMPILED_SPEEDUP_MIN = 2.0
#: min-of-N repetitions for the token/warm legs (CPU time, gc off).
COMPILED_REPS = 3


def run_compiled_comparison():
    import gc
    import time

    ranks = SWEEP_RANKS if PAPER_SCALE else COMPILED_RANKS
    lines = [
        "Fig. 9 addendum - compiled replay (repro.core.compile) vs the "
        "token driver",
        scale_note(),
        f"synthetic LU mix, iterations/rank: {SWEEP_ITERS} "
        f"(inorm={SWEEP_INORM}), compute_split={COMPILED_SPLIT} "
        "(function-level instrumentation shape); cold = compile + "
        "replay (no .tic sidecars), warm = replay with sidecars "
        f"present; token/warm are min of {COMPILED_REPS} interleaved "
        "reps (process CPU time, gc off), cold is a single run",
        "",
        f"{'ranks':>6} {'actions':>9} {'token':>9} {'cold':>9} "
        f"{'warm':>9} {'cold x':>7} {'warm x':>7}",
    ]
    series = {}
    for n_ranks in ranks:
        with tempfile.TemporaryDirectory() as workdir:
            n_actions = write_synthetic_lu_trace(
                workdir, n_ranks, SWEEP_ITERS, cls="B", inorm=SWEEP_INORM,
                compute_split=COMPILED_SPLIT)

            def replay_once(compiled):
                platform = congested_platform(n_ranks)
                replayer = TraceReplayer(
                    platform, round_robin_deployment(platform, n_ranks),
                    compiled=compiled,
                )
                start = time.process_time()
                result = replayer.replay(workdir)
                return time.process_time() - start, result

            cold_wall, cold = replay_once("always")  # compiles, writes .tic
            gc.collect()
            gc.disable()
            try:
                token_walls, warm_walls = [], []
                for _ in range(COMPILED_REPS):
                    wall, token = replay_once("never")
                    token_walls.append(wall)
                    wall, warm = replay_once("always")  # loads .tic
                    warm_walls.append(wall)
            finally:
                gc.enable()
            token_wall = min(token_walls)
            warm_wall = min(warm_walls)
            assert token.n_actions == n_actions
            assert cold.n_actions == n_actions
            assert warm.n_actions == n_actions
            # In-run equivalence check: same simulated schedule to 1e-9.
            for compiled in (cold, warm):
                assert abs(compiled.simulated_time - token.simulated_time) \
                    <= 1e-9 * max(1.0, abs(token.simulated_time))
        series[n_ranks] = (token_wall, cold_wall, warm_wall)
        lines.append(
            f"{n_ranks:>6} {n_actions:>9,} "
            f"{token_wall:>8.2f}s {cold_wall:>8.2f}s {warm_wall:>8.2f}s "
            f"{token_wall / cold_wall:>6.2f}x "
            f"{token_wall / warm_wall:>6.2f}x"
        )
    lines += [
        "",
        "cold x / warm x = token CPU time over compiled CPU time "
        "(higher is better); cold - warm = the one-off compile cost",
    ]
    emit_table("fig9_compiled.txt", lines)
    return series


@pytest.mark.benchmark(group="fig9")
def test_fig9_compiled(benchmark):
    series = benchmark.pedantic(run_compiled_comparison, rounds=1,
                                iterations=1)
    token, _cold, warm = series[COMPILED_SPEEDUP_RANKS]
    # Acceptance bar: >= 2x end-to-end with a warm .tic cache at 256
    # ranks (equivalence to 1e-9 is asserted inside the run itself).
    assert token / warm >= COMPILED_SPEEDUP_MIN


# --- parallel drivers: phase batching + sharded replay --------------------
#: Shards for the parallel-driver comparison (contiguous rank bands,
#: forked workers).
PARALLEL_SHARDS = 4
#: Compute records per sweep in the parallel-driver traces.  LU class B
#: function-level instrumentation emits ~400 records per iteration per
#: rank (jacld/blts/jacu/buts per k-plane); 512 is that shape.  The
#: token driver pays per-record parsing; the compiled driver fuses each
#: run into one op, which is where most of the headline speedup lives —
#: the composition notes in the results file spell this out.
PARALLEL_SPLIT = 512
PARALLEL_REPS = 2
#: Acceptance bar: the full driver stack (warm .tic, phase batching,
#: 4 shards) over the token driver at 1024 ranks, on the 1-D chain row.
PARALLEL_SPEEDUP_MIN = 5.0
#: Acceptance bar for the incremental certified re-solve alone: the
#: compiled driver with the incremental solver over the token driver
#: (both single-core, no batching/sharding) at 1024 ranks on the lu-2d
#: row — the trace whose contention waves produce the multi-level
#: max-min solves the patch exists for.
INCREMENTAL_SPEEDUP_MIN = 3.0
#: The incremental solver must not regress the 1-D chain row, whose
#: solves are single-level and patch-hostile (the engine's level gate
#: is what keeps it honest there): wall-clock within this factor of
#: the full-solver compiled driver.
INCREMENTAL_REGRESSION_MAX = 1.25


def decoupled_platform(n_ranks: int) -> Platform:
    """One cluster with per-host links and a fatpipe backbone: flows
    between distinct host pairs share no constraint, which is what lets
    sharded replay cut the rank space into independent bands.  The low
    link latency keeps the post-collective quiet times inside the pack
    compute, so the traces shard at all (see repro.core.shard)."""
    platform = Platform()
    platform.add_cluster(
        "c", n_ranks, speed=1e9, link_bw=1.25e9, link_lat=1e-6,
        backbone_bw=1.25e10, backbone_lat=1e-6, backbone_sharing="fatpipe",
    )
    return platform


def write_chain_trace(directory: str, n_ranks: int, iterations: int,
                      split: int) -> int:
    """A 1-D chain ghost-cell exchange (open boundaries, NOT a ring:
    a periodic wrap makes rank 0 and rank n-1 one hop apart, which
    forces the sharding halo to cover the whole machine).  Per
    iteration: post Irecv for each neighbour, pack + blocking send each
    face, wait, the sweep computes, and a synchronizing allReduce —
    the LU action mix on a 1-D decomposition.  max_dist is 1, so the
    halo guard stays a handful of ranks wide and sharding's coupled
    max-min systems stay band-sized."""
    face = 65536
    n_actions = 0
    for rank in range(n_ranks):
        neighbours = [p for p in (rank - 1, rank + 1) if 0 <= p < n_ranks]
        rows = [f"p{rank} comm_size {n_ranks}"]
        for _ in range(iterations):
            for peer in neighbours:
                rows.append(f"p{rank} Irecv p{peer} {face}")
            for peer in neighbours:
                rows.append(f"p{rank} compute 10000")
                rows.append(f"p{rank} send p{peer} {face}")
            rows.extend(f"p{rank} wait" for _ in neighbours)
            rows.extend(f"p{rank} compute {1e6 / split!r}"
                        for _ in range(split))
            rows.append(f"p{rank} allReduce 40 10")
        with open(os.path.join(directory, f"SG_process{rank}.trace"),
                  "w", encoding="ascii") as handle:
            handle.write("\n".join(rows) + "\n")
        n_actions += len(rows)
    return n_actions


def run_parallel_comparison():
    import gc
    import time

    lines = [
        "Fig. 9 addendum - parallel replay drivers (phase batching + "
        "sharded replay) and the incremental max-min re-solve vs the "
        "token driver",
        scale_note(),
        f"decoupled fatpipe platform (sharding requires it; NOT the "
        "congested platform of fig9_compiled.txt, so columns are not "
        "comparable across the two files); iterations/rank: "
        f"{SWEEP_ITERS}, compute_split={PARALLEL_SPLIT} "
        "(function-level instrumentation shape), warm .tic sidecars",
        f"all legs wall-clock (process CPU time would not see the "
        f"{PARALLEL_SHARDS} forked shard workers), gc off, min of "
        f"{PARALLEL_REPS} interleaved reps (LU rows: 1 rep)",
        "token and warm run the full solver (the pre-incremental "
        "baseline); incr is warm + the certified incremental re-solve "
        "(the default solver); batched/sharded also run it",
        "",
        f"{'trace':>8} {'ranks':>6} {'actions':>9} {'token':>9} "
        f"{'warm':>9} {'incr':>9} {'batched':>9} {'sharded':>9} "
        f"{'warm x':>7} {'incr x':>7} {'batch x':>8} {'shard x':>8}",
    ]
    series = {}
    cases = [
        # (label, writer, reps) — the LU 2-D pencil row is the honest
        # counter-example for sharding: at 1024 ranks its stencil reach
        # (max_dist=32) makes the sharding halo swallow most of the
        # band, so sharding does NOT pay there; the 1-D chain row
        # (max_dist=1) is where the sharding acceptance bar lives.  The
        # roles flip for the incremental solver: lu-2d's contention
        # waves are multi-level solves (where the patch pays, and where
        # its acceptance bar lives), chain-1d's are single-level (where
        # the engine's level gate must keep the patch out of the way).
        ("lu-2d",
         lambda d, n: write_synthetic_lu_trace(
             d, n, SWEEP_ITERS, cls="B", inorm=1,
             compute_split=PARALLEL_SPLIT),
         1),
        ("chain-1d",
         lambda d, n: write_chain_trace(d, n, SWEEP_ITERS, PARALLEL_SPLIT),
         PARALLEL_REPS),
    ]
    for label, writer, reps in cases:
        for n_ranks in (256, 1024):
            with tempfile.TemporaryDirectory() as workdir:
                n_actions = writer(workdir, n_ranks)

                def replay_once(**kwargs):
                    platform = decoupled_platform(n_ranks)
                    replayer = TraceReplayer(
                        platform,
                        round_robin_deployment(platform, n_ranks),
                        **kwargs)
                    start = time.perf_counter()
                    result = replayer.replay(workdir)
                    return time.perf_counter() - start, result

                replay_once(compiled="always")  # warm the .tic sidecars
                gc.collect()
                gc.disable()
                try:
                    walls = {"token": [], "warm": [], "incremental": [],
                             "batched": [], "sharded": []}
                    results = {}
                    for _ in range(reps):
                        for leg, kwargs in (
                            ("token", dict(compiled="never",
                                           lmm_incremental=False)),
                            ("warm", dict(compiled="always",
                                          lmm_incremental=False)),
                            ("incremental", dict(compiled="always")),
                            ("batched", dict(compiled="always",
                                             batch_phases=True)),
                            ("sharded", dict(compiled="always",
                                             batch_phases=True,
                                             shards=PARALLEL_SHARDS)),
                        ):
                            wall, result = replay_once(**kwargs)
                            walls[leg].append(wall)
                            results[leg] = result
                finally:
                    gc.enable()
                token = results["token"]
                assert token.n_actions == n_actions
                # In-run equivalence: every leg reproduces the token
                # schedule to 1e-9 — makespan and per-rank times.
                for leg in ("warm", "incremental", "batched", "sharded"):
                    result = results[leg]
                    assert result.n_actions == n_actions
                    assert abs(result.simulated_time
                               - token.simulated_time) \
                        <= 1e-9 * max(1.0, abs(token.simulated_time))
                    for a, b in zip(result.per_rank_time,
                                    token.per_rank_time):
                        assert abs(a - b) <= 1e-9 * max(1.0, abs(b))
            best = {leg: min(times) for leg, times in walls.items()}
            series[f"{label}@{n_ranks}"] = best
            lines.append(
                f"{label:>8} {n_ranks:>6} {n_actions:>9,} "
                f"{best['token']:>8.2f}s {best['warm']:>8.2f}s "
                f"{best['incremental']:>8.2f}s {best['batched']:>8.2f}s "
                f"{best['sharded']:>8.2f}s "
                f"{best['token'] / best['warm']:>6.2f}x "
                f"{best['token'] / best['incremental']:>6.2f}x "
                f"{best['token'] / best['batched']:>7.2f}x "
                f"{best['token'] / best['sharded']:>7.2f}x"
            )
    lines += [
        "",
        "Composition notes (honest accounting):",
        "- the bulk of the headline ratio is the columnar compiled",
        "  driver with compute fusion (the 'warm' column): the token",
        "  driver pays per-record parsing on this record-dominated",
        "  trace shape, the compiled driver does not,",
        "- the incr column adds ONLY the certified incremental re-solve",
        "  on top of warm (same driver, same single core): patches",
        "  replace multi-level progressive fillings of the whole",
        "  sharing group with a small certified sub-solve, so it pays",
        "  on lu-2d's contention waves and is gated off (level gate +",
        "  periodic probe) on chain-1d's single-level solves — every",
        "  patch is certified against the max-min optimality conditions",
        "  and falls back, counted, to the full solve otherwise,",
        "- phase batching advances each synchronizing collective as one",
        "  dependency graph instead of per-rank generator scheduling,",
        "- sharding's win on one core is WORK reduction, not",
        "  parallelism: each worker's coupled max-min system is its",
        "  band + guard ring instead of the whole machine, so the",
        "  engine's O(group) solve cost per event collapses; with",
        "  multiple cores the forked workers additionally overlap,",
        "- sharding does not pay on the lu-2d row: the 2-D pencil's",
        "  stencil reach (max_dist=32 at 1024 ranks) makes the guard",
        "  ring swallow most of each band, so the workers re-simulate",
        "  nearly the whole machine (total simulated work EXCEEDS one",
        "  sequential replay); the row is kept as the counter-example,",
        "- all paths are exact, not approximate: the run asserts 1e-9",
        "  equivalence with the token driver in-process (the",
        "  incremental solver is bit-identical in practice), and",
        "  sharded replay additionally cross-validates its guard",
        "  rings at every window (any drift fails the replay loudly).",
    ]
    emit_table("fig9_parallel.txt", lines)
    return series


@pytest.mark.benchmark(group="fig9")
def test_fig9_parallel(benchmark):
    series = benchmark.pedantic(run_parallel_comparison, rounds=1,
                                iterations=1)
    chain = series["chain-1d@1024"]
    # Acceptance bar: >= 5x end-to-end over the token driver at 1024
    # ranks with warm sidecars, batching, and 4 shards (equivalence to
    # 1e-9 is asserted inside the run itself).
    assert chain["token"] / chain["sharded"] >= PARALLEL_SPEEDUP_MIN
    # Incremental-solver bars: >= 3x over the token driver on lu-2d's
    # multi-level contention waves, and no regression on chain-1d's
    # patch-hostile single-level solves.
    lu = series["lu-2d@1024"]
    assert lu["token"] / lu["incremental"] >= INCREMENTAL_SPEEDUP_MIN
    assert chain["incremental"] <= INCREMENTAL_REGRESSION_MAX * chain["warm"]


_RSS_WORKER = r"""
import resource, sys
from repro.core.replay import TraceReplayer
from repro.simkernel import Platform
from repro.smpi import round_robin_deployment

trace_dir, n_ranks = sys.argv[1], int(sys.argv[2])
platform = Platform()
platform.add_cluster("c", n_ranks, speed=1e9, link_bw=1.25e9,
                     link_lat=1e-6, backbone_bw=1.25e10, backbone_lat=1e-6,
                     backbone_sharing="shared")
replayer = TraceReplayer(platform,
                         round_robin_deployment(platform, n_ranks))
result = replayer.replay(trace_dir)
print(result.n_actions,
      resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
"""


def _peak_rss_kib(trace_dir: str, n_ranks: int):
    out = subprocess.run(
        [sys.executable, "-c", _RSS_WORKER, trace_dir, str(n_ranks)],
        capture_output=True, text=True, check=True, env=dict(os.environ),
    ).stdout.split()
    return int(out[0]), int(out[1])


@pytest.mark.benchmark(group="fig9")
def test_fig9_streaming_rss(benchmark):
    """Peak RSS of a 1024-rank replay must be flat w.r.t. the per-rank
    event count: traces are streamed (O(ranks) reader state), never
    materialized.  Measured in fresh subprocesses via ``ru_maxrss`` on a
    short and a 7x-longer trace of the same shape."""
    n_ranks = SWEEP_RANKS[-1]
    iters_short, iters_long = 2, 14

    def measure():
        peaks = {}
        for iters in (iters_short, iters_long):
            with tempfile.TemporaryDirectory() as workdir:
                write_synthetic_lu_trace(
                    workdir, n_ranks, iters, cls="B", inorm=SWEEP_INORM)
                peaks[iters] = _peak_rss_kib(workdir, n_ranks)
        return peaks

    peaks = benchmark.pedantic(measure, rounds=1, iterations=1)
    (n_short, rss_short) = peaks[iters_short]
    (n_long, rss_long) = peaks[iters_long]
    emit_table("fig9_streaming_rss.txt", [
        "Fig. 9 addendum - peak RSS vs per-rank event count "
        f"({n_ranks} ranks, streaming ingestion)",
        scale_note(),
        "",
        f"{'events':>9} {'peak RSS':>12} {'KiB/event':>10}",
        f"{n_short:>9,} {rss_short / 1024:>8,.1f} MiB "
        f"{rss_short / n_short:>9.2f}",
        f"{n_long:>9,} {rss_long / 1024:>8,.1f} MiB "
        f"{rss_long / n_long:>9.2f}",
        "",
        f"RSS ratio for {n_long / n_short:.1f}x the events: "
        f"{rss_long / rss_short:.2f}x (flat = streaming works)",
    ])
    assert n_long > 5 * n_short
    assert rss_long < 1.20 * rss_short
