"""Table 2 — execution time of the instrumented LU benchmark (64 procs)
under every acquisition mode, plus §6.2's trace-invariance property.

Paper (bordereau + gdx, one core per node):

  mode            R     F-2    F-4    F-8   F-16   F-32    S-2  SF-(2,2) ...
  B exec (s)   20.73  52.96  88.66 179.07 347.27 689.18  37.54   79.19
  B ratio       1     2.55   4.28   8.64  16.75  33.25   1.81    3.82
  C exec (s)   57.77 143.45 272.45 511.75 1011.59 1970.05 85.71  211.95

Regenerates: the full mode x class grid of execution times and ratios.
"""

import pytest

from _harness import (
    PAPER_SCALE, emit_table, lu_execution_time, scale_note,
)
from repro.apps import LuWorkload
from repro.core.acquisition import AcquisitionMode, acquire
from repro.core.trace import read_trace_dir
from repro.platforms import grid5000

N_RANKS = 64
CLASSES = ["B", "C"]
MODES = ["R", "F-2", "F-4", "F-8", "F-16", "F-32",
         "S-2", "SF-(2,2)", "SF-(2,4)", "SF-(2,8)", "SF-(2,16)"]

PAPER_RATIOS = {  # class B row of Table 2
    "R": 1.0, "F-2": 2.55, "F-4": 4.28, "F-8": 8.64, "F-16": 16.75,
    "F-32": 33.25, "S-2": 1.81, "SF-(2,2)": 3.82, "SF-(2,4)": 6.47,
    "SF-(2,8)": 13.37, "SF-(2,16)": 24.39,
}


def run_table2():
    platform = grid5000()  # ground truth, 1 core/node as in the paper
    lines = [
        "Table 2 - instrumented LU execution time by acquisition mode "
        f"({N_RANKS} processes)",
        scale_note(),
        "",
        f"{'mode':>10} | " + " | ".join(f"{c+' time':>10} {c+' ratio':>8}"
                                        for c in CLASSES)
        + f" | {'paper B ratio':>13}",
    ]
    ratios = {}
    for mode_label in MODES:
        mode = AcquisitionMode.parse(mode_label)
        cells = []
        for cls in CLASSES:
            t = lu_execution_time(platform, cls, N_RANKS, mode=mode,
                                  instrumented=True)
            ratios.setdefault(cls, {})[mode_label] = t
            base = ratios[cls]["R"]
            cells.append(f"{t:>9.2f}s {t / base:>8.2f}")
        lines.append(
            f"{mode_label:>10} | " + " | ".join(cells)
            + f" | {PAPER_RATIOS[mode_label]:>13.2f}"
        )
    emit_table("table2_acquisition_modes.txt", lines)
    return ratios


def run_invariance():
    """§6.2 last paragraph: the time-independent trace (hence the replayed
    time) does not depend on the acquisition scenario."""
    import tempfile
    platform = grid5000(16, 16)
    workload = LuWorkload("S", 8)
    reference = None
    lines = ["Trace invariance across acquisition modes (LU S, 8 procs):"]
    for label in ("R", "F-4", "S-2", "SF-(2,4)"):
        with tempfile.TemporaryDirectory() as workdir:
            result = acquire(workload.program, platform, 8,
                             mode=AcquisitionMode.parse(label),
                             workdir=workdir, measure_application=False)
            trace = read_trace_dir(result.trace_dir)
        if reference is None:
            reference = trace
        identical = trace.by_rank == reference.by_rank
        lines.append(f"  mode {label:>9}: exec {result.execution_time:8.2f}s"
                     f"  trace identical to R: {identical}")
        assert identical
    emit_table("table2_invariance.txt", lines)


@pytest.mark.benchmark(group="table2")
def test_table2_acquisition_modes(benchmark):
    ratios = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    for cls in CLASSES:
        base = ratios[cls]["R"]
        # Folding ratios grow roughly linearly with the folding factor.
        assert 1.5 < ratios[cls]["F-2"] / base < 3.5
        assert 20 < ratios[cls]["F-32"] / base < 45
        # Scattering costs less than folding by 2.
        assert ratios[cls]["S-2"] < ratios[cls]["F-2"]


@pytest.mark.benchmark(group="table2")
def test_table2_trace_invariance(benchmark):
    benchmark.pedantic(run_invariance, rounds=1, iterations=1)
