"""Shared pytest configuration for the benchmark suite.

Every module here regenerates one table or figure of the paper's
evaluation (§6); see `_harness.py` for the scale protocol and
`make_experiments_md.py` to rebuild EXPERIMENTS.md from the results.
"""

import os

import pytest


def pytest_report_header(config):
    scale = ("paper (full iteration counts)"
             if os.environ.get("REPRO_PAPER_SCALE", "") == "1"
             else "default (capped + extrapolated; REPRO_PAPER_SCALE=1 "
                  "for full runs)")
    return [f"repro benchmark scale: {scale}",
            "results are written to benchmarks/results/*.txt"]


@pytest.fixture(autouse=True)
def _print_separator(request):
    """Blank line between bench outputs so tables stay readable with -s."""
    yield
