"""Ablation — folding-factor sweep beyond Table 2.

Table 2 samples folding factors 2-32 at 64 processes.  This bench sweeps
the factor on a fixed instance and separates the two effects the kernel
models: fair CPU sharing (the ~x slowdown) and the co-residence penalty
(the extra few percent that makes the paper's ratios slightly
super-linear).  It also confirms the dependency-limited regime: folding a
communication-bound instance costs *less* than the factor, because folded
ranks often wait instead of competing for the CPU.
"""

import pytest

from _harness import emit_table, lu_execution_time
from repro.core.acquisition import AcquisitionMode
from repro.platforms import bordereau, default_sharing_model

CLS = "A"
N_RANKS = 16
FACTORS = [1, 2, 4, 8, 16]


def run_sweep(with_sharing_penalty: bool):
    platform = bordereau(N_RANKS)
    if not with_sharing_penalty:
        for host in platform.host_list():
            host.sharing_model = None
    times = {}
    for factor in FACTORS:
        mode = AcquisitionMode(folding=factor)
        times[factor] = lu_execution_time(platform, CLS, N_RANKS, mode=mode,
                                          instrumented=True)
    return times


def run_ablation():
    with_penalty = run_sweep(True)
    without = run_sweep(False)
    lines = [
        "Ablation - folding factor sweep "
        f"(LU class {CLS}, {N_RANKS} processes)",
        f"(co-residence penalty: "
        f"{100 * (1 - default_sharing_model(2)):.0f}% once a host is shared)",
        "",
        f"{'factor':>7} {'with penalty':>13} {'ratio':>7} "
        f"{'no penalty':>11} {'ratio':>7}",
    ]
    for factor in FACTORS:
        lines.append(
            f"{factor:>7} {with_penalty[factor]:>12.1f}s "
            f"{with_penalty[factor] / with_penalty[1]:>7.2f} "
            f"{without[factor]:>10.1f}s "
            f"{without[factor] / without[1]:>7.2f}"
        )
    emit_table("ablation_folding.txt", lines)
    return with_penalty, without


@pytest.mark.benchmark(group="ablation-folding")
def test_ablation_folding(benchmark):
    with_penalty, without = benchmark.pedantic(run_ablation, rounds=1,
                                               iterations=1)
    for factor in FACTORS[1:]:
        ratio_p = with_penalty[factor] / with_penalty[1]
        ratio_n = without[factor] / without[1]
        # Sharing penalty makes folding strictly more expensive...
        assert ratio_p > ratio_n
        # ...and ratios grow with the factor, staying near-linear.
        assert 0.5 * factor < ratio_p < 1.6 * factor
    assert with_penalty[16] / with_penalty[1] > with_penalty[4] / with_penalty[1]
