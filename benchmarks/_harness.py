"""Shared utilities for the benchmark suite.

Every table and figure of the paper's evaluation (§6) has one bench
module.  Two scales are supported:

* **default** — the paper's classes (B/C) with the SSOR iteration count
  *capped* and linearly extrapolated to the full ``itmax``.  LU iterations
  are stationary (same volumes, same communication pattern every
  iteration), so ``T(itmax) ~= T(k1) + (itmax - k1) * (T(k2) - T(k1)) /
  (k2 - k1)`` is accurate once the wavefront pipeline is filled; trace
  *sizes* never need capping (the analytic profiler is exact).
* **paper** (``REPRO_PAPER_SCALE=1``) — full iteration counts.  Hours of
  wall-clock; numbers then come from full simulations.

Bench output goes to stdout and ``benchmarks/results/*.txt``.
"""

from __future__ import annotations

import os
from dataclasses import replace
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.apps import LuWorkload, lu_class
from repro.apps.classes import LuClass
from repro.core.acquisition import AcquisitionMode, build_deployment
from repro.simkernel import Platform
from repro.smpi import MpiRuntime
from repro.tracer import Tracer, VirtualCounterBank

PAPER_SCALE = os.environ.get("REPRO_PAPER_SCALE", "") == "1"
RESULTS_DIR = Path(__file__).parent / "results"

#: Iteration counts used for the capped runs (fit points k1 < k2).
EXEC_CAPS: Tuple[int, int] = (1, 3)


def results_path(name: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR / name


def emit_table(name: str, lines: Sequence[str]) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    results_path(name).write_text(text)


def capped(config: LuClass, itmax: int) -> LuClass:
    """A class variant with fewer iterations (inorm pinned to the end so
    the capped run keeps exactly one in-loop norm, like the full run)."""
    return replace(config, itmax=itmax, inorm=itmax)


def lu_execution_time(
    platform: Platform,
    cls_name: str,
    n_ranks: int,
    mode: AcquisitionMode = AcquisitionMode(),
    instrumented: bool = False,
    papi_jitter: float = 0.0,
) -> float:
    """Simulated execution time of the LU instance under ``mode``.

    At paper scale this is one full simulation.  Otherwise two capped runs
    are extrapolated to the class's full ``itmax``.
    """
    config = lu_class(cls_name)
    deployment = build_deployment(platform, n_ranks, mode)

    def run(cfg: LuClass) -> float:
        tracer = Tracer(None) if instrumented else None
        runtime = MpiRuntime(
            platform, deployment, hooks=tracer,
            papi=VirtualCounterBank(n_ranks, jitter=papi_jitter),
        )
        return runtime.run(LuWorkload(cfg, n_ranks).program).time

    if PAPER_SCALE:
        return run(config)
    k1, k2 = EXEC_CAPS
    t1 = run(capped(config, k1))
    t2 = run(capped(config, k2))
    per_iter = (t2 - t1) / (k2 - k1)
    return t1 + (config.itmax - k1) * per_iter


def fmt_seconds(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:,.2f}"


def scale_note() -> str:
    if PAPER_SCALE:
        return "scale: paper (full iteration counts)"
    return (f"scale: default (iterations capped at {EXEC_CAPS[1]} and "
            f"extrapolated; set REPRO_PAPER_SCALE=1 for full runs)")
