"""Service throughput — the campaign service vs serial execution, and
what the scheduler itself costs.

The workload is 9 small campaigns (2 sleep-trace scenarios each, ~0.5s
apiece) submitted by three tenants — ``ml`` at fair-share weight 2,
``ci`` and ``adhoc`` at weight 1 — to a service running 2 job slots.
The same nine specs are first executed back-to-back with plain
``run_campaign`` calls (what a user scripting the CLI serially would
get); the difference is the service's throughput win, and the per-job
gap between *slot occupancy* (started -> finished) and the campaign's
own wall clock is the scheduling overhead: fork, trace staging,
verdict collection, and the supervisor's reap-tick latency.

Honesty note: this machine exposes a single effective CPU core, so the
scenarios are sleep-bound (blocking, non-CPU) — the quantity a worker
fleet genuinely overlaps here.  Every job is given distinct scenario
parameters, so the shared artifact store serves zero cross-job hits
and the speedup is pure scheduling, not caching.  Reap latency is
bounded by the bench's 50 ms tick cadence (the server defaults to
200 ms).

Measured claims:
* 9 jobs through 2 service slots finish >= 1.4x faster than the same
  specs run serially, with mean per-job scheduling overhead < 1 s;
* all jobs end DONE and the per-tenant busy-time accounting balances;
* weighted fair share holds: the weight-2 tenant's virtual time ends
  at half its busy time, strictly below the weight-1 tenants'.
"""

import os
import tempfile
import time

import pytest

from _harness import emit_table
from repro.campaign import CampaignSpec, run_campaign
from repro.service import STATE_DONE, Supervisor

TENANTS = (("ml", 2.0), ("ci", 1.0), ("adhoc", 1.0))
JOBS_PER_TENANT = 3
MAX_JOBS = 2
SLEEP_S = 0.5
SCENARIOS_PER_JOB = 2
TICK_S = 0.05


def job_spec_doc(tenant: str, index: int) -> dict:
    """A 2-scenario sleep campaign, parameters unique per (tenant, job)
    so no two jobs share a cache key (rank count is part of the key)."""
    base_rank = 2 + 2 * SCENARIOS_PER_JOB * index + \
        20 * [name for name, _ in TENANTS].index(tenant)
    return {
        "name": f"{tenant}-{index}",
        "jobs": 1,
        "base": {"ranks": 2,
                 "trace": {"kind": "sleep", "seconds": SLEEP_S},
                 "platform": {"name": "bordereau", "hosts": 64},
                 "calibration": {"kind": "fixed", "speed": 2e9}},
        "vary": {"ranks": [base_rank + 2 * s
                           for s in range(SCENARIOS_PER_JOB)]},
    }


def all_specs():
    return [(tenant, job_spec_doc(tenant, i))
            for i in range(JOBS_PER_TENANT)
            for tenant, _weight in TENANTS]


def run_serial(root: str) -> float:
    t0 = time.monotonic()
    for n, (tenant, doc) in enumerate(all_specs()):
        result = run_campaign(CampaignSpec.from_dict(doc),
                              os.path.join(root, f"serial-{n}"), jobs=1)
        assert result.ok, result.failed_names
    return time.monotonic() - t0


def run_service(root: str):
    sup = Supervisor(os.path.join(root, "svc"), max_jobs=MAX_JOBS,
                     tenant_weights=dict(TENANTS))
    try:
        t0 = time.monotonic()
        ids = [sup.submit(doc, tenant=tenant).id
               for tenant, doc in all_specs()]
        while True:
            sup.tick()
            jobs = {j.id: j for j in sup.queue.list_jobs()}
            if all(jobs[i].terminal for i in ids):
                break
            time.sleep(TICK_S)
        wall = time.monotonic() - t0
        finished = [jobs[i] for i in ids]
        tenants = {t["name"]: t for t in sup.queue.tenants()}
    finally:
        sup.shutdown()
        sup.queue.close()
    return wall, finished, tenants


def run_service_bench():
    with tempfile.TemporaryDirectory(prefix="svc-bench-") as root:
        serial_wall = run_serial(root)
        service_wall, jobs, tenants = run_service(root)

    assert all(j.state == STATE_DONE for j in jobs), \
        [(j.id, j.state, j.error) for j in jobs]
    speedup = serial_wall / service_wall
    overheads = [(j.finished_at - j.started_at)
                 - j.metrics["wall_seconds"] for j in jobs]
    waits = [j.started_at - j.submitted_at for j in jobs]
    busy = {name: tenants[name]["busy_seconds"] for name, _ in TENANTS}
    start_order = ",".join(
        j.tenant for j in sorted(jobs, key=lambda j: j.started_at))

    n_jobs = len(jobs)
    lines = [
        f"Campaign service - {n_jobs} jobs ({SCENARIOS_PER_JOB} sleep "
        f"scenarios x {SLEEP_S:.1f}s each) from 3 tenants",
        f"(ml weight 2, ci/adhoc weight 1) through {MAX_JOBS} job "
        f"slots, vs the same specs run serially.",
        "Scenarios are sleep-bound (single-core machine); all specs "
        "distinct, so zero cache hits.",
        "",
        f"{'configuration':<28} {'wall':>8} {'speedup':>8}",
        f"{'serial run_campaign x' + str(n_jobs):<28} "
        f"{serial_wall:>7.2f}s {1.0:>7.2f}x",
        f"{'service (' + str(MAX_JOBS) + ' slots)':<28} "
        f"{service_wall:>7.2f}s {speedup:>7.2f}x",
        "",
        f"scheduling overhead per job (slot occupancy - campaign "
        f"wall): mean {sum(overheads) / n_jobs:.3f}s, "
        f"max {max(overheads):.3f}s",
        f"queue wait (submit -> start): first {min(waits):.3f}s, "
        f"mean {sum(waits) / n_jobs:.2f}s, max {max(waits):.2f}s",
        "",
        "fair share (virtual time = busy / weight; lowest claims "
        "next):",
    ] + [
        f"  {name:<8} weight {weight:.0f}  "
        f"busy {busy[name]:>5.2f}s  vtime {tenants[name]['vtime']:>5.2f}"
        for name, weight in TENANTS
    ] + [
        f"start order by tenant: {start_order}",
    ]
    emit_table("service_throughput.txt", lines)
    return speedup, overheads, tenants, busy


@pytest.mark.benchmark(group="service")
def test_service_throughput_and_fair_share(benchmark):
    speedup, overheads, tenants, busy = benchmark.pedantic(
        run_service_bench, rounds=1, iterations=1)
    # 2 slots over sleep-bound jobs: well clear of serial, shy of 2x.
    assert speedup >= 1.4, f"service speedup {speedup:.2f}x < 1.4x"
    # Fork + stage + reap-tick must stay small next to a ~1s job.
    assert sum(overheads) / len(overheads) < 1.0, overheads
    # Weighted fair share: vtime == busy / weight, so the weight-2
    # tenant ends with strictly the lowest virtual time.
    assert tenants["ml"]["vtime"] == pytest.approx(
        busy["ml"] / 2.0, rel=1e-6)
    assert tenants["ml"]["vtime"] < tenants["ci"]["vtime"]
    assert tenants["ml"]["vtime"] < tenants["adhoc"]["vtime"]
