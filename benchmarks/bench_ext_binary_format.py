"""Extension — binary time-independent trace format (§7 future work).

"We also aim at exploring techniques to reduce the size of the traces,
e.g., using a binary format."  This bench prices that idea on real LU
traces: per instance, the text format, the binary format, and both after
gzip, with the resulting reduction factors, plus a projection of the §6.5
class-D/1024 trace in every representation.
"""

import gzip

import pytest

from _harness import emit_table
from repro.apps.lu_profile import lu_instance_profile, sample_rank_lines
from repro.core.actions import parse_action
from repro.core.binfmt import encode_actions
from repro.core.trace import estimate_gzip_ratio

INSTANCES = [("S", 8), ("W", 8), ("A", 8)]


def measure_instance(cls: str, procs: int):
    """Per-rank representative byte costs, from a really-generated
    (jittered) truncated trace of a middle rank."""
    lines = sample_rank_lines(cls, procs, rank=procs // 2, max_iters=2)
    actions = [parse_action(line) for line in lines]
    text = ("\n".join(lines) + "\n").encode("ascii")
    binary = encode_actions(actions)
    text_gz = gzip.compress(text, compresslevel=6)
    binary_gz = gzip.compress(binary, compresslevel=6)
    return len(text), len(binary), len(text_gz), len(binary_gz)


def run_bench():
    lines = [
        "Extension - binary TI trace format vs text (per-rank samples)",
        "",
        f"{'inst.':>6} {'text':>10} {'binary':>10} {'text.gz':>10} "
        f"{'bin.gz':>10} {'bin/text':>9} {'bin.gz/text':>12}",
    ]
    ratios = {}
    for cls, procs in INSTANCES:
        text, binary, text_gz, binary_gz = measure_instance(cls, procs)
        ratios[(cls, procs)] = (binary / text, binary_gz / text)
        lines.append(
            f"{cls + '/' + str(procs):>6} {text:>10,} {binary:>10,} "
            f"{text_gz:>10,} {binary_gz:>10,} "
            f"{binary / text:>8.2f}x {binary_gz / text:>11.3f}x"
        )
    # Project the paper's class-D/1024 instance.
    profile = lu_instance_profile("D", 1024)
    bin_ratio = sum(r[0] for r in ratios.values()) / len(ratios)
    bin_gz_ratio = sum(r[1] for r in ratios.values()) / len(ratios)
    ti_gib = profile.ti_bytes / 2 ** 30
    lines += [
        "",
        f"projection for D/1024 (text {ti_gib:.1f} GiB, paper 32.5):",
        f"  binary:        {ti_gib * bin_ratio:8.2f} GiB",
        f"  binary + gzip: {ti_gib * bin_gz_ratio:8.2f} GiB "
        "(paper's gzip-of-text: 1.2 GiB)",
    ]
    emit_table("ext_binary_format.txt", lines)
    return ratios


@pytest.mark.benchmark(group="ext-binary")
def test_ext_binary_format(benchmark):
    ratios = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    for (cls, procs), (bin_ratio, bin_gz_ratio) in ratios.items():
        # Binary beats text by >2.5x raw; gzipped binary beats raw text
        # by an order of magnitude.
        assert bin_ratio < 0.4
        assert bin_gz_ratio < 0.12
