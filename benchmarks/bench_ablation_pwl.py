"""Ablation — the piece-wise-linear MPI model (§5).

The paper's kernel replaces the affine latency+bandwidth communication
model with a 3-segment piece-wise-linear specialisation for MPI over TCP
clusters.  This bench quantifies what the specialisation buys: replay a
ping-pong sweep acquired on the ground-truth platform under

* the identity (plain affine) model,
* the built-in 3-segment MPI model (the ground truth's own), and
* a model *fitted* by the §5 calibration procedure,

and compare per-size predictions against the ground-truth timings.
"""

import pytest

from _harness import emit_table
from repro.apps.bisection import pingpong_program
from repro.core.calibration import calibrate_network
from repro.platforms import bordereau
from repro.simkernel.pwl import DEFAULT_MPI_MODEL, IDENTITY_MODEL
from repro.smpi import MpiRuntime, round_robin_deployment

SIZES = [64, 512, 1024, 8192, 65536, 262144, 1 << 20, 1 << 22]


def ground_truth_times():
    platform = bordereau(4)
    results = {}
    runtime = MpiRuntime(platform, round_robin_deployment(platform, 2))
    runtime.run(lambda mpi: pingpong_program(mpi, SIZES, 3, results))
    return results


def model_times(model):
    platform = bordereau(4, ground_truth=False)
    results = {}
    runtime = MpiRuntime(platform, round_robin_deployment(platform, 2),
                         comm_model=model)
    runtime.run(lambda mpi: pingpong_program(mpi, SIZES, 3, results))
    return results


def run_ablation():
    truth = ground_truth_times()
    fitted = calibrate_network(
        bordereau(4), round_robin_deployment(bordereau(4), 2),
        repetitions=3,
    ).model
    candidates = {
        "affine (identity)": model_times(IDENTITY_MODEL),
        "3-segment (built-in)": model_times(DEFAULT_MPI_MODEL),
        "3-segment (fitted)": model_times(fitted),
    }
    lines = [
        "Ablation - affine vs piece-wise-linear MPI communication model",
        "(mean |relative error| of round-trip predictions vs ground truth)",
        "",
        f"{'size (B)':>10} | " + " | ".join(f"{n:>20}" for n in candidates),
    ]
    errors = {name: [] for name in candidates}
    for size in SIZES:
        row = [f"{size:>10}"]
        for name, values in candidates.items():
            err = abs(values[size] - truth[size]) / truth[size]
            errors[name].append(err)
            row.append(f"{100 * err:>19.1f}%")
        lines.append(" | ".join(row))
    lines.append("")
    means = {}
    for name, errs in errors.items():
        means[name] = sum(errs) / len(errs)
        lines.append(f"mean |error| {name:>22}: {100 * means[name]:6.2f}%")
    emit_table("ablation_pwl.txt", lines)
    return means


@pytest.mark.benchmark(group="ablation-pwl")
def test_ablation_pwl(benchmark):
    means = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    # The piece-wise-linear models must beat the affine one clearly, and
    # the fitted model must be at least as good as guessing identity.
    assert means["3-segment (built-in)"] < means["affine (identity)"]
    assert means["3-segment (fitted)"] < means["affine (identity)"]
    assert means["3-segment (fitted)"] < 0.10
