"""Fig. 8 — simulated vs actual execution time of LU on bordereau,
classes B and C, 8-64 processes.

Paper observations to reproduce:
* the replay predicts the correct *trend* of the execution time as the
  process count grows (monotone decrease, class C above class B),
* the local relative error can be large (paper: up to 51.5 %) and is not
  constant across instances — because the trace is replayed with one
  calibrated average flop rate while the real rate varies per burst
  (§6.4's diagnosis).

"Actual" times come from the ground-truth platform (variable flop rate);
predictions replay the acquired trace on the calibrated constant-rate
platform with the fitted piece-wise-linear network model (§5's full
calibration procedure).
"""

import tempfile
from dataclasses import replace

import pytest

from _harness import EXEC_CAPS, PAPER_SCALE, capped, emit_table, scale_note
from repro.apps import LuWorkload, lu_class
from repro.core.acquisition import acquire
from repro.core.calibration import calibrate_flop_rate, calibrate_network
from repro.core.replay import TraceReplayer
from repro.platforms import bordereau
from repro.smpi import MpiRuntime, round_robin_deployment
from repro.tracer import VirtualCounterBank

CLASSES = ["B", "C"]
PROCS = [8, 16, 32, 64]


def calibrate():
    # The paper calibrates on "a small instrumented instance of the
    # target application" (§5).  Class W keeps burst sizes representative
    # of the measured classes — calibrating on class S's micro-bursts
    # would bias the average rate low and push every prediction up.
    ground_truth = bordereau()
    deployment = round_robin_deployment(ground_truth, 4)
    flops = calibrate_flop_rate(ground_truth, deployment,
                                LuWorkload("W", 4).program,
                                runs=5, jitter=0.002)
    network = calibrate_network(ground_truth, deployment[:2])
    return flops, network


def actual_time(platform, cls: str, procs: int, itmax: int) -> float:
    config = capped(lu_class(cls), itmax)
    runtime = MpiRuntime(platform, round_robin_deployment(platform, procs),
                         papi=VirtualCounterBank(procs))
    return runtime.run(LuWorkload(config, procs).program).time


def simulated_time(ground_truth, calibrated, network, cls: str, procs: int,
                   itmax: int) -> float:
    config = capped(lu_class(cls), itmax)
    with tempfile.TemporaryDirectory() as workdir:
        acq = acquire(LuWorkload(config, procs).program, ground_truth,
                      procs, workdir=workdir, papi_jitter=0.002,
                      measure_application=False)
        replayer = TraceReplayer(
            calibrated, round_robin_deployment(calibrated, procs),
            comm_model=network.model,
        )
        return replayer.replay(acq.trace_dir).simulated_time


def _extrapolate(f, itmax_full: int):
    if PAPER_SCALE:
        return f(itmax_full)
    k1, k2 = EXEC_CAPS
    t1, t2 = f(k1), f(k2)
    return t1 + (itmax_full - k1) * (t2 - t1) / (k2 - k1)


def run_fig8():
    ground_truth = bordereau()
    flops, network = calibrate()
    calibrated = bordereau(ground_truth=False, speed=flops.rate)
    lines = [
        "Fig. 8 - actual vs simulated (replayed) LU execution time on "
        "bordereau",
        scale_note(),
        f"(calibrated flop rate: {flops.rate:.4g} flop/s, "
        f"spread {100 * flops.spread:.2f}%)",
        "",
        f"{'inst.':>6} {'actual':>10} {'simulated':>10} {'rel.err':>9}",
    ]
    series = {}
    for cls in CLASSES:
        itmax = lu_class(cls).itmax
        for procs in PROCS:
            act = _extrapolate(
                lambda k: actual_time(ground_truth, cls, procs, k), itmax)
            sim = _extrapolate(
                lambda k: simulated_time(ground_truth, calibrated, network,
                                         cls, procs, k), itmax)
            err = (sim - act) / act
            series[(cls, procs)] = (act, sim, err)
            lines.append(f"{cls + '/' + str(procs):>6} {act:>9.1f}s "
                         f"{sim:>9.1f}s {100 * err:>+8.1f}%")
    emit_table("fig8_accuracy.txt", lines)
    return series


@pytest.mark.benchmark(group="fig8")
def test_fig8_accuracy(benchmark):
    series = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    for cls in CLASSES:
        times = [series[(cls, p)][0] for p in PROCS]
        sims = [series[(cls, p)][1] for p in PROCS]
        # Correct trend: both actual and simulated decrease with procs.
        assert times == sorted(times, reverse=True)
        assert sims == sorted(sims, reverse=True)
        # Errors bounded by the paper's envelope (|err| <= ~55%)...
        for p in PROCS:
            assert abs(series[(cls, p)][2]) < 0.55
    # ...and class C sits above class B at equal process counts.
    for p in PROCS:
        assert series[("C", p)][0] > series[("B", p)][0]
        assert series[("C", p)][1] > series[("B", p)][1]
