"""Fig. 8 — simulated vs actual execution time of LU on bordereau,
classes B and C, 8-64 processes.

Paper observations to reproduce:
* the replay predicts the correct *trend* of the execution time as the
  process count grows (monotone decrease, class C above class B),
* the local relative error can be large (paper: up to 51.5 %) and is not
  constant across instances — because the trace is replayed with one
  calibrated average flop rate while the real rate varies per burst
  (§6.4's diagnosis).

"Actual" times come from the ground-truth platform (variable flop rate);
predictions replay the acquired trace on the calibrated constant-rate
platform with the fitted piece-wise-linear network model (§5's full
calibration procedure).

The sweep itself runs as a :mod:`repro.campaign`: the §5 calibration
happens once up front, is frozen into a ``fixed`` CalibrationSpec, and
every (class, process count, iteration cap) cell becomes one scenario of
a campaign executed by the worker fleet — the same path the
``repro-campaign`` CLI drives.
"""

import tempfile

import pytest

from _harness import EXEC_CAPS, PAPER_SCALE, emit_table, scale_note
from repro.apps import LuWorkload, lu_class
from repro.campaign import (
    CalibrationSpec, CampaignSpec, PlatformSpec, Scenario, TraceSpec,
    run_campaign,
)
from repro.core.calibration import calibrate_flop_rate, calibrate_network
from repro.platforms import bordereau
from repro.smpi import round_robin_deployment

CLASSES = ["B", "C"]
PROCS = [8, 16, 32, 64]


def calibrate():
    # The paper calibrates on "a small instrumented instance of the
    # target application" (§5).  Class W keeps burst sizes representative
    # of the measured classes — calibrating on class S's micro-bursts
    # would bias the average rate low and push every prediction up.
    ground_truth = bordereau()
    deployment = round_robin_deployment(ground_truth, 4)
    flops = calibrate_flop_rate(ground_truth, deployment,
                                LuWorkload("W", 4).program,
                                runs=5, jitter=0.002)
    network = calibrate_network(ground_truth, deployment[:2])
    return flops, network


def fig8_campaign(flops, network) -> CampaignSpec:
    """One scenario per (class, procs, iteration cap) cell."""
    calibration = CalibrationSpec(
        kind="fixed", speed=flops.rate,
        segments=tuple((s.lower, s.upper, s.lat_factor, s.bw_factor)
                       for s in network.model.segments),
    )
    caps = [0] if PAPER_SCALE else list(EXEC_CAPS)
    scenarios = [
        Scenario(
            name=f"fig8-{cls}{procs}-k{cap}",
            ranks=procs,
            trace=TraceSpec(kind="acquire", app="lu", cls=cls,
                            papi_jitter=0.002, itmax_cap=cap),
            platform=PlatformSpec(name="bordereau"),
            calibration=calibration,
            measure_actual=True,
            timeout_s=3600.0,
        )
        for cls in CLASSES for procs in PROCS for cap in caps
    ]
    return CampaignSpec(name="fig8", scenarios=scenarios, jobs=2)


def _extrapolate(points, itmax_full: int) -> float:
    """Linear extrapolation from the capped-iteration cells (LU
    iterations are stationary), or the single full-run cell."""
    if len(points) == 1:
        return next(iter(points.values()))
    k1, k2 = EXEC_CAPS
    t1, t2 = points[k1], points[k2]
    return t1 + (itmax_full - k1) * (t2 - t1) / (k2 - k1)


def run_fig8():
    flops, network = calibrate()
    spec = fig8_campaign(flops, network)
    with tempfile.TemporaryDirectory(prefix="fig8-campaign-") as out:
        campaign = run_campaign(spec, out)
    if not campaign.ok:
        raise RuntimeError(
            f"fig8 campaign scenarios failed: {campaign.failed_names}")
    lines = [
        "Fig. 8 - actual vs simulated (replayed) LU execution time on "
        "bordereau",
        scale_note(),
        f"(calibrated flop rate: {flops.rate:.4g} flop/s, "
        f"spread {100 * flops.spread:.2f}%)",
        f"(campaign of {campaign.metrics.scenarios_total} scenarios, "
        f"{campaign.metrics.workers} workers, "
        f"{campaign.metrics.cached_hits} cache hits)",
        "",
        f"{'inst.':>6} {'actual':>10} {'simulated':>10} {'rel.err':>9}",
    ]
    caps = [0] if PAPER_SCALE else list(EXEC_CAPS)
    series = {}
    for cls in CLASSES:
        itmax = lu_class(cls).itmax
        for procs in PROCS:
            cells = {cap: campaign.records[f"fig8-{cls}{procs}-k{cap}"]
                     for cap in caps}
            act = _extrapolate(
                {c: r.result["actual_time"] for c, r in cells.items()},
                itmax)
            sim = _extrapolate(
                {c: r.result["simulated_time"] for c, r in cells.items()},
                itmax)
            err = (sim - act) / act
            series[(cls, procs)] = (act, sim, err)
            lines.append(f"{cls + '/' + str(procs):>6} {act:>9.1f}s "
                         f"{sim:>9.1f}s {100 * err:>+8.1f}%")
    emit_table("fig8_accuracy.txt", lines)
    return series


@pytest.mark.benchmark(group="fig8")
def test_fig8_accuracy(benchmark):
    series = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    for cls in CLASSES:
        times = [series[(cls, p)][0] for p in PROCS]
        sims = [series[(cls, p)][1] for p in PROCS]
        # Correct trend: both actual and simulated decrease with procs.
        assert times == sorted(times, reverse=True)
        assert sims == sorted(sims, reverse=True)
        # Errors bounded by the paper's envelope (|err| <= ~55%)...
        for p in PROCS:
            assert abs(series[(cls, p)][2]) < 0.55
    # ...and class C sits above class B at equal process counts.
    for p in PROCS:
        assert series[("C", p)][0] > series[("B", p)][0]
        assert series[("C", p)][1] > series[("B", p)][1]
