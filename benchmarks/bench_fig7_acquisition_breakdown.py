"""Fig. 7 — distribution of the acquisition time over its four steps
(application, tracing overhead, extraction, gathering) for LU classes B
and C on 8-64 processes, Regular mode on bordereau.

Paper observations to reproduce:
* application time shrinks with the process count (parallelism),
* gathering grows with the process count (deeper 4-nomial tree) but stays
  the smallest component,
* the TI-specific steps (extraction + gathering) stay <= ~35 % of the
  total acquisition time, with the worst share at class B / 64 processes
  (the paper's 34.91 % cell).

Application and tracing-overhead come from (capped, extrapolated)
simulations; extraction time is modelled as per-record cost x records on
the slowest node, with the per-record cost *measured* by running the real
extractor on a real class-S archive; gathering is the simulated 4-nomial
tree over the real per-node trace sizes.
"""

import tempfile

import pytest

from _harness import emit_table, lu_execution_time, scale_note
from repro.apps import LuWorkload
from repro.apps.lu_profile import lu_instance_profile, lu_rank_profile
from repro.core.acquisition import acquire
from repro.core.gather import simulate_gather
from repro.platforms import bordereau

CLASSES = ["B", "C"]
PROCS = [8, 16, 32, 64]


def measure_extraction_cost_per_record() -> float:
    """Seconds per TAU record of the real extractor (class S archive)."""
    with tempfile.TemporaryDirectory() as workdir:
        result = acquire(LuWorkload("S", 4).program, bordereau(8), 4,
                         workdir=workdir, measure_application=False)
        return (result.extraction.wall_seconds
                / result.tau_archive.n_records)


def run_fig7():
    platform = bordereau()
    per_record = measure_extraction_cost_per_record()
    lines = [
        "Fig. 7 - acquisition time breakdown, Regular mode on bordereau",
        scale_note(),
        f"(extractor cost measured on a real class-S archive: "
        f"{per_record * 1e6:.2f} us/record)",
        "",
        f"{'inst.':>6} {'application':>12} {'tracing':>9} "
        f"{'extraction':>11} {'gathering':>10} {'total':>9} "
        f"{'extr+gath %':>11}",
    ]
    breakdown = {}
    for cls in CLASSES:
        for procs in PROCS:
            app = lu_execution_time(platform, cls, procs)
            instrumented = lu_execution_time(platform, cls, procs,
                                             instrumented=True)
            tracing = max(0.0, instrumented - app)
            profile = lu_instance_profile(cls, procs)
            # tau2simgrid runs in parallel, one extractor per node: the
            # wall time is the slowest (= busiest) node's records x cost.
            max_records = max(
                lu_rank_profile(cls, procs, rank).tau_records
                for rank in (0, procs // 2)  # corner vs interior rank
            )
            extraction = max_records * per_record
            hosts = platform.host_list()[:procs]
            per_rank_bytes = profile.ti_bytes / procs
            gather = simulate_gather(platform, hosts,
                                     [per_rank_bytes] * procs, arity=4).time
            total = app + tracing + extraction + gather
            share = 100 * (extraction + gather) / total
            breakdown[(cls, procs)] = (app, tracing, extraction, gather)
            lines.append(
                f"{cls + '/' + str(procs):>6} {app:>11.1f}s {tracing:>8.1f}s "
                f"{extraction:>10.1f}s {gather:>9.2f}s {total:>8.1f}s "
                f"{share:>10.1f}%"
            )
    emit_table("fig7_acquisition_breakdown.txt", lines)
    return breakdown


@pytest.mark.benchmark(group="fig7")
def test_fig7_acquisition_breakdown(benchmark):
    breakdown = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    for cls in CLASSES:
        app8, _, extr8, gath8 = breakdown[(cls, 8)]
        app64, _, extr64, gath64 = breakdown[(cls, 64)]
        # Application time shrinks with parallelism...
        assert app64 < app8
        # ...gathering grows with the tree depth...
        assert gath64 > gath8
        # ...and stays the smallest component (paper: least consuming).
        assert gath64 < app64
        assert gath64 < extr64
        # The TI-specific steps stay an affordable share of the total —
        # the paper's bound is 34.91%, worst at class B on 64 processes.
        for procs in PROCS:
            app, tracing, extr, gath = breakdown[(cls, procs)]
            share = (extr + gath) / (app + tracing + extr + gath)
            assert share < 0.35
    shares = {
        (cls, procs): (b[2] + b[3]) / sum(b)
        for (cls, procs), b in breakdown.items()
    }
    assert max(shares, key=shares.get) == ("B", 64)
