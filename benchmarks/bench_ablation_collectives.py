"""Ablation — collective decomposition: binomial trees vs flat trees.

§2 notes that many simulators use monolithic performance models for
collectives instead of simulating them as sets of point-to-point
messages.  Our replayer decomposes collectives over binomial trees (and
offers flat trees as the degenerate alternative).  This bench compares
the two on broadcast/allreduce-heavy traces: the flat tree's root-link
serialisation makes it increasingly pessimistic as ranks grow — the gap
a monolithic model would have to paper over.
"""

import pytest

from _harness import emit_table
from repro.core.actions import AllReduce, Bcast, CommSize
from repro.core.replay import TraceReplayer
from repro.core.trace import InMemoryTrace
from repro.simkernel import Platform
from repro.simkernel.pwl import IDENTITY_MODEL
from repro.smpi import round_robin_deployment

RANKS = [4, 8, 16, 32, 64]
VOLUME = 1 << 20  # 1 MiB payloads
ROUNDS = 4


def make_trace(n_ranks: int) -> InMemoryTrace:
    trace = InMemoryTrace()
    for rank in range(n_ranks):
        trace.emit(CommSize(rank, n_ranks))
        for _ in range(ROUNDS):
            trace.emit(Bcast(rank, VOLUME))
            trace.emit(AllReduce(rank, VOLUME, 0.0))
    return trace


def replay(n_ranks: int, algorithm: str) -> float:
    platform = Platform("c")
    platform.add_cluster(
        "c", n_ranks, speed=1e9, link_bw=1.25e8, link_lat=1.667e-5,
        backbone_bw=1.25e10, backbone_lat=1.667e-5,
    )
    replayer = TraceReplayer(
        platform, round_robin_deployment(platform, n_ranks),
        comm_model=IDENTITY_MODEL, collective_algorithm=algorithm,
    )
    return replayer.replay(make_trace(n_ranks)).simulated_time


def run_ablation():
    lines = [
        "Ablation - binomial vs flat collective decomposition",
        f"({ROUNDS} rounds of 1 MiB bcast + allReduce per trace)",
        "",
        f"{'ranks':>6} {'binomial':>10} {'flat':>10} {'flat/binomial':>14}",
    ]
    gaps = {}
    for n in RANKS:
        t_binomial = replay(n, "binomial")
        t_flat = replay(n, "flat")
        gaps[n] = t_flat / t_binomial
        lines.append(f"{n:>6} {t_binomial:>9.3f}s {t_flat:>9.3f}s "
                     f"{gaps[n]:>13.2f}x")
    emit_table("ablation_collectives.txt", lines)
    return gaps


@pytest.mark.benchmark(group="ablation-collectives")
def test_ablation_collectives(benchmark):
    gaps = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    # The flat tree degrades relative to the binomial tree as ranks grow:
    # O(P) serialised root transfers vs O(log P) rounds.
    assert gaps[64] > gaps[8] > 1.0
    assert gaps[64] > 3.0
