"""Distributed dispatch scale-out — worker fleets vs a single host,
plus what a SIGKILLed worker costs.

The workload is one 16-scenario sleep-trace sweep (0.4 s apiece —
blocking, non-CPU, the quantity a worker fleet genuinely overlaps on
this single-core machine).  The same spec runs four ways: single-host
``run_campaign`` with one job slot (the serial baseline), then through
a workers-mode service with 1, 2, and 4 ``repro-worker`` processes.
Every configuration gets a fresh server root and fresh worker roots,
so nothing is served from cache — the measured quantity is dispatch:
lease round-trips, per-unit runner forks, result posts.

The **chaos** column repeats the 2-worker run but SIGKILLs one worker
mid-campaign: its lease expires (no backoff — worker death is not the
unit's fault), the unit requeues, and the surviving worker finishes
the sweep.  The cost of losing half the fleet should be bounded by
roughly the lost worker's share plus one lease timeout, never a hang.

Measured claims:
* all four distributed configurations finish DONE with every unit
  accounted (16 DONE units, zero quarantined);
* 4 workers beat 1 worker by >= 2x on this sleep-bound sweep; 2
  workers by >= 1.25x;
* the chaos run still completes, with >= 1 expired lease requeued, and
  its wall clock stays under the 1-worker configuration's.
"""

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

import pytest

from _harness import emit_table
from repro.campaign import CampaignSpec, run_campaign
from repro.service import ServiceClient

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")

N_SCENARIOS = 16
SLEEP_S = 0.4
LEASE_S = 2.0


def sweep_spec_doc():
    return {
        "name": "scaleout", "jobs": 1,
        "base": {"ranks": 2,
                 "trace": {"kind": "sleep", "seconds": SLEEP_S},
                 "platform": {"name": "bordereau", "hosts": 64},
                 "calibration": {"kind": "fixed", "speed": 2e9}},
        "vary": {"ranks": [2 + i for i in range(N_SCENARIOS)]},
    }


def _spawn(args, log_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    log = open(log_path, "w")
    try:
        return subprocess.Popen(args, stdout=log,
                                stderr=subprocess.STDOUT, env=env)
    finally:
        log.close()


def start_server(root):
    log_path = root + ".log"
    proc = _spawn([sys.executable, "-u", "-m", "repro.service.cli",
                   "--root", root, "--port", "0", "--tick-s", "0.05",
                   "--dispatch", "workers"], log_path)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        try:
            with open(log_path) as handle:
                match = re.search(r"listening on http://[^:]+:(\d+)",
                                  handle.read())
        except OSError:
            match = None
        if match:
            return proc, f"http://127.0.0.1:{match.group(1)}"
        if proc.poll() is not None:
            raise AssertionError(f"server died: {open(log_path).read()}")
        time.sleep(0.05)
    raise AssertionError("server never reported its port")


def start_worker(url, root, name):
    return _spawn([sys.executable, "-u", "-m", "repro.service.worker",
                   "--server", url, "--root", root, "--name", name,
                   "--lease-s", str(LEASE_S), "--poll-s", "0.05"],
                  root + ".log")


def stop(proc):
    if proc.poll() is None:
        proc.terminate()
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def run_single_host(root):
    t0 = time.monotonic()
    result = run_campaign(CampaignSpec.from_dict(sweep_spec_doc()),
                          os.path.join(root, "local"), jobs=1, log=None)
    assert result.ok, result.failed_names
    return time.monotonic() - t0


def run_distributed(root, n_workers, chaos=False):
    tag = f"{n_workers}w" + ("-chaos" if chaos else "")
    server, url = start_server(os.path.join(root, f"sroot-{tag}"))
    workers = [start_worker(url, os.path.join(root, f"{tag}-w{i}"),
                            f"{tag}-w{i}") for i in range(n_workers)]
    try:
        client = ServiceClient(url)
        t0 = time.monotonic()
        job = client.submit(sweep_spec_doc())
        if chaos:
            # Let the doomed worker take a lease, then kill -9 it.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                units = client.job_units(job["id"])
                if any(u["state"] == "LEASED" for u in units):
                    break
                time.sleep(0.05)
            workers[0].kill()
            workers[0].wait()
        done = client.wait(job["id"], timeout_s=300, poll_s=0.1)
        wall = time.monotonic() - t0
        assert done["state"] == "DONE", done.get("error")
        units = client.job_units(job["id"])
        assert len(units) == N_SCENARIOS
        assert all(u["state"] == "DONE" for u in units)
        counters = client.metrics()["dispatch"]["counters"]
    finally:
        for worker in workers:
            stop(worker)
        stop(server)
    return wall, counters


def run_scaleout_bench():
    with tempfile.TemporaryDirectory(prefix="dist-bench-") as root:
        serial_wall = run_single_host(root)
        walls = {}
        for n_workers in (1, 2, 4):
            walls[n_workers], _ = run_distributed(root, n_workers)
        chaos_wall, chaos_counters = run_distributed(root, 2, chaos=True)

    rows = [("single-host run_campaign", serial_wall, None)] + [
        (f"service + {n} worker(s)", walls[n], serial_wall / walls[n])
        for n in (1, 2, 4)
    ] + [("service + 2 workers, 1 SIGKILLed", chaos_wall,
          serial_wall / chaos_wall)]
    lines = [
        f"Distributed dispatch - one {N_SCENARIOS}-scenario sweep "
        f"({SLEEP_S:.1f}s sleep scenarios, sleep-bound on this "
        f"single-core machine),",
        "single-host vs repro-worker fleets (fresh roots per "
        "configuration: zero cache service).",
        f"Leases {LEASE_S:.0f}s; the chaos row SIGKILLs one of two "
        f"workers mid-campaign.",
        "",
        f"{'configuration':<34} {'wall':>8} {'vs single-host':>14}",
    ] + [
        f"{name:<34} {wall:>7.2f}s "
        + (f"{speedup:>13.2f}x" if speedup is not None else f"{'-':>14}")
        for name, wall, speedup in rows
    ] + [
        "",
        f"chaos accounting: {chaos_counters['leases_expired']} lease(s) "
        f"expired, {chaos_counters['units_requeued']} unit(s) requeued, "
        f"{chaos_counters['units_quarantined']} quarantined",
    ]
    emit_table("distributed_scaleout.txt", lines)
    return walls, chaos_wall, chaos_counters


@pytest.mark.benchmark(group="service")
def test_distributed_scaleout_and_chaos(benchmark):
    walls, chaos_wall, chaos_counters = benchmark.pedantic(
        run_scaleout_bench, rounds=1, iterations=1)
    # Sleep-bound units overlap across worker processes.
    assert walls[1] / walls[2] >= 1.25, walls
    assert walls[1] / walls[4] >= 2.0, walls
    # Losing half the fleet costs bounded time, not the campaign.
    assert chaos_counters["leases_expired"] >= 1, chaos_counters
    assert chaos_counters["units_quarantined"] == 0, chaos_counters
    assert chaos_wall < walls[1] + LEASE_S, (chaos_wall, walls)
