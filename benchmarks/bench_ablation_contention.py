"""Ablation — flow-level network contention (§2, §5).

Most off-line simulators ignore contention because it is costly to
simulate; SimGrid's kernel prices it with the flow-level max-min model.
This bench shows what ignoring contention would cost: a bisection
exchange (every rank pairs with one across the bisection) saturates the
cluster backbone, and a contention-free model underestimates its time by
a factor that grows with the rank count.

"Contention-free" is simulated with an oversized backbone (every flow
gets its full private-link rate), keeping everything else identical.
"""

import pytest

from _harness import emit_table
from repro.apps.bisection import bisection_program
from repro.simkernel import Platform
from repro.simkernel.pwl import IDENTITY_MODEL
from repro.smpi import MpiRuntime, round_robin_deployment

MESSAGE = 4 << 20  # 4 MiB per pair: far beyond the latency regime
RANKS = [4, 8, 16, 32, 64]
BACKBONE = 1.25e9  # 10 GbE, as bordereau


def run_exchange(n_ranks: int, backbone_bw: float) -> float:
    platform = Platform("c")
    platform.add_cluster(
        "c", n_ranks, speed=1e9, link_bw=1.25e8, link_lat=1.667e-5,
        backbone_bw=backbone_bw, backbone_lat=1.667e-5,
    )
    runtime = MpiRuntime(platform, round_robin_deployment(platform, n_ranks),
                         comm_model=IDENTITY_MODEL)
    return runtime.run(
        lambda mpi: bisection_program(mpi, MESSAGE)
    ).time


def run_ablation():
    lines = [
        "Ablation - flow contention vs contention-free network model",
        f"(bisection exchange, {MESSAGE >> 20} MiB per pair, "
        "GigE node links, 10 GbE backbone)",
        "",
        f"{'ranks':>6} {'contended':>11} {'no contention':>14} "
        f"{'underestimate':>14}",
    ]
    factors = {}
    for n in RANKS:
        contended = run_exchange(n, BACKBONE)
        free = run_exchange(n, BACKBONE * 1e6)
        factors[n] = contended / free
        lines.append(f"{n:>6} {contended:>10.3f}s {free:>13.3f}s "
                     f"{factors[n]:>13.2f}x")
    emit_table("ablation_contention.txt", lines)
    return factors


@pytest.mark.benchmark(group="ablation-contention")
def test_ablation_contention(benchmark):
    factors = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    # Below saturation (<= 10 concurrent GigE flows on 10 GbE) the models
    # agree; beyond it the contention factor grows with the rank count.
    assert factors[4] == pytest.approx(1.0, rel=0.05)
    assert factors[8] == pytest.approx(1.0, rel=0.05)
    assert factors[32] > 1.5
    assert factors[64] > factors[32]
