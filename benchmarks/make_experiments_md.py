#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md from benchmarks/results/*.txt.

Run after ``pytest benchmarks/ --benchmark-only`` so the document always
reflects the latest measured numbers:

    python benchmarks/make_experiments_md.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.campaign.report import render_experiments_md  # noqa: E402

RESULTS = Path(__file__).parent / "results"
TARGET = Path(__file__).parent.parent / "EXPERIMENTS.md"

# (section header, commentary, result files)
SECTIONS = [
    (
        "Table 2 — acquisition modes",
        """The instrumented LU executed under every acquisition mode of §4.2,
64 processes on the grid5000 platform model.  What must hold (and does):
folding ratios grow near-linearly with the factor and slightly above it
(the co-residence penalty); scattering costs far less than folding by
two; SF modes cumulate both overheads; and the trace extracted under any
mode is identical to the Regular one (the §6.2 invariance) — a classical
timed trace would instead inherit the acquisition scenario's timings.
Our ratios sit 10-25 % below the paper's (our ground-truth model is a
little friendlier to co-residence than real Opterons were), with the
ordering and growth identical.""",
        ["table2_acquisition_modes.txt", "table2_invariance.txt"],
    ),
    (
        "Fig. 7 — acquisition time breakdown",
        """Per-step acquisition cost, Regular mode on bordereau.  The paper's
claims hold: application time shrinks with the process count, gathering
(4-nomial tree) grows with it yet stays the smallest component, and the
TI-specific steps (extraction + gathering) stay under ~35 % of the
total with the worst share at B/64 — the paper's own 34.91 % cell.  The
extractor's per-record cost is *measured* by running the real extractor
on a real class-S archive, so this table moves with the machine it runs
on.""",
        ["fig7_acquisition_breakdown.txt"],
    ),
    (
        "Table 3 — trace sizes",
        """Exact sizes from the analytic profiler (pinned byte-for-byte against
the real instrument→extract pipeline by the test suite).  Every paper
cell is matched within ~15 %: TI traces are an order of magnitude
smaller than timed TAU traces, the ratio decreases as processes grow
(TAU's event-file factoring amortises), sizes grow linearly with the
process count, and class C is ~1.6x class B.""",
        ["table3_trace_sizes.txt"],
    ),
    (
        "Fig. 8 — replay accuracy",
        """Actual (ground-truth platform, variable flop rate) vs simulated
(calibrated replay) execution times.  The trend is correct everywhere —
times fall monotonically with the process count, class C sits above
class B — while the local error is sizeable and non-constant, exactly
the paper's observation (their worst cell: 51.5 % at B/64).  The error
is the §6.4 mechanism reproduced: one calibrated average flop rate
cannot represent bursts whose real rate varies with kind and size; even
the *sign* of the error depends on which instance calibrates the rate
(class W here).""",
        ["fig8_accuracy.txt"],
    ),
    (
        "Fig. 9 — replay time",
        """Wall-clock time to replay the traces.  As in the paper, replay time
is directly proportional to the action count (B/8's ~1.7 M actions up
to C/64's ~31 M).  Our Python replayer moves ~40-90 k actions/s where
SimGrid's C kernel managed ~100 k/s on 2010 hardware — same order, same
linear shape; the paper's remedy (bypass the higher API; distribute the
replay) is the same one that would apply here.""",
        ["fig9_replay_time.txt"],
    ),
    (
        "Fig. 9 addendum — replay drivers and the incremental solver",
        """The paper's remedy for replay cost, implemented rather than cited:
trace compilation with compute fusion (`warm`), the certified
incremental max-min re-solve (`incr`, the default solver), phase
batching (`batched`), and forked sharded replay (`sharded`), each
measured against the token driver at 256 and 1024 ranks with in-run
1e-9 equivalence checks.  The incremental column pays on lu-2d's
multi-level contention waves (2.82x → 3.83x at 1024 ranks) and gates
itself off on chain-1d's single-level solves; sharding is kept
honest by the lu-2d counter-example row, where the guard ring
swallows the bands.""",
        ["fig9_parallel.txt"],
    ),
    (
        "§6.5 — acquiring a large trace (class D, 1024 processes)",
        """The headline scalability claim: a class-D/1024 trace acquired with a
third of one cluster (folding 8 on 32 four-core nodes).  Sizes are exact
(analytic profiler): ~29 GiB TI vs ~294 GiB timed (paper: 32.5 vs
252.5), gzip to ~1 GiB (paper: 1.2).  The acquisition-time estimate
lands at ~30 minutes against the paper's "less than 25" — same order,
dominated by the folded execution exactly as in the paper.""",
        ["sec65_large_trace.txt"],
    ),
    (
        "Ablation — piece-wise-linear MPI model",
        """What the 3-segment model buys over a plain affine latency+bandwidth
model: tens of percent of error around the protocol-switch sizes
(1 KiB, 64 KiB), zero for the fitted model.  This is why §5 bothers
with 8 parameters.""",
        ["ablation_pwl.txt"],
    ),
    (
        "Ablation — network contention",
        """Most off-line simulators ignore contention (§2); the flow-level
model prices it.  A bisection exchange saturating GigE node links shows
a contention-free model underestimating by a factor that grows with the
rank count — invisible below saturation, 6x at 64 ranks.""",
        ["ablation_contention.txt"],
    ),
    (
        "Ablation — collective decomposition",
        """Binomial trees vs the flat decomposition a monolithic collective
model approximates: the flat tree's root serialisation grows the gap
with the rank count (O(P) vs O(log P) rounds).""",
        ["ablation_collectives.txt"],
    ),
    (
        "Ablation — folding factor sweep",
        """Table 2's folding column, swept densely, with and without the
co-residence penalty: fair CPU sharing alone gives slightly *sub*-linear
ratios on a dependency-limited instance; the penalty pushes them just
above linear, as measured in the paper.""",
        ["ablation_folding.txt"],
    ),
    (
        "Extension — binary trace format (§7 future work)",
        """The paper's proposed size reduction, implemented: the varint binary
format is ~4x smaller than text before compression; gzipped, both
converge (entropy dominates), so binary mainly buys un-gzipped I/O and
parse speed.""",
        ["ext_binary_format.txt"],
    ),
    (
        "Infrastructure — campaign runner throughput and result caching",
        """The sweeps above run through `repro.campaign` (declarative scenario
grids, a parallel worker fleet, a content-addressed result cache — see
`docs/campaigns.md`).  This table measures the machinery itself on an
8-scenario LU sweep: the 4-worker fleet against serial execution, and a
byte-identical rerun served entirely from cache.  On this single-core
runner the fleet overlaps the blocking trace-staging component of each
scenario, not the replay CPU; the composition is recorded in the
table.""",
        ["campaign_runner.txt"],
    ),
    (
        "Infrastructure — campaign service throughput and fair share",
        """The same campaigns run *as a service* (`repro-service`: a persistent
job queue, weighted fair-share scheduling across tenants, and a shared
artifact store — see `docs/service.md`).  This table pushes 9 small
jobs from 3 tenants through a 2-slot service against serial execution
of the same specs, and isolates what the scheduler itself costs: the
per-job gap between slot occupancy and the campaign's own wall clock
(fork, staging, verdict collection, reap-tick latency).  The ending
virtual times show the weight-2 tenant charged half per busy second.""",
        ["service_throughput.txt"],
    ),
    (
        "Infrastructure — distributed campaign scale-out and chaos recovery",
        """With `--dispatch workers` the service fans each campaign out as
leased work units to remote `repro-worker` processes — heartbeats,
artifact shipping by content digest, speculative re-execution, and
quarantine (see `docs/distributed.md`).  This table runs one
16-scenario sleep-bound sweep single-host and through 1/2/4-worker
fleets with cold caches, so the dispatch overhead (lease round-trips,
per-unit forks, result posts) is fully exposed; fleets then claw it
back by overlapping units.  The chaos row SIGKILLs one of two workers
mid-campaign: its lease expires, the unit requeues without backoff,
and the survivor finishes the sweep — bounded delay, zero quarantined
units, full provenance.""",
        ["distributed_scaleout.txt"],
    ),
    (
        "Extension — on-line vs off-line comparison (§7 future work)",
        """The comparison the paper planned: running the application skeleton
directly on the calibrated platform (on-line simulation) vs replaying
its acquired trace (off-line).  Both share the calibration error and
agree with each other far better than with the ground truth — evidence
that the off-line decoupling loses almost nothing relative to on-line
simulation for regular codes.""",
        ["ext_online_vs_offline.txt"],
    ),
]

HEADER = """# EXPERIMENTS — paper vs measured

Every table and figure of the paper's evaluation (§6), regenerated by
`pytest benchmarks/ --benchmark-only` and recorded here verbatim from
`benchmarks/results/` (regenerate this file with
`python benchmarks/make_experiments_md.py`).

**Protocol.** Trace sizes and action counts are exact (analytic profiler,
pinned against the real pipeline by `tests/test_lu_profile.py`).
Execution and replay times at the default scale come from simulations
with the SSOR iteration count capped at 1 and 3 and extrapolated linearly
to the full `itmax` (LU iterations are stationary); `REPRO_PAPER_SCALE=1`
replaces every extrapolation with a full run.  "Actual" times are the
ground-truth platform model (variable flop rate, co-residence penalty) —
the stand-in for the paper's Grid'5000 hardware; see DESIGN.md §2 for the
substitution table.

**Reading the numbers.** We never chase the paper's absolute seconds (our
substrate is a simulator, not bordereau); the claims reproduced are the
*shapes*: who wins, by what factor, where the crossovers and worst cases
sit.  Paper values are quoted inline in each table for side-by-side
comparison.

Generated: {date}
"""


def main() -> int:
    document, missing = render_experiments_md(SECTIONS, str(RESULTS),
                                              HEADER)
    TARGET.write_text(document)
    print(f"wrote {TARGET} ({TARGET.stat().st_size} bytes)")
    if missing:
        print("missing results:", ", ".join(missing))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
