"""Table 3 — sizes of TAU (timed) and time-independent traces, and action
counts, for LU classes B and C on 8-64 processes.

Paper:

  class/procs   TAU MiB   TI MiB   ratio   actions (M)
  B/8            320.2     29.9    10.71      2.03
  B/16           716.5     72.6     9.87      4.87
  B/32          1509.0    161.3     9.36     10.55
  B/64          3166.1    344.9     9.18     22.73
  C/8            508.2     48.4    10.5       3.23
  C/16          1136.5    117.0     9.71      7.75
  C/32          2393.0    256.8     9.32     16.79
  C/64          5026.1    552.5     9.1      36.17

Regenerated here with the exact analytic profiler (pinned byte-for-byte
against the real instrument->extract pipeline by the test suite), so the
paper-scale rows are exact for *our* tracer/extractor — no capping needed.
"""

import pytest

from _harness import emit_table
from repro.apps.lu_profile import lu_instance_profile

GRID = [("B", 8), ("B", 16), ("B", 32), ("B", 64),
        ("C", 8), ("C", 16), ("C", 32), ("C", 64)]

PAPER = {
    ("B", 8): (320.2, 29.9, 10.71, 2.03),
    ("B", 16): (716.5, 72.6, 9.87, 4.87),
    ("B", 32): (1509.0, 161.3, 9.36, 10.55),
    ("B", 64): (3166.1, 344.9, 9.18, 22.73),
    ("C", 8): (508.2, 48.4, 10.5, 3.23),
    ("C", 16): (1136.5, 117.0, 9.71, 7.75),
    ("C", 32): (2393.0, 256.8, 9.32, 16.79),
    ("C", 64): (5026.1, 552.5, 9.1, 36.17),
}


def run_table3():
    lines = [
        "Table 3 - trace sizes and action counts (paper values in "
        "parentheses)",
        "",
        f"{'inst.':>6} {'TAU MiB':>18} {'TI MiB':>16} {'ratio':>14} "
        f"{'actions(M)':>16}",
    ]
    profiles = {}
    for cls, procs in GRID:
        profile = lu_instance_profile(cls, procs)
        profiles[(cls, procs)] = profile
        p_tau, p_ti, p_ratio, p_act = PAPER[(cls, procs)]
        lines.append(
            f"{cls + '/' + str(procs):>6} "
            f"{profile.tau_mib:>9.1f} ({p_tau:6.1f}) "
            f"{profile.ti_mib:>7.1f} ({p_ti:5.1f}) "
            f"{profile.ratio:>6.2f} ({p_ratio:5.2f}) "
            f"{profile.ti_actions / 1e6:>7.2f} ({p_act:5.2f})"
        )
    emit_table("table3_trace_sizes.txt", lines)
    return profiles


@pytest.mark.benchmark(group="table3")
def test_table3_trace_sizes(benchmark):
    profiles = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    for (cls, procs), profile in profiles.items():
        p_tau, p_ti, p_ratio, p_act = PAPER[(cls, procs)]
        # Shape assertions: within ~25% of every paper cell, TI an order
        # of magnitude below TAU, ratio decreasing with process count.
        assert abs(profile.tau_mib - p_tau) / p_tau < 0.25
        assert abs(profile.ti_mib - p_ti) / p_ti < 0.25
        assert abs(profile.ti_actions / 1e6 - p_act) / p_act < 0.25
        assert 8 < profile.ratio < 14
    assert profiles[("B", 64)].ratio < profiles[("B", 8)].ratio
    assert profiles[("C", 64)].ratio < profiles[("C", 8)].ratio
