"""Campaign runner throughput — the parallel fleet vs serial execution,
and the content-addressed cache on a byte-identical rerun.

The workload is an 8-scenario LU sweep (synthetic class-B traces, 8
ranks, per-scenario seeds) where each scenario combines real replay CPU
with a ``stage_wait_s`` staging delay — the wall-clock cost of pulling a
trace from an external resource (batch queue, remote filesystem) that
dominates real acquisition campaigns.

Honesty note: this machine exposes a single effective CPU core, so the
replay *computation* itself cannot speed up by adding workers; what the
fleet overlaps — here and on any real campaign — is the blocking,
non-CPU component (staging, remote acquisition).  The table records the
composition (stage wait vs replay CPU per scenario) so the ≥3x speedup
below is attributable, not magic.

Measured claims:
* 8 scenarios on 4 workers complete ≥3x faster than the same spec run
  serially (jobs=1);
* a second invocation of the same campaign directory reports 8/8 cache
  hits and executes zero replays, in well under a second.
"""

import tempfile

import pytest

from _harness import emit_table
from repro.campaign import (
    CalibrationSpec, CampaignSpec, PlatformSpec, Scenario, TraceSpec,
    run_campaign,
)

N_SCENARIOS = 8
STAGE_WAIT_S = 1.5
JOBS = 4


def sweep_spec() -> CampaignSpec:
    return CampaignSpec(name="lu-sweep", jobs=JOBS, scenarios=[
        Scenario(
            name=f"lu-B8-s{seed}",
            ranks=8,
            trace=TraceSpec(kind="synth", cls="B", iterations=4, inorm=2,
                            seed=seed, jitter=0.01,
                            stage_wait_s=STAGE_WAIT_S),
            platform=PlatformSpec(name="bordereau", hosts=16),
            calibration=CalibrationSpec(kind="fixed", speed=2e9),
            timeout_s=120.0,
        )
        for seed in range(N_SCENARIOS)
    ])


def run_campaign_bench():
    spec = sweep_spec()
    with tempfile.TemporaryDirectory(prefix="camp-bench-") as root:
        serial = run_campaign(spec, f"{root}/serial", jobs=1,
                              use_cache=False)
        parallel = run_campaign(spec, f"{root}/par", jobs=JOBS)
        rerun = run_campaign(spec, f"{root}/par", jobs=JOBS)
    for result in (serial, parallel, rerun):
        assert result.ok, result.failed_names

    cpu = sum(r.result["replay_wall_seconds"]
              for r in parallel.records.values())
    speedup = serial.metrics.wall_seconds / parallel.metrics.wall_seconds
    lines = [
        "Campaign runner - 8-scenario LU sweep (synthetic class-B traces, "
        "8 ranks),",
        f"each scenario = {STAGE_WAIT_S:.1f}s trace staging (blocking, "
        "non-CPU) + replay CPU.",
        "Single-core machine: the fleet overlaps the staging component, "
        "not the CPU.",
        "",
        f"{'configuration':<28} {'wall':>8} {'speedup':>8} {'util':>6}",
        f"{'serial (jobs=1)':<28} {serial.metrics.wall_seconds:>7.2f}s "
        f"{1.0:>7.2f}x {100 * serial.metrics.utilization:>5.0f}%",
        f"{'fleet (jobs=' + str(JOBS) + ')':<28} "
        f"{parallel.metrics.wall_seconds:>7.2f}s {speedup:>7.2f}x "
        f"{100 * parallel.metrics.utilization:>5.0f}%",
        f"{'rerun (content cache)':<28} "
        f"{rerun.metrics.wall_seconds:>7.2f}s "
        f"{serial.metrics.wall_seconds / rerun.metrics.wall_seconds:>7.2f}x "
        f"{'-':>6}",
        "",
        f"replay CPU across the sweep: {cpu:.2f}s "
        f"(vs {N_SCENARIOS * STAGE_WAIT_S:.1f}s aggregate staging)",
        f"rerun: {rerun.metrics.cached_hits}/{N_SCENARIOS} cache hits, "
        f"{rerun.metrics.replays_executed} replays executed",
    ]
    emit_table("campaign_runner.txt", lines)
    return serial, parallel, rerun, speedup


@pytest.mark.benchmark(group="campaign")
def test_campaign_runner_speedup_and_cache(benchmark):
    serial, parallel, rerun, speedup = benchmark.pedantic(
        run_campaign_bench, rounds=1, iterations=1)
    # The acceptance bar: >= 3x over serial on 4 workers.
    assert speedup >= 3.0, f"fleet speedup {speedup:.2f}x < 3x"
    assert parallel.metrics.replays_executed == N_SCENARIOS
    # Byte-identical rerun: everything from cache, nothing executed.
    assert rerun.metrics.cached_hits == N_SCENARIOS
    assert rerun.metrics.replays_executed == 0
    assert rerun.metrics.wall_seconds < 2.0
    # The fleet ran genuinely overlapped, not accidentally serial.
    assert parallel.metrics.utilization > 0.5
