"""Table 3 (extension) — trace sizes and replay fidelity for the
AI-workload families.

The paper's Table 3 compares timed (TAU) against time-independent trace
sizes for LU.  The AI families have no timed counterpart to diff
against, so the size half of the row compares the text format with the
binary extension (`.btrace`), and the accuracy half replays each trace
under the token and compiled drivers and reports the relative makespan
difference — the drivers are exact, so the column pins the 1e-9
contract the test suite enforces.

  family    ranks   actions   text KiB   bin KiB   ratio   |rel.err|
"""

import os
import tempfile

import pytest

from _harness import emit_table
from repro.core.replay import TraceReplayer
from repro.core.synth_ai import write_synthetic_ai_trace
from repro.simkernel import Platform
from repro.simkernel.pwl import IDENTITY_MODEL
from repro.smpi import round_robin_deployment

RANKS = 16
STEPS = 4

#: (row label, family, generator params)
FAMILIES = [
    ("dp", "dp", {}),
    ("dp-zero", "dp", {"algo": "zero"}),
    ("pp", "pp", {}),
    ("moe", "moe", {"seed": 7}),
]


def _platform(n_ranks):
    platform = Platform("bench")
    platform.add_cluster("c", n_ranks, speed=1e9, link_bw=1.25e8,
                         link_lat=1e-5, backbone_bw=1.25e9,
                         backbone_lat=1e-5)
    return platform


def _dir_bytes(directory, suffix):
    return sum(os.path.getsize(os.path.join(directory, name))
               for name in os.listdir(directory) if name.endswith(suffix))


def _replay(directory, n_ranks, compiled):
    platform = _platform(n_ranks)
    replayer = TraceReplayer(platform,
                             round_robin_deployment(platform, n_ranks),
                             comm_model=IDENTITY_MODEL, compiled=compiled)
    return replayer.replay(directory)


def run_table3_ai():
    lines = [
        "Table 3 (ext) - AI-workload trace sizes and driver fidelity "
        f"({RANKS} ranks, {STEPS} steps)",
        "",
        f"{'family':>8} {'actions':>9} {'text KiB':>10} {'bin KiB':>9} "
        f"{'ratio':>7} {'token makespan s':>18} {'|rel err| vs compiled':>22}",
    ]
    rows = {}
    for label, family, params in FAMILIES:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as base:
            text_dir = os.path.join(base, "text")
            bin_dir = os.path.join(base, "bin")
            n_actions = write_synthetic_ai_trace(
                family, text_dir, RANKS, STEPS, **params)
            write_synthetic_ai_trace(
                family, bin_dir, RANKS, STEPS, binary=True, **params)
            text_kib = _dir_bytes(text_dir, ".trace") / 1024
            bin_kib = _dir_bytes(bin_dir, ".btrace") / 1024
            token = _replay(text_dir, RANKS, compiled="never")
            compiled = _replay(text_dir, RANKS, compiled="always")
            rel = abs(compiled.simulated_time - token.simulated_time) \
                / token.simulated_time
            rows[label] = (n_actions, text_kib, bin_kib, token, rel)
            lines.append(
                f"{label:>8} {n_actions:>9,} {text_kib:>10.1f} "
                f"{bin_kib:>9.1f} {text_kib / bin_kib:>7.2f} "
                f"{token.simulated_time:>18.6f} {rel:>22.2e}")
    emit_table("table3_ai_workloads.txt", lines)
    return rows


@pytest.mark.benchmark(group="table3")
def test_table3_ai_workloads(benchmark):
    rows = benchmark.pedantic(run_table3_ai, rounds=1, iterations=1)
    for label, (n_actions, text_kib, bin_kib, token, rel) in rows.items():
        assert n_actions > 0 and token.simulated_time > 0, label
        # The binary format stays meaningfully smaller even with the
        # allToAllv split tables inlined per record.
        assert bin_kib < text_kib, label
        # Token and compiled drivers are exact, not approximations.
        assert rel <= 1e-9, (label, rel)
    # MoE's all-to-all rows make it the densest trace per step.
    assert rows["moe"][0] > 0
