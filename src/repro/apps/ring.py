"""The paper's Fig. 1 example: computation on a ring of processes.

Each of the four iterations: rank 0 computes 1 Mflop and sends 1 MB to its
neighbour; every other rank receives, computes 1 Mflop, and forwards.
The time-independent trace of this program is the right-hand side of
Fig. 1 — a round-trip test asserts that, byte for byte.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["ring_program", "RING_COMPUTE_FLOPS", "RING_MESSAGE_BYTES",
           "RING_ITERATIONS"]

RING_COMPUTE_FLOPS = 1e6
RING_MESSAGE_BYTES = 1e6
RING_ITERATIONS = 4


def ring_program(mpi, iterations: int = RING_ITERATIONS,
                 flops: float = RING_COMPUTE_FLOPS,
                 nbytes: float = RING_MESSAGE_BYTES) -> Iterator:
    """The MPI code of the paper's Fig. 1 (left), one rank's view."""
    nproc = mpi.size
    me = mpi.rank
    for _ in range(iterations):
        if me == 0:
            yield from mpi.compute(flops)
            yield from mpi.send((me + 1) % nproc, nbytes)
            yield from mpi.recv(src=(me - 1) % nproc)
        else:
            yield from mpi.recv(src=(me - 1) % nproc)
            yield from mpi.compute(flops)
            yield from mpi.send((me + 1) % nproc, nbytes)
