"""NPB problem classes for the LU benchmark.

Grid sizes and iteration counts follow NPB 3.3's ``applu.incl`` /
``npbparams.h`` values: class S (smallest) through E (largest).  A class-D
instance is ~20x the work and ~16x the data of class C (§6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["LuClass", "LU_CLASSES", "lu_class"]


@dataclass(frozen=True)
class LuClass:
    """One NPB LU problem class."""

    name: str
    nx: int      # grid points in x
    ny: int      # grid points in y
    nz: int      # grid points in z
    itmax: int   # SSOR iterations
    inorm: int   # residual-norm period (NPB default: itmax)

    @property
    def points(self) -> int:
        return self.nx * self.ny * self.nz

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (f"LU class {self.name}: {self.nx}^3 grid, "
                f"{self.itmax} iterations")


def _cls(name: str, n: int, itmax: int) -> LuClass:
    return LuClass(name=name, nx=n, ny=n, nz=n, itmax=itmax, inorm=itmax)


LU_CLASSES: Dict[str, LuClass] = {
    "S": _cls("S", 12, 50),
    "W": _cls("W", 33, 300),
    "A": _cls("A", 64, 250),
    "B": _cls("B", 102, 250),
    "C": _cls("C", 162, 250),
    "D": _cls("D", 408, 300),
    "E": _cls("E", 1020, 300),
}


def lu_class(name: str) -> LuClass:
    """Look up a class by letter; raises with the valid set on typos."""
    try:
        return LU_CLASSES[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown LU class {name!r}; valid: {sorted(LU_CLASSES)}"
        ) from None
