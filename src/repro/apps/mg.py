"""NPB MG benchmark skeleton (communication + computation volumes).

MG (multigrid) rounds out the workload set with a communication signature
unlike LU's wavefront or CG's scalar allreduces: V-cycles sweep a grid
*hierarchy*, exchanging ghost faces at every level — so message sizes
span three orders of magnitude within a single iteration, exercising all
segments of the piece-wise-linear MPI model at once.

Skeleton of NPB 3.3 MG: a 3-D grid of ``2^lt`` points per side split over
a 3-D process grid; each of ``nit`` iterations runs one V-cycle
(restriction down to the coarsest level and prolongation back up, with a
residual/smoother computation and a 6-face ghost exchange per level) and
one residual evaluation, with a final norm allreduce (``norm2u3``).

Volumes per level ``k`` (side ``2^k``): faces carry
``(side/px)*(side/py)`` (or the matching pair) doubles; smoother and
residual cost ~50 flops per local point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

__all__ = ["MgClass", "MG_CLASSES", "mg_class", "MgWorkload", "mg_program",
           "mg_grid"]

BYTES_PER_VALUE = 8
FLOPS_SMOOTH = 30.0    # psinv per point
FLOPS_RESID = 21.0     # resid per point
FLOPS_TRANSFER = 8.0   # rprj3/interp per point


@dataclass(frozen=True)
class MgClass:
    """One NPB MG problem class."""

    name: str
    lt: int       # log2 of the grid side (grid is 2^lt ^3)
    nit: int      # V-cycle iterations

    @property
    def side(self) -> int:
        return 1 << self.lt


MG_CLASSES: Dict[str, MgClass] = {
    "S": MgClass("S", 5, 4),
    "W": MgClass("W", 7, 4),
    "A": MgClass("A", 8, 4),
    "B": MgClass("B", 8, 20),
    "C": MgClass("C", 9, 20),
    "D": MgClass("D", 10, 50),
}


def mg_class(name: str) -> MgClass:
    try:
        return MG_CLASSES[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown MG class {name!r}; valid: {sorted(MG_CLASSES)}"
        ) from None


def mg_grid(nprocs: int) -> Tuple[int, int, int]:
    """3-D process grid (px, py, pz), powers of two, px >= py >= pz."""
    if nprocs < 1 or nprocs & (nprocs - 1):
        raise ValueError(
            f"NPB MG requires a power-of-two process count, got {nprocs}"
        )
    dims = [1, 1, 1]
    axis = 0
    remaining = nprocs
    while remaining > 1:
        dims[axis % 3] *= 2
        remaining //= 2
        axis += 1
    dims.sort(reverse=True)
    return dims[0], dims[1], dims[2]


class MgWorkload:
    """A bound (class, nprocs) MG instance."""

    def __init__(self, config, nprocs: int) -> None:
        if isinstance(config, str):
            config = mg_class(config)
        self.config: MgClass = config
        self.nprocs = nprocs
        px, py, pz = mg_grid(nprocs)
        if (1 << config.lt) < 2 * max(px, py, pz):
            raise ValueError(
                f"class {config.name} grid (side {1 << config.lt}) is too "
                f"small for a {px}x{py}x{pz} process grid"
            )

    def program(self, mpi) -> Iterator:
        return mg_program(mpi, self.config)

    def __repr__(self) -> str:  # pragma: no cover
        return f"MgWorkload(class={self.config.name}, nprocs={self.nprocs})"


def _neighbours(rank: int, dims: Tuple[int, int, int]):
    """The six axis neighbours (periodic, as NPB MG's comm3)."""
    px, py, pz = dims
    x = rank % px
    y = (rank // px) % py
    z = rank // (px * py)

    def at(nx, ny, nz):
        return (nz % pz) * px * py + (ny % py) * px + (nx % px)

    return [
        ("x-", at(x - 1, y, z)), ("x+", at(x + 1, y, z)),
        ("y-", at(x, y - 1, z)), ("y+", at(x, y + 1, z)),
        ("z-", at(x, y, z - 1)), ("z+", at(x, y, z + 1)),
    ]


def _level_extents(side: int, dims: Tuple[int, int, int]):
    px, py, pz = dims
    return max(1, side // px), max(1, side // py), max(1, side // pz)


def _comm3(mpi, dims, side: int, tag: int) -> Iterator:
    """Ghost-face exchange at one level: three axis-pair exchanges.

    NPB's comm3 exchanges faces axis by axis (x, then y, then z) so that
    corner values propagate; each exchange is Irecv + Send + Wait with
    both axis neighbours.
    """
    nx, ny, nz = _level_extents(side, dims)
    face_bytes = {
        "x": ny * nz * BYTES_PER_VALUE,
        "y": nx * nz * BYTES_PER_VALUE,
        "z": nx * ny * BYTES_PER_VALUE,
    }
    neighbours = _neighbours(mpi.rank, dims)
    for axis_index, axis in enumerate(("x", "y", "z")):
        pair = neighbours[2 * axis_index: 2 * axis_index + 2]
        # Periodic tori can alias both directions to the same peer (or to
        # ourselves when the axis is undivided) — skip self-messages, and
        # de-duplicate the peer set like NPB's degenerate-dimension path.
        peers = []
        for _, peer in pair:
            if peer != mpi.rank and peer not in peers:
                peers.append(peer)
        reqs = [mpi.irecv(src=peer, tag=tag + axis_index) for peer in peers]
        for peer in peers:
            yield from mpi.send(peer, face_bytes[axis], tag=tag + axis_index)
        for req in reqs:
            yield from mpi.wait(req)


def mg_program(mpi, config) -> Iterator:
    """One rank of the MG skeleton."""
    if isinstance(config, str):
        config = mg_class(config)
    dims = mg_grid(mpi.size)
    # Levels from finest (lt) down to the coarsest the process grid
    # allows (every process keeps at least 2 points per side).
    min_side = 2 * max(dims)
    levels: List[int] = [
        side for side in (1 << k for k in range(config.lt, 0, -1))
        if side >= min_side
    ] or [min_side]

    def local_points(side: int) -> float:
        nx, ny, nz = _level_extents(side, dims)
        return float(nx * ny * nz)

    yield from mpi.comm_size()
    yield from mpi.bcast(24, root=0)  # lt, nit, verification constants
    yield from mpi.compute(local_points(levels[0]) * 10.0, kind="zran3")
    yield from _comm3(mpi, dims, levels[0], tag=50)

    for _it in range(config.nit):
        # Downward: restrict to each coarser level.
        for side in levels[1:]:
            yield from mpi.compute(local_points(side) * FLOPS_TRANSFER,
                                   kind="rprj3")
            yield from _comm3(mpi, dims, side, tag=60)
        # Coarsest-level smoothing.
        yield from mpi.compute(local_points(levels[-1]) * FLOPS_SMOOTH,
                               kind="psinv")
        # Upward: interpolate, smooth, exchange at each finer level.
        for side in reversed(levels[:-1]):
            yield from mpi.compute(local_points(side) * FLOPS_TRANSFER,
                                   kind="interp")
            yield from mpi.compute(local_points(side) * FLOPS_SMOOTH,
                                   kind="psinv")
            yield from _comm3(mpi, dims, side, tag=70)
        # Residual on the finest level.
        yield from mpi.compute(local_points(levels[0]) * FLOPS_RESID,
                               kind="resid")
        yield from _comm3(mpi, dims, levels[0], tag=80)

    # Final verification norm (norm2u3).
    yield from mpi.compute(local_points(levels[0]) * 4.0, kind="norm2u3")
    yield from mpi.allreduce(24, flops=3.0)
