"""NPB CG benchmark skeleton (communication + computation volumes).

A second NAS benchmark beyond LU, exercising a very different
communication signature: CG (conjugate gradient) is dominated by
*collective-like* exchanges — per iteration, two transpose exchanges of
partial vectors across row/column neighbour sets and two scalar
allreduces — rather than LU's wavefront point-to-point pipeline.  The
paper's framework claims generality over regular MPI codes; CG is the
classic stress test for the reduce-heavy end of that spectrum.

The skeleton follows NPB 3.3 CG's structure: a power-of-two process count
arranged as ``npcols x nprows`` (npcols = nprows or 2*nprows); each
conjugate-gradient iteration does

* a local sparse matrix-vector product (~2 * nnz/np flops),
* a reduce-sum exchange across the processor row (log2(npcols) pairwise
  exchange steps of the local vector slice),
* two allreduces of one scalar (rho, alpha denominators),

repeated ``cgitmax = 25`` times per outer iteration, ``niter`` outer
iterations, with a residual-norm allreduce per outer iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

__all__ = ["CgClass", "CG_CLASSES", "cg_class", "cg_grid", "CgWorkload", "cg_program"]

BYTES_PER_VALUE = 8
CG_ITMAX = 25          # inner CG iterations per outer iteration
FLOPS_PER_NONZERO = 2.0


@dataclass(frozen=True)
class CgClass:
    """One NPB CG problem class."""

    name: str
    na: int        # matrix order
    nonzer: int    # nonzeros per row parameter
    niter: int     # outer iterations

    @property
    def nnz_estimate(self) -> float:
        """NPB's makea yields ~na * (nonzer+1) * (nonzer+1) nonzeros."""
        return float(self.na) * (self.nonzer + 1) * (self.nonzer + 1)


CG_CLASSES: Dict[str, CgClass] = {
    "S": CgClass("S", 1400, 7, 15),
    "W": CgClass("W", 7000, 8, 15),
    "A": CgClass("A", 14000, 11, 15),
    "B": CgClass("B", 75000, 13, 75),
    "C": CgClass("C", 150000, 15, 75),
    "D": CgClass("D", 1500000, 21, 100),
}


def cg_class(name: str) -> CgClass:
    try:
        return CG_CLASSES[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown CG class {name!r}; valid: {sorted(CG_CLASSES)}"
        ) from None


def cg_grid(nprocs: int) -> Tuple[int, int]:
    """NPB CG layout: npcols x nprows, power-of-two, npcols in {r, 2r}."""
    if nprocs < 1 or nprocs & (nprocs - 1):
        raise ValueError(
            f"NPB CG requires a power-of-two process count, got {nprocs}"
        )
    p = nprocs.bit_length() - 1
    npcols = 1 << ((p + 1) // 2)
    nprows = 1 << (p // 2)
    return npcols, nprows


class CgWorkload:
    """A bound (class, nprocs) CG instance."""

    def __init__(self, config, nprocs: int) -> None:
        if isinstance(config, str):
            config = cg_class(config)
        self.config: CgClass = config
        self.nprocs = nprocs
        cg_grid(nprocs)  # validate

    def program(self, mpi) -> Iterator:
        return cg_program(mpi, self.config)

    def __repr__(self) -> str:  # pragma: no cover
        return f"CgWorkload(class={self.config.name}, nprocs={self.nprocs})"


def _row_exchange_peers(rank: int, npcols: int, nprows: int):
    """Recursive-halving exchange partners within the processor row."""
    col = rank % npcols
    row = rank // npcols
    peers = []
    stride = 1
    while stride < npcols:
        peer_col = col ^ stride
        peers.append(row * npcols + peer_col)
        stride <<= 1
    return peers


def cg_program(mpi, config) -> Iterator:
    """One rank of the CG skeleton."""
    if isinstance(config, str):
        config = cg_class(config)
    npcols, nprows = cg_grid(mpi.size)
    rank = mpi.rank

    local_rows = config.na // nprows
    local_cols = config.na // npcols
    vector_bytes = local_rows * BYTES_PER_VALUE
    nnz_local = config.nnz_estimate / mpi.size
    spmv_flops = FLOPS_PER_NONZERO * nnz_local
    axpy_flops = 3.0 * 2.0 * local_cols  # three vector updates per CG step

    peers = _row_exchange_peers(rank, npcols, nprows)

    yield from mpi.comm_size()
    yield from mpi.bcast(24, root=0)  # na, nonzer, niter
    # makea: sparse matrix generation, ~nonzer^2 work per local row.
    yield from mpi.compute(nnz_local * 4.0, kind="makea")

    for _outer in range(config.niter):
        for _inner in range(CG_ITMAX):
            # q = A.p: local SpMV then the row-wise reduce exchange.
            yield from mpi.compute(spmv_flops, kind="spmv")
            for peer in peers:
                req = mpi.irecv(src=peer, tag=40)
                yield from mpi.send(peer, vector_bytes, tag=40)
                yield from mpi.wait(req)
                yield from mpi.compute(local_rows * 1.0, kind="fold")
            # rho / alpha: two scalar allreduces per CG step.
            yield from mpi.allreduce(8, flops=1.0)
            yield from mpi.compute(axpy_flops, kind="axpy")
            yield from mpi.allreduce(8, flops=1.0)
        # Residual norm once per outer iteration.
        yield from mpi.compute(2.0 * local_cols, kind="norm")
        yield from mpi.allreduce(8, flops=1.0)
