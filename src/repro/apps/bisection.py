"""Pairwise-exchange microbenchmarks: ping-pong and bisection traffic.

``pingpong_program`` is the SKaMPI ``Pingpong_Send_Recv`` pattern the
paper's calibration procedure relies on (§5): two ranks bounce messages of
swept sizes, and rank 0 records the round-trip time per size.

``bisection_program`` pairs rank i with rank i + P/2 and exchanges
simultaneously, saturating the backbone — the workload that makes network
*contention* visible, used by the contention ablation bench.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

__all__ = ["pingpong_program", "bisection_program", "default_size_sweep"]


def default_size_sweep() -> List[int]:
    """Message sizes covering all three segments of the MPI model."""
    sizes = []
    size = 1
    while size <= 1 << 22:  # 1 B .. 4 MiB
        sizes.append(size)
        sizes.append(size + size // 2 or size)
        size <<= 1
    return sorted(set(sizes))


def pingpong_program(mpi, sizes: Sequence[int], repetitions: int,
                     results: Dict[int, float]) -> Iterator:
    """SKaMPI-style ping-pong between ranks 0 and 1.

    ``results`` (filled on rank 0) maps message size to the mean *round
    trip* time in seconds.  Extra ranks idle, so the same program can run
    on a full cluster deployment.
    """
    if mpi.size < 2:
        raise ValueError("ping-pong needs at least 2 ranks")
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    for size in sizes:
        if mpi.rank == 0:
            start = mpi.wtime()
            for _ in range(repetitions):
                yield from mpi.send(1, size, tag=5)
                yield from mpi.recv(src=1, tag=5)
            results[size] = (mpi.wtime() - start) / repetitions
        elif mpi.rank == 1:
            for _ in range(repetitions):
                yield from mpi.recv(src=0, tag=5)
                yield from mpi.send(0, size, tag=5)


def bisection_program(mpi, nbytes: float, rounds: int = 1) -> Iterator:
    """All P/2 cross-bisection pairs exchange ``nbytes`` simultaneously."""
    if mpi.size % 2:
        raise ValueError("bisection exchange needs an even rank count")
    half = mpi.size // 2
    peer = mpi.rank + half if mpi.rank < half else mpi.rank - half
    for _ in range(rounds):
        req = mpi.irecv(src=peer, tag=9)
        yield from mpi.send(peer, nbytes, tag=9)
        yield from mpi.wait(req)
