"""Exact trace-size profiles of LU instances, without simulation.

Table 3 and §6.5 report trace *sizes* (timed and time-independent) and
action counts for instances up to class D on 1024 processes — about two
billion actions, far beyond what a Python event loop should enumerate.
This module computes those numbers **exactly** without simulating:

* A :class:`_DryMpi` stand-in runs the *real* ``lu_program`` generator for
  one rank in isolation, counting the TI actions/bytes it would emit and
  the TAU records the tracer would write.  Receive sizes are derived from
  the LU decomposition (a neighbour's shared boundary has the same extent,
  so the size a rank receives equals the size it would send back), which
  is what makes a single-rank dry walk possible.
* Because every SSOR iteration of a rank emits an *identical* action
  multiset (volumes included), a rank's totals for any ``itmax`` follow
  from walks at two small iteration counts:
  ``totals(itmax) = base + itmax * per_iter + (norm windows) * norm_extra``.

A pinning test asserts these profiles agree byte-for-byte with the real
instrument-execute-extract pipeline on classes the test suite actually
runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.actions import (
    AllReduce, Barrier, Bcast, CommSize, Compute, Irecv, Isend, Recv,
    Reduce, Send, Wait, format_action,
)
from ..tracer.tracefile import HEADER_BYTES, RECORD_BYTES
from .classes import LuClass, lu_class
from .lu import LuGrid, lu_program

__all__ = ["RankProfile", "InstanceProfile", "lu_rank_profile",
           "lu_instance_profile", "sample_rank_lines", "rank_burst_mix"]


@dataclass
class RankProfile:
    """Exact per-rank trace statistics."""

    rank: int
    ti_actions: int
    ti_bytes: int
    tau_records: int

    @property
    def tau_bytes(self) -> int:
        return HEADER_BYTES + RECORD_BYTES * self.tau_records


@dataclass
class InstanceProfile:
    """Exact whole-instance trace statistics (one LU class x rank count)."""

    class_name: str
    n_ranks: int
    ti_actions: int
    ti_bytes: int
    tau_records: int

    @property
    def tau_bytes(self) -> int:
        return self.n_ranks * HEADER_BYTES + RECORD_BYTES * self.tau_records

    @property
    def ti_mib(self) -> float:
        return self.ti_bytes / (1024.0 ** 2)

    @property
    def tau_mib(self) -> float:
        return self.tau_bytes / (1024.0 ** 2)

    @property
    def ratio(self) -> float:
        """TAU size over TI size (Table 3's ~10x)."""
        return self.tau_bytes / self.ti_bytes


class _FakeRequest:
    __slots__ = ("kind", "size", "src")

    def __init__(self, kind: str, size: float, src: int) -> None:
        self.kind = kind
        self.size = size
        self.src = src


class _DryMpi:
    """Runs one rank's program, counting trace output instead of simulating.

    Mirrors the tracer + extractor pipeline: consecutive compute bursts
    between MPI calls merge into one TI ``compute`` action; every traced
    call writes ``2 * (1 + n_counters)`` boundary records plus its message
    records.
    """

    def __init__(self, config: LuClass, nprocs: int, rank: int,
                 n_counters: int = 2, sink: Optional[list] = None,
                 jitter: float = 0.0, seed: int = 0,
                 burst_hook=None) -> None:
        #: optional callable(kind, flops) observing every compute call
        self._burst_hook = burst_hook
        self.rank = rank
        self.size = nprocs
        self.grid = LuGrid.build(config, nprocs, rank)
        if jitter:
            import numpy as np
            self._rng = np.random.default_rng(seed + 7919 * rank)
        else:
            self._rng = None
        self._jitter = jitter
        self._boundary_records = 1 + n_counters  # Enter/Leave + counters
        self.ti_actions = 0
        self.ti_bytes = 0
        self.tau_records = 0
        # Cumulative flop counter, integer-read at MPI boundaries exactly
        # like PAPI_FP_OPS -> extractor deltas.
        self._papi = 0.0
        self._boundary = 0
        self._sink = sink  # optional list of formatted lines

    # -- accounting -------------------------------------------------------
    def _emit(self, action) -> None:
        line = format_action(action)
        self.ti_actions += 1
        self.ti_bytes += len(line) + 1
        if self._sink is not None:
            self._sink.append(line)

    def _flush_burst(self) -> None:
        counter = int(round(self._papi))
        burst = counter - self._boundary
        if burst > 0:
            self._emit(Compute(self.rank, burst))
        self._boundary = counter

    def _mpi_call(self, extra_records: int = 0) -> None:
        self._flush_burst()
        self.tau_records += 2 * self._boundary_records + extra_records

    def _recv_size_from(self, src: int) -> float:
        """A neighbour's boundary extent equals ours along the shared edge,
        so the received volume is what we would send back on that edge."""
        grid = self.grid
        if src in (grid.north, grid.south):
            return float(grid.ns_plane_bytes)
        if src in (grid.west, grid.east):
            return float(grid.ew_plane_bytes)
        raise ValueError(f"rank {self.rank}: receive from non-neighbour {src}")

    # -- MpiProcess interface (the subset lu_program uses) -----------------
    def compute(self, flops: float, kind: str = "compute") -> Iterator:
        self.tau_records += 2 * self._boundary_records  # app function events
        if self._burst_hook is not None:
            self._burst_hook(kind, flops)
        if self._rng is not None:
            flops *= 1.0 + self._jitter * self._rng.uniform(-1.0, 1.0)
        self._papi += flops
        return
        yield  # pragma: no cover

    def comm_size(self) -> Iterator:
        self._mpi_call()
        self._emit(CommSize(self.rank, self.size))
        return self.size
        yield  # pragma: no cover

    def send(self, dst: int, nbytes: float, tag: int = 0,
             data=None) -> Iterator:
        self._mpi_call(extra_records=2)  # size trigger + SendMessage
        self._emit(Send(self.rank, dst, nbytes))
        return
        yield  # pragma: no cover

    def recv(self, src: int = -1, tag: int = -1) -> Iterator:
        self._mpi_call(extra_records=1)  # RecvMessage
        size = self._recv_size_from(src)
        self._emit(Recv(self.rank, src, size))
        return _FakeRequest("recv", size, src)
        yield  # pragma: no cover

    def isend(self, dst: int, nbytes: float, tag: int = 0, data=None):
        self._mpi_call(extra_records=2)
        self._emit(Isend(self.rank, dst, nbytes))
        return _FakeRequest("send", nbytes, self.rank)

    def irecv(self, src: int = -1, tag: int = -1):
        self._mpi_call()
        # The exchange_3 pattern: the only Irecvs LU posts are face
        # exchanges; note which face so wait() can resolve the size.
        size = self._recv_size_from_face(src)
        self._emit(Irecv(self.rank, src, size))
        return _FakeRequest("recv", size, src)

    def _recv_size_from_face(self, src: int) -> float:
        grid = self.grid
        if src in (grid.north, grid.south):
            return float(grid.ns_face_bytes)
        if src in (grid.west, grid.east):
            return float(grid.ew_face_bytes)
        raise ValueError(f"rank {self.rank}: Irecv from non-neighbour {src}")

    def wait(self, req: _FakeRequest) -> Iterator:
        if req.kind == "recv":
            self._mpi_call(extra_records=1)
            self._emit(Wait(self.rank))
        else:
            self._mpi_call()
        return req
        yield  # pragma: no cover

    def waitall(self, reqs) -> Iterator:
        for req in reqs:
            # Exhaust the wait() generator protocol without an engine.
            for _ in self.wait(req):  # pragma: no cover - yields nothing
                pass
        return reqs
        yield  # pragma: no cover

    def bcast(self, nbytes: float, root: int = 0, data=None) -> Iterator:
        self._mpi_call(extra_records=2)  # the two collective-volume triggers
        self._emit(Bcast(self.rank, nbytes))
        return data
        yield  # pragma: no cover

    def reduce(self, nbytes: float, flops: float = 0.0, root: int = 0,
               data=None, op=None) -> Iterator:
        self._mpi_call(extra_records=2)
        self._emit(Reduce(self.rank, nbytes, flops))
        return data
        yield  # pragma: no cover

    def allreduce(self, nbytes: float, flops: float = 0.0, data=None,
                  op=None) -> Iterator:
        self._mpi_call(extra_records=2)
        self._emit(AllReduce(self.rank, nbytes, flops))
        return data
        yield  # pragma: no cover

    def barrier(self) -> Iterator:
        self._mpi_call()
        self._emit(Barrier(self.rank))
        return
        yield  # pragma: no cover

    # -- driving ----------------------------------------------------------
    def run(self, config: LuClass) -> None:
        for _ in lu_program(self, config):  # pragma: no cover - no yields
            raise RuntimeError("dry walk must not yield")
        self._flush_burst()


def _walk(config: LuClass, nprocs: int, rank: int,
          n_counters: int) -> Tuple[int, int, int]:
    dry = _DryMpi(config, nprocs, rank, n_counters=n_counters)
    dry.run(config)
    return dry.ti_actions, dry.ti_bytes, dry.tau_records


def lu_rank_profile(config, nprocs: int, rank: int,
                    n_counters: int = 2) -> RankProfile:
    """Exact per-rank totals for the full ``config.itmax`` iterations.

    Three small dry walks (itmax 1 and 2 without a mid-run norm, plus one
    with) give the affine decomposition; iterations are identical, so the
    result is exact for any iteration count.
    """
    if isinstance(config, str):
        config = lu_class(config)
    if nprocs == 1:
        # A single rank issues no point-to-point calls inside the SSOR
        # loop, so whole iterations merge into one compute burst whose
        # volume (and digit count) grows with itmax — the affine shortcut
        # does not apply.  The full walk is cheap: few calls per iteration.
        totals = _walk(config, nprocs, rank, n_counters)
        return RankProfile(rank=rank, ti_actions=totals[0],
                           ti_bytes=totals[1], tau_records=totals[2])
    no_norm_1 = replace(config, itmax=1, inorm=10 ** 9)
    no_norm_2 = replace(config, itmax=2, inorm=10 ** 9)
    with_norm = replace(config, itmax=1, inorm=1)
    t1 = _walk(no_norm_1, nprocs, rank, n_counters)
    t2 = _walk(no_norm_2, nprocs, rank, n_counters)
    tn = _walk(with_norm, nprocs, rank, n_counters)
    per_iter = tuple(b - a for a, b in zip(t1, t2))
    base = tuple(a - p for a, p in zip(t1, per_iter))
    norm_extra = tuple(n - a for n, a in zip(tn, t1))
    n_norms = config.itmax // config.inorm
    totals = tuple(
        b + config.itmax * p + n_norms * x
        for b, p, x in zip(base, per_iter, norm_extra)
    )
    return RankProfile(rank=rank, ti_actions=totals[0], ti_bytes=totals[1],
                       tau_records=totals[2])


def lu_instance_profile(config, nprocs: int,
                        n_counters: int = 2) -> InstanceProfile:
    """Exact whole-instance totals (all ranks)."""
    if isinstance(config, str):
        config = lu_class(config)
    ti_actions = ti_bytes = tau_records = 0
    # Ranks with the same subdomain shape, neighbourhood, and digit
    # widths (their own and their peers') produce identical byte counts;
    # caching on that key collapses 1024 ranks to a few dozen walks.
    cache: Dict[tuple, Tuple[int, int, int]] = {}
    for rank in range(nprocs):
        grid = LuGrid.build(config, nprocs, rank)
        digits = tuple(
            len(str(peer)) if peer is not None else 0
            for peer in (grid.north, grid.south, grid.west, grid.east)
        )
        key = (grid.sub_nx, grid.sub_ny, len(str(rank)), digits)
        totals = cache.get(key)
        if totals is None:
            profile = lu_rank_profile(config, nprocs, rank,
                                      n_counters=n_counters)
            totals = (profile.ti_actions, profile.ti_bytes,
                      profile.tau_records)
            cache[key] = totals
        ti_actions += totals[0]
        ti_bytes += totals[1]
        tau_records += totals[2]
    return InstanceProfile(
        class_name=config.name,
        n_ranks=nprocs,
        ti_actions=ti_actions,
        ti_bytes=ti_bytes,
        tau_records=tau_records,
    )


def sample_rank_lines(config, nprocs: int, rank: int,
                      max_iters: int = 2, jitter: float = 0.002,
                      seed: int = 0) -> List[str]:
    """Real trace lines of one rank for a truncated instance — used to
    estimate gzip compressibility of paper-scale traces (§6.5).

    ``jitter`` reproduces the hardware-counter noise of real acquisitions;
    without it every iteration's volumes are bit-identical and gzip
    compresses far better than the paper's ~27x."""
    if isinstance(config, str):
        config = lu_class(config)
    truncated = replace(config, itmax=max_iters, inorm=max_iters)
    lines: List[str] = []
    dry = _DryMpi(truncated, nprocs, rank, sink=lines, jitter=jitter,
                  seed=seed)
    dry.run(truncated)
    return lines


def rank_burst_mix(config, nprocs: int, rank: int,
                   itmax: int = 1) -> List[Tuple[str, float]]:
    """(kind, flops) of every compute call of one rank for ``itmax``
    iterations — the input of analytic execution-time estimates (used by
    the §6.5 bench, where simulating 1024 folded ranks is impractical)."""
    if isinstance(config, str):
        config = lu_class(config)
    truncated = replace(config, itmax=itmax, inorm=itmax)
    bursts: List[Tuple[str, float]] = []
    dry = _DryMpi(truncated, nprocs, rank,
                  burst_hook=lambda kind, flops: bursts.append((kind, flops)))
    dry.run(truncated)
    return bursts
