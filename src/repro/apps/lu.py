"""NPB LU benchmark skeleton (communication + computation volumes).

The paper evaluates on NPB 3.3's LU: an SSOR solver whose 2-D pencil
decomposition produces the classic wavefront pattern.  This module is a
*volume-faithful* skeleton of that code: it issues, per rank, the same
sequence of MPI calls with the same message sizes, and the same flop
volumes per CPU burst, as the Fortran original — which is all the
acquisition process records (a time-independent trace holds volumes only).

Structure, per SSOR iteration (ssor.f):

* RHS assembly (``rhs``): three directional compute sweeps with two
  ``exchange_3`` ghost-cell exchanges (full faces, Irecv + Send + Wait).
* Lower-triangular solve: for each k-plane, ``exchange_1`` receives from
  north and west (with small unpack bursts), one jacld+blts compute, then
  sends to south and east (with a pack burst between them).
* Upper-triangular solve: the mirrored sweep (receive from south/east,
  send to north/west) over descending k.
* Solution update (``add``) and, every ``inorm`` iterations, a residual
  norm — an MPI_Allreduce of 5 doubles.

Flop volumes use NPB's official operation counts: LU class A totals
~119.28 Gflop over 64^3 x 250 point-iterations, i.e. ~1820 flop per grid
point per iteration, apportioned over the phases.

The decomposition (``LuGrid``) follows NPB: a power-of-two process count
arranged as a 2^ceil(p/2) x 2^floor(p/2) grid over (x, y), with the
remainder points of non-divisible dimensions going to the first rows and
columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from .classes import LuClass, lu_class

__all__ = ["LuGrid", "LuWorkload", "lu_program", "FLOPS_PER_POINT_ITER"]

# NPB LU operation counts: ~1820 flop / grid point / SSOR iteration,
# apportioned over the phases of the iteration.
FLOPS_RHS = 485.0         # rhs assembly, all three directions together
FLOPS_LOWER = 662.0       # jacld + blts, per point
FLOPS_UPPER = 662.0       # jacu + buts, per point
FLOPS_ADD = 11.0          # solution update
FLOPS_PER_POINT_ITER = FLOPS_RHS + FLOPS_LOWER + FLOPS_UPPER + FLOPS_ADD

# Unpacking a received boundary buffer touches every value once or twice:
# ~0.25 flop per byte (10 flop per 5-double point).
PACK_FLOPS_PER_BYTE = 0.25

BYTES_PER_POINT = 40      # 5 doubles per grid point in boundary buffers
GHOST_LAYERS = 2          # exchange_3 ships two ghost planes
NORM_BYTES = 40           # residual norm: 5 doubles
NORM_FLOPS = 10.0         # reduction operator cost per contribution
INIT_BCAST_BYTES = 40     # input parameters broadcast by rank 0


def _split(n: int, parts: int, index: int) -> int:
    """NPB-style block split: the first ``n % parts`` blocks get one extra."""
    base, extra = divmod(n, parts)
    return base + (1 if index < extra else 0)


@dataclass(frozen=True)
class LuGrid:
    """The 2-D process grid and this rank's subdomain."""

    nprocs: int
    xdim: int
    ydim: int
    rank: int
    col: int            # position along x (0..xdim-1)
    row: int            # position along y (0..ydim-1)
    sub_nx: int         # local points along x
    sub_ny: int         # local points along y
    nz: int

    @staticmethod
    def dims(nprocs: int) -> Tuple[int, int]:
        """NPB LU process grid: power-of-two count, near-square layout."""
        if nprocs < 1 or nprocs & (nprocs - 1):
            raise ValueError(
                f"NPB LU requires a power-of-two process count, got {nprocs}"
            )
        p = nprocs.bit_length() - 1
        return 1 << ((p + 1) // 2), 1 << (p // 2)

    @classmethod
    def build(cls, config: LuClass, nprocs: int, rank: int) -> "LuGrid":
        xdim, ydim = cls.dims(nprocs)
        if not 0 <= rank < nprocs:
            raise ValueError(f"rank {rank} out of range for {nprocs} procs")
        col, row = rank % xdim, rank // xdim
        return cls(
            nprocs=nprocs, xdim=xdim, ydim=ydim, rank=rank, col=col, row=row,
            sub_nx=_split(config.nx, xdim, col),
            sub_ny=_split(config.ny, ydim, row),
            nz=config.nz,
        )

    # Neighbours (None at domain boundary).  North = row-1, west = col-1.
    @property
    def north(self) -> Optional[int]:
        return self.rank - self.xdim if self.row > 0 else None

    @property
    def south(self) -> Optional[int]:
        return self.rank + self.xdim if self.row < self.ydim - 1 else None

    @property
    def west(self) -> Optional[int]:
        return self.rank - 1 if self.col > 0 else None

    @property
    def east(self) -> Optional[int]:
        return self.rank + 1 if self.col < self.xdim - 1 else None

    @property
    def points(self) -> int:
        return self.sub_nx * self.sub_ny * self.nz

    # Boundary message sizes (bytes).
    @property
    def ns_plane_bytes(self) -> int:
        """North/south wavefront exchange: one x-row of the k-plane."""
        return BYTES_PER_POINT * self.sub_nx

    @property
    def ew_plane_bytes(self) -> int:
        """East/west wavefront exchange: one y-row of the k-plane."""
        return BYTES_PER_POINT * self.sub_ny

    @property
    def ns_face_bytes(self) -> int:
        """exchange_3 full face with ghost layers, north/south."""
        return GHOST_LAYERS * BYTES_PER_POINT * self.sub_nx * self.nz

    @property
    def ew_face_bytes(self) -> int:
        """exchange_3 full face with ghost layers, east/west."""
        return GHOST_LAYERS * BYTES_PER_POINT * self.sub_ny * self.nz


class LuWorkload:
    """A bound (class, nprocs) LU instance: builds per-rank programs."""

    def __init__(self, config, nprocs: int) -> None:
        if isinstance(config, str):
            config = lu_class(config)
        self.config: LuClass = config
        self.nprocs = nprocs
        LuGrid.dims(nprocs)  # validate early

    def grid(self, rank: int) -> LuGrid:
        return LuGrid.build(self.config, self.nprocs, rank)

    def program(self, mpi) -> Iterator:
        """The rank program (pass ``workload.program`` to ``MpiRuntime.run``)."""
        return lu_program(mpi, self.config)

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"LuWorkload(class={self.config.name}, nprocs={self.nprocs})"


def _exchange_3(mpi, grid: LuGrid, direction: str) -> Iterator:
    """Ghost-face exchange (exchange_3): Irecv both ways, Send, Wait.

    ``direction`` is ``"ns"`` (north/south faces) or ``"ew"``.
    """
    if direction == "ns":
        peers = [grid.north, grid.south]
        nbytes = grid.ns_face_bytes
    else:
        peers = [grid.west, grid.east]
        nbytes = grid.ew_face_bytes
    peers = [p for p in peers if p is not None]
    recv_reqs = [mpi.irecv(src=p, tag=30) for p in peers]
    for peer in peers:
        # Pack the outgoing face, then ship it.
        yield from mpi.compute(nbytes * PACK_FLOPS_PER_BYTE, kind="pack")
        yield from mpi.send(peer, nbytes, tag=30)
    for req in recv_reqs:
        yield from mpi.wait(req)
        yield from mpi.compute(req.size * PACK_FLOPS_PER_BYTE, kind="unpack")


def _lower_sweep(mpi, grid: LuGrid, plane_flops: float) -> Iterator:
    """jacld + blts wavefront: k ascending, NW -> SE propagation."""
    for _k in range(1, grid.nz - 1):
        if grid.north is not None:
            req = yield from mpi.recv(src=grid.north, tag=10)
            yield from mpi.compute(req.size * PACK_FLOPS_PER_BYTE,
                                   kind="unpack")
        if grid.west is not None:
            req = yield from mpi.recv(src=grid.west, tag=11)
            yield from mpi.compute(req.size * PACK_FLOPS_PER_BYTE,
                                   kind="unpack")
        yield from mpi.compute(plane_flops, kind="blts")
        if grid.south is not None:
            yield from mpi.send(grid.south, grid.ns_plane_bytes, tag=10)
        if grid.east is not None:
            # Pack the eastward row before sending it.
            yield from mpi.compute(
                grid.ew_plane_bytes * PACK_FLOPS_PER_BYTE, kind="pack"
            )
            yield from mpi.send(grid.east, grid.ew_plane_bytes, tag=11)


def _upper_sweep(mpi, grid: LuGrid, plane_flops: float) -> Iterator:
    """jacu + buts wavefront: k descending, SE -> NW propagation."""
    for _k in range(grid.nz - 2, 0, -1):
        if grid.south is not None:
            req = yield from mpi.recv(src=grid.south, tag=20)
            yield from mpi.compute(req.size * PACK_FLOPS_PER_BYTE,
                                   kind="unpack")
        if grid.east is not None:
            req = yield from mpi.recv(src=grid.east, tag=21)
            yield from mpi.compute(req.size * PACK_FLOPS_PER_BYTE,
                                   kind="unpack")
        yield from mpi.compute(plane_flops, kind="buts")
        if grid.north is not None:
            yield from mpi.send(grid.north, grid.ns_plane_bytes, tag=20)
        if grid.west is not None:
            yield from mpi.compute(
                grid.ew_plane_bytes * PACK_FLOPS_PER_BYTE, kind="pack"
            )
            yield from mpi.send(grid.west, grid.ew_plane_bytes, tag=21)


def _rhs(mpi, grid: LuGrid) -> Iterator:
    """RHS assembly with its two ghost exchanges."""
    points_per_plane = grid.sub_nx * grid.sub_ny
    per_dir = FLOPS_RHS / 3.0 * points_per_plane * grid.nz
    yield from mpi.compute(per_dir, kind="rhs")
    yield from _exchange_3(mpi, grid, "ew")
    yield from mpi.compute(per_dir, kind="rhs")
    yield from _exchange_3(mpi, grid, "ns")
    yield from mpi.compute(per_dir, kind="rhs")


def _l2norm(mpi, grid: LuGrid) -> Iterator:
    """Residual norm: local sum of squares + 5-double allreduce."""
    yield from mpi.compute(grid.points * 2.0, kind="l2norm")
    yield from mpi.allreduce(NORM_BYTES, flops=NORM_FLOPS)


def lu_program(mpi, config) -> Iterator:
    """The full LU rank program: init, SSOR iterations, verification."""
    if isinstance(config, str):
        config = lu_class(config)
    grid = LuGrid.build(config, mpi.size, mpi.rank)
    points_per_plane = grid.sub_nx * grid.sub_ny

    # --- init: read_input + bcast of parameters, field setup, initial rhs
    yield from mpi.comm_size()
    yield from mpi.bcast(INIT_BCAST_BYTES, root=0)
    yield from mpi.compute(grid.points * 25.0, kind="init")  # setbv/setiv/erhs
    yield from _rhs(mpi, grid)
    yield from _l2norm(mpi, grid)
    yield from mpi.barrier()  # NPB synchronises before timing

    # --- SSOR loop
    lower_plane = FLOPS_LOWER * points_per_plane
    upper_plane = FLOPS_UPPER * points_per_plane
    for istep in range(1, config.itmax + 1):
        yield from _lower_sweep(mpi, grid, lower_plane)
        yield from _upper_sweep(mpi, grid, upper_plane)
        yield from mpi.compute(FLOPS_ADD * grid.points, kind="add")
        if istep % config.inorm == 0:
            yield from _l2norm(mpi, grid)
        yield from _rhs(mpi, grid)

    # --- verification: final norms, error, surface integral (pintgr)
    yield from _l2norm(mpi, grid)
    yield from mpi.compute(grid.points * 12.0, kind="error")
    yield from mpi.allreduce(NORM_BYTES, flops=NORM_FLOPS)
    yield from mpi.compute(points_per_plane * 30.0, kind="pintgr")
    yield from mpi.allreduce(8, flops=1.0)
