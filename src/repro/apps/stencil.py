"""2-D Jacobi heat stencil on a process grid.

A second regular MPI workload (the paper's intro motivates trace-based
dimensioning for production codes beyond a single benchmark): per
iteration, every rank exchanges halos with its 4-neighbourhood
(Irecv + Send + Wait) and computes a 5-point update, with a periodic
residual allreduce.  Compute-to-communication ratio is controlled by the
grid size per rank, making this the natural workload for the what-if
capacity-planning example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

__all__ = ["StencilConfig", "stencil_program", "stencil_dims"]

FLOPS_PER_POINT = 6.0     # 5-point stencil: 4 adds + 1 multiply + copy
BYTES_PER_VALUE = 8


def stencil_dims(nprocs: int) -> Tuple[int, int]:
    """Most-square factorisation px x py with px >= py."""
    if nprocs < 1:
        raise ValueError("need at least one process")
    best = (nprocs, 1)
    for py in range(1, int(nprocs ** 0.5) + 1):
        if nprocs % py == 0:
            best = (nprocs // py, py)
    return best


@dataclass(frozen=True)
class StencilConfig:
    """Global grid and iteration parameters."""

    nx: int
    ny: int
    iterations: int
    norm_period: int = 10

    def __post_init__(self) -> None:
        if self.nx < 1 or self.ny < 1 or self.iterations < 0:
            raise ValueError("stencil dimensions/iterations must be positive")
        if self.norm_period < 1:
            raise ValueError("norm_period must be >= 1")


def stencil_program(mpi, config: StencilConfig) -> Iterator:
    """One rank of the Jacobi iteration."""
    px, py = stencil_dims(mpi.size)
    col, row = mpi.rank % px, mpi.rank // px
    sub_nx = config.nx // px + (1 if col < config.nx % px else 0)
    sub_ny = config.ny // py + (1 if row < config.ny % py else 0)

    def neighbour(dc: int, dr: int) -> Optional[int]:
        c, r = col + dc, row + dr
        if 0 <= c < px and 0 <= r < py:
            return r * px + c
        return None

    peers = {
        "west": (neighbour(-1, 0), sub_ny * BYTES_PER_VALUE),
        "east": (neighbour(+1, 0), sub_ny * BYTES_PER_VALUE),
        "north": (neighbour(0, -1), sub_nx * BYTES_PER_VALUE),
        "south": (neighbour(0, +1), sub_nx * BYTES_PER_VALUE),
    }
    active = {k: v for k, v in peers.items() if v[0] is not None}

    yield from mpi.comm_size()
    yield from mpi.bcast(24, root=0)  # nx, ny, iterations
    yield from mpi.compute(sub_nx * sub_ny * 2.0, kind="init")

    for step in range(1, config.iterations + 1):
        recv_reqs = [mpi.irecv(src=peer, tag=1) for peer, _ in active.values()]
        for peer, nbytes in active.values():
            yield from mpi.send(peer, nbytes, tag=1)
        for req in recv_reqs:
            yield from mpi.wait(req)
        yield from mpi.compute(sub_nx * sub_ny * FLOPS_PER_POINT,
                               kind="jacobi")
        if step % config.norm_period == 0:
            yield from mpi.compute(sub_nx * sub_ny * 2.0, kind="norm")
            yield from mpi.allreduce(8, flops=1.0)
