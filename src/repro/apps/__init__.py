"""Workloads: the NPB LU skeleton and companion MPI applications."""

from .bisection import bisection_program, default_size_sweep, pingpong_program
from .cg import CG_CLASSES, CgClass, CgWorkload, cg_class, cg_grid, cg_program
from .classes import LU_CLASSES, LuClass, lu_class
from .lu import FLOPS_PER_POINT_ITER, LuGrid, LuWorkload, lu_program
from .mg import MG_CLASSES, MgClass, MgWorkload, mg_class, mg_grid, mg_program
from .ring import (
    RING_COMPUTE_FLOPS, RING_ITERATIONS, RING_MESSAGE_BYTES, ring_program,
)
from .stencil import StencilConfig, stencil_dims, stencil_program

__all__ = [
    "CG_CLASSES", "CgClass", "CgWorkload", "cg_class", "cg_grid",
    "cg_program",
    "FLOPS_PER_POINT_ITER", "LU_CLASSES", "LuClass", "LuGrid", "LuWorkload",
    "MG_CLASSES", "MgClass", "MgWorkload", "mg_class", "mg_grid",
    "mg_program",
    "RING_COMPUTE_FLOPS", "RING_ITERATIONS", "RING_MESSAGE_BYTES",
    "StencilConfig", "bisection_program", "default_size_sweep", "lu_class",
    "lu_program", "pingpong_program", "ring_program", "stencil_dims",
    "stencil_program",
]
