"""Grid'5000-like platform catalog (§6.1's experimental setup).

Two clusters, modelled after the paper's description:

* **bordereau** — 93 nodes, dual-processor dual-core 2.6 GHz Opteron 2218,
  all on a single 10-Gb switch (GigE node links, 10 Gb backbone).
* **gdx** — 186 nodes, dual-processor 2.0 GHz Opteron 246, spread over 18
  cabinets; two cabinets share a switch, the 9 switches hang off one
  second-level switch over 1-Gb uplinks ("a communication between two
  nodes located in two distant cabinets goes through three different
  switches").

The clusters are interconnected by a dedicated 10-Gb wide-area network.

Every factory has two flavours:

* ``ground_truth=True`` (default): hosts carry an *efficiency model* —
  the achieved flop rate depends on the computation kind and burst size
  (cache/pipeline effects) — and a *sharing model* (folded ranks hurt each
  other slightly beyond fair CPU sharing).  This is the stand-in for real
  hardware: §6.4 blames exactly this non-constant flop rate for the replay
  error, so the ground truth must have it.
* ``ground_truth=False``: bare nominal-rate hosts, as a platform file
  would describe them.  The calibration procedure then sets the measured
  average flop rate on such a platform before replay
  (:func:`repro.core.calibration.calibrate_flop_rate`).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Optional

from ..simkernel import Platform

__all__ = [
    "BORDEREAU_NODES", "GDX_NODES",
    "npb_efficiency_model", "default_sharing_model",
    "bordereau", "gdx", "grid5000",
]

BORDEREAU_NODES = 93
GDX_NODES = 186

# Nominal per-core rates for this workload family.  An Opteron 2218
# (2.6 GHz) sustains a few hundred Mflop/s on NPB LU; we give the core a
# nominal 6.5e8 peak that the efficiency model scales down to the
# 3.5-5.5e8 range the paper's timings imply.  gdx's Opteron 246 (2.0 GHz)
# is scaled by the clock ratio.
BORDEREAU_CORE_SPEED = 6.5e8
GDX_CORE_SPEED = BORDEREAU_CORE_SPEED * (2.0 / 2.6)

GIGABIT = 1.25e8          # bytes/s
TEN_GIGABIT = 1.25e9
# A single non-blocking switch: its fabric never bottlenecks concurrent
# node-to-node flows (bordereau's 93 ports on one 10-Gb switch, §6.1).
SWITCH_FABRIC = 1.25e10
LINK_LATENCY = 1.667e-5   # the paper's Fig. 5 order of magnitude
WAN_LATENCY = 4.5e-3      # Bordeaux <-> Orsay one-way
WAN_BANDWIDTH = TEN_GIGABIT

# Per-kind base efficiency: wavefront triangular solves have poor locality,
# streaming RHS sweeps are friendlier, pack/unpack is memory-bound.
_KIND_EFFICIENCY = {
    "blts": 0.64,
    "buts": 0.64,
    "rhs": 0.88,
    "add": 0.82,
    "init": 0.85,
    "l2norm": 0.80,
    "error": 0.80,
    "pintgr": 0.78,
    "pack": 0.52,
    "unpack": 0.52,
    "reduce_op": 0.70,
    "jacobi": 0.85,
    "norm": 0.80,
}
_DEFAULT_KIND_EFFICIENCY = 0.75


@lru_cache(maxsize=16384)
def npb_efficiency_model(kind: str, flops: float) -> float:
    """Achieved-rate factor for a burst of ``flops`` of computation ``kind``.

    Two effects compose: a per-kind locality factor, and a burst-size
    factor — tiny bursts pay loop startup and cold caches, large bursts
    amortise them.  The size factor ramps from ~0.62 (sub-10-kflop bursts)
    to 1.0 (100-Mflop bursts).  This is the non-constant flop rate that
    the paper's §6.4 identifies as the main accuracy limit of replay
    calibrated with a single average rate.
    """
    base = _KIND_EFFICIENCY.get(kind, _DEFAULT_KIND_EFFICIENCY)
    magnitude = math.log10(flops + 10.0)
    size_factor = 0.62 + 0.38 / (1.0 + math.exp(-(magnitude - 5.0)))
    return min(1.0, base * size_factor)


def default_sharing_model(resident_ranks: int) -> float:
    """Cache/memory-bus pressure of co-resident ranks: a flat ~12 % rate
    hit as soon as a host is shared.  This is what makes folded
    acquisitions in Table 2 slightly *more* than x times slower (the
    paper measures ratios of 2.55 at F-2 up to 33.25 at F-32 on single
    memory buses)."""
    return 1.0 if resident_ranks <= 1 else 0.88


def _models(ground_truth: bool):
    if ground_truth:
        return npb_efficiency_model, default_sharing_model
    return None, None


def bordereau(
    n_hosts: int = BORDEREAU_NODES,
    cores: int = 1,
    ground_truth: bool = True,
    speed: Optional[float] = None,
    platform: Optional[Platform] = None,
) -> Platform:
    """The bordereau cluster.  ``cores=1`` matches the paper's acquisition
    runs ("we use only one core per node"); pass ``cores=4`` for the §6.5
    folded class-D acquisition that uses all 128 cores of 32 nodes.
    ``speed`` overrides the per-core rate (used by calibration)."""
    efficiency, sharing = _models(ground_truth)
    plat = platform if platform is not None else Platform("bordereau")
    plat.add_cluster(
        "bordereau",
        n_hosts,
        speed=speed if speed is not None else BORDEREAU_CORE_SPEED,
        cores=cores,
        link_bw=GIGABIT,
        link_lat=LINK_LATENCY,
        backbone_bw=SWITCH_FABRIC,
        backbone_lat=LINK_LATENCY,
        backbone_sharing="fatpipe",
        prefix="bordereau-",
        suffix=".bordeaux.grid5000.fr",
        efficiency_model=efficiency,
        sharing_model=sharing,
    )
    return plat


def gdx(
    n_hosts: int = GDX_NODES,
    cores: int = 1,
    ground_truth: bool = True,
    speed: Optional[float] = None,
    platform: Optional[Platform] = None,
) -> Platform:
    """The gdx cluster, with its two-level switch hierarchy: 18 cabinets,
    two cabinets per switch (about 21 hosts behind each switch)."""
    efficiency, sharing = _models(ground_truth)
    plat = platform if platform is not None else Platform("gdx")
    # 186 nodes / 18 cabinets ~ 10.3 nodes per cabinet; two cabinets share
    # a switch, so each switch group holds ~21 nodes.
    switch_group = max(1, round(n_hosts / 9))
    plat.add_cluster(
        "gdx",
        n_hosts,
        speed=speed if speed is not None else GDX_CORE_SPEED,
        cores=cores,
        link_bw=GIGABIT,
        link_lat=LINK_LATENCY,
        backbone_bw=SWITCH_FABRIC,
        backbone_lat=LINK_LATENCY,
        backbone_sharing="fatpipe",
        cabinet_size=switch_group,
        cabinet_bw=GIGABIT,
        cabinet_lat=LINK_LATENCY,
        prefix="gdx-",
        suffix=".orsay.grid5000.fr",
        efficiency_model=efficiency,
        sharing_model=sharing,
    )
    return plat


def grid5000(
    n_bordereau: int = BORDEREAU_NODES,
    n_gdx: int = GDX_NODES,
    cores: int = 1,
    ground_truth: bool = True,
) -> Platform:
    """Both clusters plus the dedicated 10-Gb inter-site network — the
    platform of the Scattering acquisition modes."""
    plat = Platform("grid5000")
    bordereau(n_bordereau, cores=cores, ground_truth=ground_truth,
              platform=plat)
    gdx(n_gdx, cores=cores, ground_truth=ground_truth, platform=plat)
    plat.connect("bordereau", "gdx", bandwidth=WAN_BANDWIDTH,
                 latency=WAN_LATENCY)
    return plat
