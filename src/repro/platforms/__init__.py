"""Platform catalog: Grid'5000-like clusters of the paper's evaluation."""

import os

from .catalog import (
    BORDEREAU_NODES, GDX_NODES, bordereau, default_sharing_model, gdx,
    grid5000, npb_efficiency_model,
)

_DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


def platform_xml_path(name: str) -> str:
    """Path to a shipped SimGrid v3 platform file.

    Available: ``bordereau``, ``gdx``, ``grid5000``, and ``mycluster``
    (the paper's exact Fig. 5 example).  These are the calibrated-flavour
    descriptions (nominal rates, no efficiency models) ready for
    ``repro-replay --platform-xml``.
    """
    path = os.path.join(_DATA_DIR, f"{name}.xml")
    if not os.path.exists(path):
        available = sorted(
            f[:-4] for f in os.listdir(_DATA_DIR) if f.endswith(".xml")
        )
        raise KeyError(f"no shipped platform {name!r}; available: {available}")
    return path

__all__ = [
    "BORDEREAU_NODES", "GDX_NODES", "bordereau", "default_sharing_model",
    "gdx", "grid5000", "npb_efficiency_model", "platform_xml_path",
]
