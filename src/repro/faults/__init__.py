"""Deterministic fault injection for the simulation pipeline.

The subsystem in one sentence: a :class:`FaultPlan` (JSON-loadable
schedule of host crashes, link outages, and link degradations) is
executed by a :class:`FaultInjector` daemon inside the simulation
kernel; the MPI layers turn the resulting activity failures into
:class:`RankFailure` records and a structured :class:`FaultReport`
(failure provenance, casualties, lost progress), with an analytic
coordinated checkpoint/restart model as the alternative to aborting at
the first rank death.  :mod:`repro.faults.chaos` generates seeded random
plans and corrupted inputs for the chaos test-suite.
"""

from .chaos import corrupt_bytes, corrupt_trace_dir, random_fault_plan
from .checkpoint import CheckpointOutcome, simulate_checkpoint_restart
from .injector import FaultInjector
from .plan import (
    CheckpointModel, FaultEvent, FaultPlan, HostCrash, LinkDegrade,
    LinkDown, load_fault_plan,
)
from .report import FaultReport, RankFailure, build_fault_report

__all__ = [
    "CheckpointModel", "CheckpointOutcome", "FaultEvent", "FaultInjector",
    "FaultPlan", "FaultReport", "HostCrash", "LinkDegrade", "LinkDown",
    "RankFailure", "build_fault_report", "corrupt_bytes",
    "corrupt_trace_dir", "load_fault_plan", "random_fault_plan",
    "simulate_checkpoint_restart",
]
