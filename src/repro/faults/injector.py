"""The fault injector: a daemon process executing a plan's events.

The injector runs *inside* the simulation as a daemon process (it never
keeps the run alive, and never appears in deadlock reports): it sleeps on
kernel timers to each event's instant and applies it —

* ``HostCrash`` — marks the host unavailable, FAILs every compute burst
  on its CPU, then hands the crash to the registered ``host_crash_hooks``
  (the replayer/runtime kill the resident rank processes and purge their
  match-queue entries there, where the rank<->host mapping lives).
* ``LinkDown`` — marks the link unavailable; the comm system FAILs every
  in-flight flow crossing it and refuses new ones until the optional
  ``t_up`` restore.
* ``LinkDegrade`` — rescales the link constraint's capacity through
  ``Engine.set_capacity``, which re-prices the in-flight flows via the
  normal lazy LMM recompute (scalar or vectorized alike).  Degrading a
  *fatpipe* link only affects flows started afterwards: fatpipe capacity
  is folded into each flow's private bound at start time.

Everything is deterministic: events execute in (time, plan-position)
order, and the ``applied`` log records what happened when, feeding the
:class:`~repro.faults.report.FaultReport` provenance.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..simkernel.engine import Engine
from ..simkernel.mailbox import CommSystem
from ..simkernel.platform import Host, Platform
from ..simkernel.telemetry import FaultMetrics
from .plan import FaultEvent, HostCrash, LinkDegrade, LinkDown

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules and applies the events of a fault plan (see module doc)."""

    def __init__(
        self,
        engine: Engine,
        platform: Platform,
        events,
        comms: Optional[CommSystem] = None,
        metrics: Optional[FaultMetrics] = None,
    ) -> None:
        self.engine = engine
        self.platform = platform
        self.comms = comms
        self.metrics = metrics if metrics is not None else FaultMetrics()
        # (time, plan-position) order; LinkDown restores become their own
        # scheduled steps so a single sorted pass drives everything.
        schedule = []
        for i, event in enumerate(events):
            schedule.append((event.t, i, "apply", event))
            if isinstance(event, LinkDown) and event.t_up is not None:
                schedule.append((event.t_up, i, "restore", event))
        schedule.sort(key=lambda item: (item[0], item[1], item[2]))
        self._schedule = schedule
        # Each entry: {"t", "event", "action"} — the provenance log.
        self.applied: List[dict] = []
        # Called as hook(host, event) right after a host is marked down;
        # the MPI layers kill resident rank processes here.
        self.host_crash_hooks: List[Callable[[Host, HostCrash], None]] = []

    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Validate the plan against the platform and start the daemon."""
        link_names = None
        for _, _, _, event in self._schedule:
            if isinstance(event, HostCrash):
                if event.host not in self.platform.hosts:
                    raise ValueError(
                        f"fault plan: unknown host {event.host!r}"
                    )
            else:
                if link_names is None:
                    link_names = {link.name
                                  for link in self.platform.iter_links()}
                if event.link not in link_names:
                    raise ValueError(
                        f"fault plan: unknown link {event.link!r}"
                    )
        if not self._schedule:
            return
        if self.comms is not None:
            self.comms.enable_fault_tracking()
        self.engine.add_process("fault-injector", self._daemon(),
                                daemon=True)

    def _daemon(self):
        engine = self.engine
        for t, _, action, event in self._schedule:
            delay = t - engine.now
            if delay > 0:
                yield engine.timer(delay, name="fault-injector")
            if action == "apply":
                self._apply(event)
            else:
                self._restore(event)

    # ------------------------------------------------------------------
    def _log(self, event: FaultEvent, action: str) -> None:
        self.applied.append({
            "t": self.engine.now,
            "action": action,
            "event": event.to_dict(),
        })
        self.metrics.events_applied += 1

    def _apply(self, event: FaultEvent) -> None:
        if isinstance(event, HostCrash):
            self._apply_host_crash(event)
        elif isinstance(event, LinkDown):
            self._apply_link_down(event)
        else:
            self._apply_link_degrade(event)

    def _apply_host_crash(self, event: HostCrash) -> None:
        host = self.platform.hosts[event.host]
        if not host.available:
            return  # already dead; nothing left to take down
        host.available = False
        host.failed_at = self.engine.now
        reason = event.describe()
        metrics = self.metrics
        metrics.host_crashes += 1
        self._log(event, "apply")
        # Compute bursts on the dead CPU fail first (their waiters are
        # the resident ranks, which die next anyway — this is resource
        # bookkeeping, not process scheduling).
        for act in list(host.cpu.users):
            if self.engine.fail_activity(act, reason):
                metrics.activities_failed += 1
        for hook in self.host_crash_hooks:
            hook(host, event)

    def _apply_link_down(self, event: LinkDown) -> None:
        link = self.platform.link(event.link)
        if not link.available:
            return
        link.available = False
        link.failed_at = self.engine.now
        reason = event.describe()
        metrics = self.metrics
        metrics.link_downs += 1
        self._log(event, "apply")
        if self.comms is not None:
            metrics.requests_failed += self.comms.take_link_down(
                link.constraint, reason)

    def _apply_link_degrade(self, event: LinkDegrade) -> None:
        link = self.platform.link(event.link)
        link.degrade_factor = float(event.factor)
        self.metrics.link_degrades += 1
        self._log(event, "apply")
        if link.fatpipe:
            # Fatpipe capacity is folded into flow bounds at start time:
            # mutate the constraint so future flows see it; in-flight
            # flows keep their baked-in bound (documented behaviour).
            link.constraint.capacity = link.effective_bandwidth()
        else:
            self.engine.set_capacity(link.constraint,
                                     link.effective_bandwidth())

    def _restore(self, event: LinkDown) -> None:
        link = self.platform.link(event.link)
        if link.available:
            return
        link.available = True
        link.failed_at = None
        self.metrics.link_ups += 1
        self._log(event, "restore")
        if self.comms is not None:
            self.comms.bring_link_up(link.constraint)
