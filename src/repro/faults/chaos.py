"""Chaos harness: seeded random fault plans and corrupted trace archives.

Two generators feed the chaos test-suite (``tests/test_faults.py`` and
``tests/test_failure_injection.py``), both driven by
:class:`random.Random` so every run is reproducible from its seed:

* :func:`random_fault_plan` — a :class:`~repro.faults.plan.FaultPlan` of
  random host crashes, link outages, and link degradations against a
  concrete platform (only real resource names are drawn, so the plan
  always validates — the *simulation* is what gets stressed, not the
  plan parser).
* :func:`corrupt_bytes` / :func:`corrupt_trace_dir` — random truncation,
  bit-flips, and garbage splices over trace files, for asserting that
  every reader in the pipeline fails with a typed :class:`ValueError`
  (never ``struct.error``, ``IndexError``, or a hang) on damaged input.
"""

from __future__ import annotations

import os
import random
import shutil
from typing import List, Optional, Sequence, Tuple

from .plan import CheckpointModel, FaultPlan, HostCrash, LinkDegrade, LinkDown

__all__ = ["random_fault_plan", "corrupt_bytes", "corrupt_trace_dir",
           "CORRUPTION_MODES"]

_DEFAULT_KINDS = ("host_crash", "link_down", "link_degrade")


def random_fault_plan(
    platform,
    seed: int,
    horizon: float,
    n_events: int = 3,
    kinds: Sequence[str] = _DEFAULT_KINDS,
    max_host_crashes: Optional[int] = None,
    checkpoint: Optional[CheckpointModel] = None,
) -> FaultPlan:
    """A seeded random plan over ``platform``'s real hosts and links.

    Event times are uniform in ``(0, horizon)``; ``max_host_crashes``
    caps the number of dead hosts (``None`` = no cap).  Identical
    ``(platform, seed, ...)`` arguments produce the identical plan.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon!r}")
    rng = random.Random(seed)
    hosts = sorted(platform.hosts)
    links = sorted({link.name for link in platform.iter_links()
                    if link.name})
    kinds = [k for k in kinds if k in _DEFAULT_KINDS]
    if not kinds:
        raise ValueError("kinds must include at least one fault kind")
    events = []
    crashes = 0
    for _ in range(n_events):
        kind = rng.choice(kinds)
        t = rng.uniform(horizon * 0.01, horizon)
        if kind == "host_crash" and hosts and (
                max_host_crashes is None or crashes < max_host_crashes):
            events.append(HostCrash(rng.choice(hosts), t))
            crashes += 1
        elif kind == "link_down" and links:
            t_up = (t + rng.uniform(horizon * 0.01, horizon)
                    if rng.random() < 0.5 else None)
            events.append(LinkDown(rng.choice(links), t, t_up))
        elif links:
            events.append(LinkDegrade(rng.choice(links), t,
                                      factor=rng.uniform(0.05, 0.9)))
    return FaultPlan(events=tuple(events), checkpoint=checkpoint, seed=seed)


# ---------------------------------------------------------------------------
# Input corruption
# ---------------------------------------------------------------------------

CORRUPTION_MODES = ("truncate", "bitflip", "garbage")


def corrupt_bytes(data: bytes, rng: random.Random,
                  mode: Optional[str] = None) -> Tuple[bytes, str]:
    """Damage ``data`` one random way; returns ``(damaged, description)``.

    * ``truncate`` — cut the tail at a random offset;
    * ``bitflip`` — flip 1-8 random bits in place;
    * ``garbage`` — overwrite a random slice with random bytes.
    """
    if mode is None:
        mode = rng.choice(CORRUPTION_MODES)
    if mode not in CORRUPTION_MODES:
        raise ValueError(f"unknown corruption mode {mode!r}")
    if not data:
        return b"\xff", f"{mode} on empty input -> one garbage byte"
    if mode == "truncate":
        cut = rng.randrange(len(data))
        return data[:cut], f"truncate at byte {cut}/{len(data)}"
    if mode == "bitflip":
        blob = bytearray(data)
        n_flips = rng.randint(1, 8)
        spots = []
        for _ in range(n_flips):
            pos = rng.randrange(len(blob))
            bit = rng.randrange(8)
            blob[pos] ^= 1 << bit
            spots.append(f"{pos}.{bit}")
        return bytes(blob), f"flip bits {','.join(spots)}"
    blob = bytearray(data)
    start = rng.randrange(len(blob))
    length = min(len(blob) - start, rng.randint(1, 16))
    for i in range(start, start + length):
        blob[i] = rng.randrange(256)
    return bytes(blob), f"garbage splice [{start}, {start + length})"


def corrupt_trace_dir(src_dir: str, dst_dir: str, seed: int,
                      n_files: int = 1,
                      mode: Optional[str] = None) -> List[str]:
    """Copy ``src_dir`` to ``dst_dir`` and damage ``n_files`` random files.

    Returns one ``"<file>: <description>"`` entry per corruption, so a
    failing chaos case prints exactly what was done to the archive.
    """
    rng = random.Random(seed)
    os.makedirs(dst_dir, exist_ok=True)
    names = []
    for name in sorted(os.listdir(src_dir)):
        src = os.path.join(src_dir, name)
        if os.path.isfile(src):
            shutil.copy(src, os.path.join(dst_dir, name))
            names.append(name)
    if not names:
        raise ValueError(f"no files to corrupt in {src_dir!r}")
    descriptions = []
    for name in (rng.choice(names) for _ in range(n_files)):
        path = os.path.join(dst_dir, name)
        with open(path, "rb") as handle:
            data = handle.read()
        damaged, what = corrupt_bytes(data, rng, mode=mode)
        with open(path, "wb") as handle:
            handle.write(damaged)
        descriptions.append(f"{name}: {what}")
    return descriptions
