"""Fault plans: frozen, JSON-loadable schedules of failure events.

A :class:`FaultPlan` is the deterministic input of every fault-injection
run: an ordered set of events —

* :class:`HostCrash` — the host dies at ``t``; its resident ranks are
  killed, its compute bursts FAIL, and its unstarted messages are purged.
* :class:`LinkDown` — the link dies at ``t``: in-flight flows crossing it
  FAIL and new ones are refused; with ``t_up`` the link comes back for
  flows started after that instant.
* :class:`LinkDegrade` — at ``t`` the link's effective bandwidth becomes
  ``factor`` times nominal; in-flight flows are re-priced through the
  normal LMM recompute (scalar and vectorized paths alike).

plus an optional :class:`CheckpointModel` (coordinated checkpoint
interval / cost / restart cost) used by the ``checkpoint-restart`` replay
mode, and an optional ``seed`` recording the chaos generator's seed when
the plan was produced randomly (:mod:`repro.faults.chaos`).

The JSON form round-trips exactly::

    {"seed": 7,
     "events": [
       {"kind": "host_crash", "host": "c-3", "t": 1.5},
       {"kind": "link_down", "link": "c-0.up", "t": 0.5, "t_up": 2.0},
       {"kind": "link_degrade", "link": "c.bb", "t": 1.0, "factor": 0.25}],
     "checkpoint": {"interval": 5.0, "cost": 0.1, "restart": 0.2}}
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "HostCrash", "LinkDown", "LinkDegrade", "CheckpointModel", "FaultPlan",
    "FaultEvent", "load_fault_plan",
]


def _check_time(t: float, what: str) -> float:
    t = float(t)
    if not math.isfinite(t) or t < 0:
        raise ValueError(f"{what} must be a finite time >= 0, got {t!r}")
    return t


@dataclass(frozen=True)
class HostCrash:
    """Host ``host`` fails permanently at simulated time ``t``."""

    host: str
    t: float
    kind = "host_crash"

    def __post_init__(self) -> None:
        _check_time(self.t, "host_crash t")
        if not self.host:
            raise ValueError("host_crash needs a host name")

    def describe(self) -> str:
        return f"host_crash {self.host} t={self.t:g}"

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "host": self.host, "t": self.t}


@dataclass(frozen=True)
class LinkDown:
    """Link ``link`` fails at ``t``; optionally restored at ``t_up``."""

    link: str
    t: float
    t_up: Optional[float] = None
    kind = "link_down"

    def __post_init__(self) -> None:
        _check_time(self.t, "link_down t")
        if not self.link:
            raise ValueError("link_down needs a link name")
        if self.t_up is not None:
            _check_time(self.t_up, "link_down t_up")
            if self.t_up <= self.t:
                raise ValueError(
                    f"link_down t_up ({self.t_up!r}) must be after "
                    f"t ({self.t!r})"
                )

    def describe(self) -> str:
        up = f" up={self.t_up:g}" if self.t_up is not None else ""
        return f"link_down {self.link} t={self.t:g}{up}"

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {"kind": self.kind, "link": self.link,
                                  "t": self.t}
        if self.t_up is not None:
            doc["t_up"] = self.t_up
        return doc


@dataclass(frozen=True)
class LinkDegrade:
    """Link ``link`` runs at ``factor`` x nominal bandwidth from ``t`` on."""

    link: str
    t: float
    factor: float
    kind = "link_degrade"

    def __post_init__(self) -> None:
        _check_time(self.t, "link_degrade t")
        if not self.link:
            raise ValueError("link_degrade needs a link name")
        factor = float(self.factor)
        if not math.isfinite(factor) or factor <= 0:
            raise ValueError(
                f"link_degrade factor must be finite and > 0, got "
                f"{self.factor!r} (use link_down for a dead link)"
            )

    def describe(self) -> str:
        return f"link_degrade {self.link} t={self.t:g} factor={self.factor:g}"

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "link": self.link, "t": self.t,
                "factor": self.factor}


FaultEvent = Union[HostCrash, LinkDown, LinkDegrade]

_EVENT_KINDS = {
    "host_crash": HostCrash,
    "link_down": LinkDown,
    "link_degrade": LinkDegrade,
}


@dataclass(frozen=True)
class CheckpointModel:
    """Coordinated checkpoint/restart cost model (Daly-style).

    ``interval`` is the amount of *application progress* (simulated
    seconds of fault-free execution) between coordinated checkpoints;
    ``cost`` the wall-clock seconds each checkpoint adds; ``restart`` the
    wall-clock seconds a restart takes after a crash.
    """

    interval: float
    cost: float = 0.0
    restart: float = 0.0

    def __post_init__(self) -> None:
        interval = float(self.interval)
        if not math.isfinite(interval) or interval <= 0:
            raise ValueError(
                f"checkpoint interval must be finite and > 0, got "
                f"{self.interval!r}"
            )
        for name in ("cost", "restart"):
            value = float(getattr(self, name))
            if not math.isfinite(value) or value < 0:
                raise ValueError(
                    f"checkpoint {name} must be finite and >= 0, got "
                    f"{value!r}"
                )

    def to_dict(self) -> Dict[str, float]:
        return {"interval": self.interval, "cost": self.cost,
                "restart": self.restart}


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of fault events (see module docstring)."""

    events: Tuple[FaultEvent, ...] = ()
    checkpoint: Optional[CheckpointModel] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, tuple(_EVENT_KINDS.values())):
                raise ValueError(
                    f"unknown fault event {event!r}; expected HostCrash, "
                    "LinkDown or LinkDegrade"
                )

    # -- queries --------------------------------------------------------
    def sorted_events(self) -> List[FaultEvent]:
        """Events in application order: by time, ties by plan position —
        the order the injector executes them, deterministically."""
        return [e for _, _, e in sorted(
            (e.t, i, e) for i, e in enumerate(self.events)
        )]

    def host_crashes(self) -> List[HostCrash]:
        return [e for e in self.sorted_events() if isinstance(e, HostCrash)]

    def validate(self, platform) -> None:
        """Check every event addresses a real platform resource."""
        link_names = {link.name for link in platform.iter_links()}
        for event in self.events:
            if isinstance(event, HostCrash):
                if event.host not in platform.hosts:
                    raise ValueError(
                        f"fault plan: unknown host {event.host!r}"
                    )
            elif event.link not in link_names:
                raise ValueError(f"fault plan: unknown link {event.link!r}")

    # -- (de)serialisation ---------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "events": [e.to_dict() for e in self.events],
        }
        if self.checkpoint is not None:
            doc["checkpoint"] = self.checkpoint.to_dict()
        if self.seed is not None:
            doc["seed"] = self.seed
        return doc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "FaultPlan":
        if not isinstance(doc, dict):
            raise ValueError(f"fault plan must be a JSON object, got "
                             f"{type(doc).__name__}")
        unknown = set(doc) - {"events", "checkpoint", "seed"}
        if unknown:
            raise ValueError(
                f"fault plan: unknown keys {sorted(unknown)}"
            )
        events: List[FaultEvent] = []
        for i, entry in enumerate(doc.get("events", ())):
            if not isinstance(entry, dict):
                raise ValueError(f"fault plan event #{i} must be an object")
            kind = entry.get("kind")
            event_cls = _EVENT_KINDS.get(kind)
            if event_cls is None:
                raise ValueError(
                    f"fault plan event #{i}: unknown kind {kind!r} "
                    f"(expected one of {sorted(_EVENT_KINDS)})"
                )
            fields = {k: v for k, v in entry.items() if k != "kind"}
            try:
                events.append(event_cls(**fields))
            except TypeError as exc:
                raise ValueError(
                    f"fault plan event #{i}: {exc}"
                ) from None
        checkpoint = None
        ckpt_doc = doc.get("checkpoint")
        if ckpt_doc is not None:
            if not isinstance(ckpt_doc, dict):
                raise ValueError("fault plan: 'checkpoint' must be an object")
            try:
                checkpoint = CheckpointModel(**ckpt_doc)
            except TypeError as exc:
                raise ValueError(f"fault plan checkpoint: {exc}") from None
        seed = doc.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise ValueError(f"fault plan seed must be an int, got {seed!r}")
        return cls(events=tuple(events), checkpoint=checkpoint, seed=seed)

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from None
        return cls.from_dict(doc)

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")


def load_fault_plan(path: str) -> FaultPlan:
    """Read a fault plan JSON file (raises ``ValueError`` on bad content)."""
    with open(path, "r", encoding="utf-8") as handle:
        return FaultPlan.loads(handle.read())
