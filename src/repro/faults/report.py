"""Structured fault reports: who died, who it took down, what was lost.

A :class:`FaultReport` is attached to ``ReplayResult.fault_report`` (and
``RunResult.fault_report`` for the simulated-MPI runtime) whenever a
fault plan was active.  It records:

* the fault events actually applied (with their application times);
* every :class:`RankFailure` — a rank killed directly by a fault, with
  the event that killed it;
* the *casualties* — surviving ranks left blocked forever on a dead
  rank, detected by the deadlock machinery at quiescence, each with its
  transitive root cause (rank 5 waiting on rank 4 waiting on dead rank 3
  is attributed to rank 3);
* per-rank lost progress (actions completed, last simulated time);
* in ``checkpoint-restart`` mode, the checkpoint timeline outcome.

Determinism contract: ``to_json()`` rounds every time to
:data:`TIME_DECIMALS` decimals (microseconds) and sorts keys, so the
same plan produces byte-identical reports under the scalar and the
vectorized LMM solver (which agree far below that resolution).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["RankFailure", "FaultReport", "build_fault_report",
           "TIME_DECIMALS"]

#: Time resolution (decimal digits of simulated seconds) in rendered
#: reports: 1 us.  Coarse enough to absorb scalar-vs-vectorized solver
#: noise (~1e-9 relative), fine enough for any makespan analysis.
TIME_DECIMALS = 6


def _round_time(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(float(value), TIME_DECIMALS)


@dataclass(frozen=True)
class RankFailure:
    """One rank killed directly by a fault event."""

    rank: int
    t: float        # simulated time of death
    cause: str      # the event's describe() string
    host: str = ""  # host the rank lived on

    def to_dict(self) -> Dict[str, object]:
        return {"rank": self.rank, "t": _round_time(self.t),
                "cause": self.cause, "host": self.host}


@dataclass
class FaultReport:
    """Everything a fault-injected run did to the application."""

    mode: str                     # "abort" | "checkpoint-restart"
    n_ranks: int
    makespan: float               # simulated completion/termination time
    events_applied: List[dict] = field(default_factory=list)
    failures: List[RankFailure] = field(default_factory=list)
    casualties: List[dict] = field(default_factory=list)
    lost_progress: Dict[int, dict] = field(default_factory=dict)
    fault_free_makespan: Optional[float] = None   # checkpoint-restart mode
    checkpoint: Optional[dict] = None             # checkpoint-restart mode

    @property
    def failed_ranks(self) -> List[int]:
        return sorted(f.rank for f in self.failures)

    @property
    def casualty_ranks(self) -> List[int]:
        return sorted(c["rank"] for c in self.casualties)

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "mode": self.mode,
            "n_ranks": self.n_ranks,
            "makespan": _round_time(self.makespan),
            "events_applied": [
                {"t": _round_time(entry["t"]), "action": entry["action"],
                 "event": entry["event"]}
                for entry in self.events_applied
            ],
            "failures": [f.to_dict() for f in self.failures],
            "casualties": self.casualties,
            "lost_progress": {
                str(rank): {
                    "actions_completed": info["actions_completed"],
                    "time": _round_time(info.get("time")),
                    "state": info["state"],
                }
                for rank, info in sorted(self.lost_progress.items())
            },
        }
        if self.fault_free_makespan is not None:
            doc["fault_free_makespan"] = _round_time(
                self.fault_free_makespan)
        if self.checkpoint is not None:
            ckpt = dict(self.checkpoint)
            for key in ("checkpoint_overhead", "total_rework"):
                if key in ckpt:
                    ckpt[key] = _round_time(ckpt[key])
            if "crashes" in ckpt:
                ckpt["crashes"] = [
                    {k: (_round_time(v) if isinstance(v, float) else v)
                     for k, v in crash.items()}
                    for crash in ckpt["crashes"]
                ]
            doc["checkpoint"] = ckpt
        return doc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def summary(self) -> str:
        """Human-readable digest, one line per fact."""
        lines = [
            f"fault report ({self.mode}): {len(self.failures)} rank(s) "
            f"failed, {len(self.casualties)} casualty(ies), makespan "
            f"{self.makespan:g}"
        ]
        for failure in self.failures:
            lines.append(
                f"  rank {failure.rank} died at t={failure.t:g}: "
                f"{failure.cause}"
            )
        for casualty in self.casualties:
            root = casualty.get("root_cause_rank")
            root_s = f"rank {root}" if root is not None else "a fault event"
            lines.append(
                f"  rank {casualty['rank']} blocked in "
                f"{casualty.get('action') or '?'} (root cause: {root_s})"
            )
        if self.checkpoint is not None:
            lines.append(
                f"  checkpoint-restart: {self.checkpoint['n_restarts']} "
                f"restart(s), {self.checkpoint['n_checkpoints']} "
                f"checkpoint(s), rework {self.checkpoint['total_rework']:g}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Abort-mode provenance
# ---------------------------------------------------------------------------

def _peer_of(action_tokens: Optional[List[str]],
             pending_irecv_srcs: List[int]) -> Optional[int]:
    """Which rank a blocked rank is waiting on, from its current action."""
    if action_tokens and len(action_tokens) >= 3:
        keyword = action_tokens[1]
        if keyword in ("send", "Isend", "recv", "Irecv"):
            peer = action_tokens[2]
            if peer.startswith("p"):
                try:
                    return int(peer[1:])
                except ValueError:
                    return None
    if action_tokens and len(action_tokens) >= 2 \
            and action_tokens[1] == "wait" and pending_irecv_srcs:
        return pending_irecv_srcs[0]
    return None


def build_fault_report(
    mode: str,
    n_ranks: int,
    makespan: float,
    events_applied: List[dict],
    failures: List[RankFailure],
    progress: Dict[int, dict],
    blocked: Optional[Dict[int, dict]] = None,
) -> FaultReport:
    """Assemble the abort-mode report with transitive provenance.

    ``progress`` maps each rank to ``{"actions_completed", "time",
    "state"}`` (state: "finished" | "failed" | "blocked").  ``blocked``
    maps each deadlocked rank to ``{"action": [tokens...],
    "pending_irecv_srcs": [ranks...]}``; the waiting-on graph it induces
    is walked to attribute every casualty to the rank death that started
    the chain.
    """
    failures = sorted(failures, key=lambda f: (f.t, f.rank))
    dead = {f.rank: f for f in failures}
    casualties: List[dict] = []
    if blocked:
        waiting_on = {
            rank: _peer_of(info.get("action"),
                           info.get("pending_irecv_srcs", []))
            for rank, info in blocked.items()
        }
        root_cache: Dict[int, Optional[int]] = {}

        def root_of(rank: int) -> Optional[int]:
            chain = []
            current: Optional[int] = rank
            while current is not None:
                if current in root_cache:
                    root = root_cache[current]
                    break
                if current in dead:
                    root = current
                    break
                if current in chain:  # cycle of blocked survivors
                    root = None
                    break
                chain.append(current)
                current = waiting_on.get(current)
            else:
                root = None
            for visited in chain:
                root_cache[visited] = root
            return root

        fallback = failures[0].rank if failures else None
        for rank in sorted(blocked):
            info = blocked[rank]
            peer = waiting_on.get(rank)
            root = root_of(rank)
            tokens = info.get("action")
            casualties.append({
                "rank": rank,
                "action": " ".join(tokens) if tokens else None,
                "waiting_on": peer,
                # A chain that never reaches a dead rank (collectives,
                # blocked cycles) is still a consequence of the run's
                # failures; attribute it to the first death.
                "root_cause_rank": root if root is not None else fallback,
                "root_cause": (dead[root].cause if root in dead
                               else (dead[fallback].cause
                                     if fallback in dead else None)),
            })
    return FaultReport(
        mode=mode,
        n_ranks=n_ranks,
        makespan=makespan,
        events_applied=list(events_applied),
        failures=failures,
        casualties=casualties,
        lost_progress=dict(progress),
    )
