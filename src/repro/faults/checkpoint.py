"""Coordinated checkpoint/restart cost model (Daly-style).

The ``checkpoint-restart`` replay mode does not re-simulate the
application after each modeled crash — coordinated checkpointing makes
that unnecessary.  One fault-free replay yields the application's total
*progress* ``W`` (its makespan in fault-free simulated seconds); this
module then plays the crash schedule against a piecewise wall-clock
timeline:

* progress advances 1:1 with wall time;
* every ``interval`` seconds of progress, a coordinated checkpoint adds
  ``cost`` wall seconds (during which no progress is made);
* a crash at wall time ``t`` rewinds global progress to the last
  *completed* checkpoint (a crash during a checkpoint write discards
  that checkpoint), then adds ``restart`` wall seconds of downtime —
  the progress between the restored checkpoint and the crash is the
  *rework* that must be re-executed;
* crashes landing after completion (or during another crash's restart
  window) cost only what they interrupt.

The mapping is exact for this model and runs in O(crashes + W/interval).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

from .plan import CheckpointModel

__all__ = ["CheckpointOutcome", "simulate_checkpoint_restart"]


@dataclass
class CheckpointOutcome:
    """What the checkpoint/restart timeline did to one run."""

    makespan: float                 # wall-clock completion time
    fault_free_makespan: float      # the progress target W
    per_rank: List[float]           # wall-clock finish per rank
    n_restarts: int = 0             # crashes that actually interrupted
    n_checkpoints: int = 0          # completed checkpoint writes
    total_rework: float = 0.0       # progress re-executed across crashes
    checkpoint_overhead: float = 0.0  # wall seconds spent checkpointing
    crashes: List[dict] = field(default_factory=list)  # per-crash log


def _wall_at(progress: float, w0: float, p0: float,
             interval: float, cost: float) -> float:
    """Wall time at which ``progress`` is reached in the current segment
    (``progress >= p0``); checkpoints in (p0, progress] add ``cost``."""
    n_ckpts = math.floor(progress / interval) - math.floor(p0 / interval)
    return w0 + (progress - p0) + cost * n_ckpts


def _progress_at(t: float, w0: float, p0: float,
                 interval: float, cost: float):
    """Progress reached at wall time ``t`` (``t >= w0``) plus the number
    of checkpoint *multiples* completed by then (absolute index).

    Closed form (no per-checkpoint loop, so a pathological plan with a
    tiny interval cannot stall the harness): after the first partial
    interval, the timeline repeats in cycles of ``interval + cost``.
    """
    k0 = math.floor(p0 / interval)
    first_p = (k0 + 1) * interval
    t_rel = t - w0
    dw_first = first_p - p0
    if t_rel <= dw_first:
        return p0 + t_rel, k0
    t_rel -= dw_first
    if t_rel < cost:
        # Crash mid-checkpoint: progress reached first_p but the write
        # never completed — it is not restorable.
        return first_p, k0
    t_rel -= cost
    cycle = interval + cost
    n = math.floor(t_rel / cycle)
    t_rel -= n * cycle
    k = k0 + 1 + n
    p = first_p + n * interval
    if t_rel <= interval:
        return p + t_rel, k
    return p + interval, k  # mid the next checkpoint write


def simulate_checkpoint_restart(
    fault_free_makespan: float,
    per_rank_progress: Sequence[float],
    crash_times: Sequence[float],
    model: CheckpointModel,
) -> CheckpointOutcome:
    """Play ``crash_times`` (wall-clock) against the checkpoint timeline.

    ``per_rank_progress`` holds each rank's fault-free finish time (its
    personal progress target); the global run completes at
    ``fault_free_makespan`` worth of progress.
    """
    W = float(fault_free_makespan)
    interval, cost, restart = model.interval, model.cost, model.restart
    w0, p0 = 0.0, 0.0
    outcome = CheckpointOutcome(
        makespan=0.0, fault_free_makespan=W,
        per_rank=[],
    )
    for t_crash in sorted(float(t) for t in crash_times):
        if t_crash >= _wall_at(W, w0, p0, interval, cost):
            break  # the application already finished
        if t_crash <= w0:
            # Crash during another crash's restart window: nothing new
            # is lost, but the restart starts over.
            outcome.n_restarts += 1
            outcome.crashes.append({
                "t": t_crash, "progress": p0, "restored_to": p0,
                "rework": 0.0, "during_restart": True,
            })
            w0 = t_crash + restart
            continue
        p_crash, k_done = _progress_at(t_crash, w0, p0, interval, cost)
        saved = max(p0, k_done * interval)
        rework = p_crash - saved
        outcome.n_restarts += 1
        outcome.total_rework += rework
        outcome.n_checkpoints += k_done - math.floor(p0 / interval)
        outcome.crashes.append({
            "t": t_crash, "progress": p_crash, "restored_to": saved,
            "rework": rework, "during_restart": False,
        })
        w0 = t_crash + restart
        p0 = saved
    outcome.makespan = _wall_at(W, w0, p0, interval, cost)
    outcome.n_checkpoints += (math.floor(W / interval)
                              - math.floor(p0 / interval))
    outcome.checkpoint_overhead = cost * outcome.n_checkpoints
    # A rank whose fault-free finish predates the final restart point was
    # already done (its completed state lives in the checkpoints); it
    # "finishes" when the final segment starts.  Later ranks map through
    # the final segment's wall timeline.
    outcome.per_rank = [
        w0 if f <= p0 else _wall_at(float(f), w0, p0, interval, cost)
        for f in per_rank_progress
    ]
    return outcome
