"""Importers: foreign trace formats -> time-independent action traces.

Each importer normalizes one external trace format into the paper's
Table 1 action set (plus the AI-workload collectives), writing a
standard per-process trace directory that every downstream tool —
``repro-validate``, ``repro-compile``, ``repro-replay``, campaigns —
consumes unchanged.  See ``docs/importers.md``.
"""

from .param_comms import (  # noqa: F401
    ImportReport,
    import_param_comms,
    normalize_comm_name,
)

__all__ = ["ImportReport", "import_param_comms", "normalize_comm_name"]
