"""PyTorch/param comms-trace importer.

The param benchmark suite (``commsTraceReplay``) records one JSON list
per rank describing every communication a training job issued: the
collective name, message sizes in *elements*, the element dtype, the
process-group ranks, and — for the v-variants — per-rank split sizes.
This importer normalizes those records into the time-independent action
format so an AI job's comms trace replays through the same pipeline as
an acquired MPI trace.

Volume mapping (``docs/importers.md`` carries the user-facing table):

* sizes are element counts; bytes = ``count * dtype_bytes``.
* ``all_reduce``    -> ``allReduce <bytes> <elements>`` (one reduction
  flop per element).
* ``all_gather``    -> ``allGather <bytes>`` (the per-rank contribution).
* ``reduce_scatter``-> ``reduceScatter <bytes> <elements>``.
* ``all_to_all``    -> ``allToAll <bytes / world_size>`` (uniform
  per-peer share of the total send buffer).
* ``all_to_allv``   -> ``allToAllv <total> <s0> ...`` from the *output*
  splits (what this rank sends to each peer); input splits are the
  receiver's view and are implied by the other ranks' rows.
* ``broadcast``     -> ``bcast <bytes>``; ``barrier`` -> ``barrier``.
* ``send/isend/recv/irecv/wait`` -> their point-to-point actions.

Unsupported-op policy: any record the format cannot express — a
sub-world process group, an unknown collective — raises ``ValueError``
naming the record, unless ``skip_unsupported=True``, which drops it and
counts it in the report (so a lossy import is always visible).
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.actions import (
    Action,
    AllGather,
    AllReduce,
    AllToAll,
    AllToAllv,
    Barrier,
    Bcast,
    CommSize,
    Irecv,
    Isend,
    Recv,
    ReduceScatter,
    Reduce,
    Send,
    Wait,
    format_action,
)
from ..core.trace import trace_file_name

__all__ = [
    "DTYPE_BYTES",
    "ImportReport",
    "import_param_comms",
    "normalize_comm_name",
    "parse_param_records",
]

#: Element sizes of the dtypes param traces carry.
DTYPE_BYTES = {
    "float": 4, "float32": 4, "int": 4, "int32": 4, "signed char": 1,
    "float16": 2, "half": 2, "bfloat16": 2,
    "float64": 8, "double": 8, "int64": 8, "long": 8, "unsigned long": 8,
    "int16": 2, "short": 2,
    "int8": 1, "uint8": 1, "byte": 1, "char": 1, "bool": 1,
}

#: Canonical collective names, keyed by the lowercased record name with
#: ``_``/``-`` stripped — param traces spell the same op several ways
#: (``all_reduce``, ``allreduce``, ``All_Reduce``).
_NAME_TABLE = {
    "allreduce": "allReduce",
    "allgather": "allGather",
    "allgatherbase": "allGather",
    "allgatherv": "allGather",
    "reducescatter": "reduceScatter",
    "reducescatterbase": "reduceScatter",
    "reducescatterv": "reduceScatter",
    "alltoall": "allToAll",
    "alltoallsingle": "allToAll",
    "alltoallbase": "allToAll",
    "alltoallv": "allToAllv",
    "broadcast": "bcast",
    "bcast": "bcast",
    "reduce": "reduce",
    "barrier": "barrier",
    "send": "send",
    "isend": "Isend",
    "recv": "recv",
    "irecv": "Irecv",
    "wait": "wait",
    "waitall": "wait",
}

_RANK_FILE_RE = re.compile(r"rank[._]?(\d+)\.json$")


@dataclass
class ImportReport:
    """What one import produced (and what it could not express)."""

    n_ranks: int = 0
    n_actions: int = 0
    n_records: int = 0
    n_skipped: int = 0
    skipped_ops: Dict[str, int] = field(default_factory=dict)
    n_bytes: int = 0          # size of the written TI trace files
    out_dir: str = ""

    def as_dict(self) -> dict:
        return {
            "n_ranks": self.n_ranks,
            "n_actions": self.n_actions,
            "n_records": self.n_records,
            "n_skipped": self.n_skipped,
            "skipped_ops": dict(sorted(self.skipped_ops.items())),
            "n_bytes": self.n_bytes,
            "out_dir": self.out_dir,
        }


def normalize_comm_name(name: str) -> Optional[str]:
    """The canonical action name of a param record's ``comms`` field, or
    None when the op has no time-independent counterpart."""
    key = str(name).lower().replace("_", "").replace("-", "").strip()
    return _NAME_TABLE.get(key)


def _get(record: dict, *keys, default=None):
    """First present key — param traces mix snake_case and camelCase
    (``in_msg_size`` vs ``inMsgSize``) across producer versions."""
    for key in keys:
        if key in record:
            return record[key]
    return default


def _dtype_bytes(record: dict, where: str) -> int:
    dtype = _get(record, "dtype", "data_type", default="float32")
    try:
        return DTYPE_BYTES[str(dtype).lower()]
    except KeyError:
        raise ValueError(
            f"{where}: unknown dtype {dtype!r} (known: "
            f"{sorted(set(DTYPE_BYTES))})"
        ) from None


def _elements(record: dict, where: str) -> float:
    count = _get(record, "in_msg_size", "inMsgSize", "msg_size", "msgSize",
                 "count")
    if count is None:
        raise ValueError(f"{where}: record carries no message size")
    count = float(count)
    if count < 0:
        raise ValueError(
            f"{where}: negative message size {count:g} — corrupt record")
    return count


def _peer(record: dict, rank: int, where: str) -> int:
    peer = _get(record, "dst_rank", "dstRank", "dst", "src_rank", "srcRank",
                "src", "remote_rank", "remoteRank", "root")
    if peer is None:
        raise ValueError(f"{where}: point-to-point record names no peer")
    peer = int(peer)
    if peer < 0:
        raise ValueError(f"{where}: negative peer rank {peer}")
    return peer


def _check_group(record: dict, world_size: int, where: str) -> None:
    """The time-independent format has no sub-communicators (§3): a
    record pinned to a smaller process group cannot be expressed."""
    ranks = _get(record, "pg_ranks", "pgRanks", "group_ranks", "groupRanks")
    if ranks is not None and len(ranks) not in (0, world_size):
        raise ValueError(
            f"{where}: process group of {len(ranks)} ranks != world size "
            f"{world_size}; sub-communicators are unsupported (the trace "
            "format roots every collective in the world communicator)"
        )
    pg_size = _get(record, "pg_size", "pgSize", "group_size", "groupSize")
    if pg_size is not None and int(pg_size) not in (0, world_size):
        raise ValueError(
            f"{where}: process group of {int(pg_size)} ranks != world "
            f"size {world_size}; sub-communicators are unsupported"
        )


def _record_to_action(record: dict, rank: int, world_size: int,
                      pending_irecvs: List[int], where: str
                      ) -> Optional[Action]:
    """One param record -> one action (None = no-op record)."""
    raw_name = _get(record, "comms", "comm", "name", "op")
    if raw_name is None:
        raise ValueError(f"{where}: record has no 'comms' field")
    name = normalize_comm_name(raw_name)
    if name is None:
        raise ValueError(
            f"{where}: unsupported op {raw_name!r} — no time-independent "
            "counterpart"
        )
    if name == "wait":
        if not pending_irecvs:
            # A wait on a send request has no TI counterpart (the
            # replayer treats Isend as a detached send) — drop it.
            return None
        pending_irecvs.pop(0)
        return Wait(rank)
    if name == "barrier":
        _check_group(record, world_size, where)
        return Barrier(rank)
    esize = _dtype_bytes(record, where)
    if name in ("send", "Isend", "recv", "Irecv"):
        peer = _peer(record, rank, where)
        if peer >= world_size:
            raise ValueError(
                f"{where}: peer rank {peer} outside world of {world_size}")
        nbytes = _elements(record, where) * esize
        cls = {"send": Send, "Isend": Isend,
               "recv": Recv, "Irecv": Irecv}[name]
        if name == "Irecv":
            pending_irecvs.append(len(pending_irecvs))
        return cls(rank, peer, nbytes)
    _check_group(record, world_size, where)
    elements = _elements(record, where)
    nbytes = elements * esize
    if name == "allReduce":
        return AllReduce(rank, nbytes, elements)
    if name == "reduce":
        return Reduce(rank, nbytes, elements)
    if name == "bcast":
        return Bcast(rank, nbytes)
    if name == "allGather":
        return AllGather(rank, nbytes)
    if name == "reduceScatter":
        return ReduceScatter(rank, nbytes, elements)
    if name == "allToAll":
        if world_size < 1:
            raise ValueError(f"{where}: world size {world_size} < 1")
        return AllToAll(rank, nbytes / world_size)
    if name == "allToAllv":
        splits = _get(record, "out_split", "outSplit", "out_split_sizes",
                      "outSplitSizes")
        if splits is None:
            splits = _get(record, "in_split", "inSplit", "in_split_sizes",
                          "inSplitSizes")
        if splits:
            if len(splits) != world_size:
                raise ValueError(
                    f"{where}: allToAllv carries {len(splits)} split "
                    f"sizes for a world of {world_size}"
                )
            byte_splits = tuple(float(s) * esize for s in splits)
            return AllToAllv(rank, sum(byte_splits), byte_splits)
        # No splits recorded: an even all_to_all_single in v clothing.
        share = nbytes / world_size
        return AllToAllv(rank, nbytes, tuple([share] * world_size))
    raise ValueError(f"{where}: unhandled op {name!r}")  # pragma: no cover


def parse_param_records(records: Sequence[dict], rank: int,
                        world_size: int, skip_unsupported: bool,
                        report: ImportReport, where: str) -> List[Action]:
    """Normalize one rank's record list into its action list."""
    actions: List[Action] = [CommSize(rank, world_size)]
    pending_irecvs: List[int] = []
    for index, record in enumerate(records):
        if not isinstance(record, dict):
            raise ValueError(
                f"{where}: record #{index} is {type(record).__name__}, "
                "expected an object"
            )
        report.n_records += 1
        site = f"{where}: record #{index}"
        try:
            action = _record_to_action(record, rank, world_size,
                                       pending_irecvs, site)
        except ValueError as exc:
            if not skip_unsupported:
                raise
            op = str(_get(record, "comms", "comm", "name", "op",
                          default="?"))
            report.n_skipped += 1
            report.skipped_ops[op] = report.skipped_ops.get(op, 0) + 1
            del exc
            continue
        if action is not None:
            actions.append(action)
    return actions


def _load_json(path: str):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            # json.JSONDecodeError subclasses ValueError, so a corrupt
            # file surfaces the same exception family as a corrupt
            # time-independent trace (the fuzz sweep's contract).
            return json.load(handle)
    except OSError as exc:
        raise ValueError(f"{path}: cannot read trace file: {exc}") from None


def _discover_rank_files(directory: str) -> List[Tuple[int, str]]:
    found = {}
    for entry in sorted(os.listdir(directory)):
        match = _RANK_FILE_RE.search(entry)
        if match is None:
            continue
        rank = int(match.group(1))
        if rank in found:
            raise ValueError(
                f"{directory}: both {found[rank]!r} and {entry!r} claim "
                f"rank {rank}"
            )
        found[rank] = entry
    if not found:
        raise ValueError(
            f"{directory}: no per-rank param trace files (rank<k>.json)")
    ranks = sorted(found)
    if ranks != list(range(len(ranks))):
        raise ValueError(
            f"{directory}: rank files are not contiguous from 0: "
            f"{ranks[:10]}"
        )
    return [(rank, os.path.join(directory, found[rank])) for rank in ranks]


def _extract_records(doc, where: str) -> Sequence[dict]:
    if isinstance(doc, dict):
        # Execution-trace containers wrap the list under a key.
        for key in ("traceEvents", "trace_events", "comms", "entries"):
            if key in doc and isinstance(doc[key], list):
                return doc[key]
        raise ValueError(
            f"{where}: JSON object has no record list (looked for "
            "'traceEvents'/'comms'/'entries')"
        )
    if isinstance(doc, list):
        return doc
    raise ValueError(
        f"{where}: expected a JSON list of records, got "
        f"{type(doc).__name__}"
    )


def import_param_comms(
    source: str,
    out_dir: str,
    world_size: Optional[int] = None,
    skip_unsupported: bool = False,
    binary: bool = False,
) -> ImportReport:
    """Import a param comms trace into a time-independent trace set.

    ``source`` is either a directory of per-rank files (``rank0.json``,
    ``rank1.json``, ...; each rank replays its own record list) or a
    single JSON file of collective records, which requires
    ``world_size`` and replicates the collectives symmetrically across
    all ranks (the single-file form cannot carry point-to-point traffic
    — whose per-rank streams differ — and refuses it).

    Writes ``SG_process<rank>.trace`` files (or ``.btrace`` with
    ``binary=True``) under ``out_dir`` and returns an
    :class:`ImportReport`.
    """
    report = ImportReport(out_dir=out_dir)
    per_rank: List[List[Action]] = []
    if os.path.isdir(source):
        rank_files = _discover_rank_files(source)
        n_ranks = len(rank_files)
        if world_size is not None and world_size != n_ranks:
            raise ValueError(
                f"{source}: --world-size {world_size} but the directory "
                f"holds {n_ranks} rank files"
            )
        for rank, path in rank_files:
            records = _extract_records(_load_json(path), path)
            per_rank.append(parse_param_records(
                records, rank, n_ranks, skip_unsupported, report, path))
    else:
        if world_size is None or world_size < 1:
            raise ValueError(
                "a single-file param trace needs world_size >= 1 (the "
                "file carries one symmetric record list, not per-rank "
                "streams)"
            )
        records = _extract_records(_load_json(source), source)
        for index, record in enumerate(records):
            if isinstance(record, dict):
                raw = _get(record, "comms", "comm", "name", "op")
                name = normalize_comm_name(raw) if raw is not None else None
                if name in ("send", "Isend", "recv", "Irecv"):
                    raise ValueError(
                        f"{source}: record #{index} is point-to-point "
                        f"({raw!r}); per-rank streams differ, so a "
                        "single-file import cannot replicate it — use "
                        "the per-rank directory form"
                    )
        for rank in range(world_size):
            rank_report = ImportReport()
            per_rank.append(parse_param_records(
                records, rank, world_size, skip_unsupported, rank_report,
                source))
            if rank == 0:
                report.n_records = rank_report.n_records
                report.n_skipped = rank_report.n_skipped
                report.skipped_ops = rank_report.skipped_ops

    os.makedirs(out_dir, exist_ok=True)
    n_bytes = 0
    if binary:
        from ..core.binfmt import binary_trace_file_name, write_binary_trace
        for rank, actions in enumerate(per_rank):
            path = os.path.join(out_dir, binary_trace_file_name(rank))
            write_binary_trace(actions, rank, path)
            n_bytes += os.path.getsize(path)
    else:
        for rank, actions in enumerate(per_rank):
            path = os.path.join(out_dir, trace_file_name(rank))
            with open(path, "w", encoding="ascii") as handle:
                for action in actions:
                    line = format_action(action) + "\n"
                    handle.write(line)
                    n_bytes += len(line)
    report.n_ranks = len(per_rank)
    report.n_actions = sum(len(a) for a in per_rank)
    report.n_bytes = n_bytes
    return report
