"""repro — Time-independent trace replay for off-line MPI simulation.

Reproduction of "Assessing the Performance of MPI Applications Through
Time-Independent Trace Replay" (Desprez, Markomanolis, Quinson, Suter —
PSTI/ICPP 2011, INRIA RR-7489).

Public entry points:

* :mod:`repro.core` — the time-independent trace format (Table 1), the
  trace replayer, the acquisition pipeline, and calibration.
* :mod:`repro.simkernel` — the SimGrid-like simulation kernel.
* :mod:`repro.smpi` — the simulated-MPI runtime used to execute
  applications and acquire traces.
* :mod:`repro.tracer` — the TAU-like tracing substrate.
* :mod:`repro.extract` — the tau2simgrid extractor (timed → TI traces).
* :mod:`repro.apps` — workloads (NPB LU skeleton, ring, stencil, ...).
* :mod:`repro.platforms` — Grid'5000-like platform catalog.
"""

__version__ = "1.0.0"
