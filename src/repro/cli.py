"""Command-line tools mirroring the paper's workflow.

* ``repro-acquire`` — run an instrumented application under an
  acquisition mode and produce time-independent traces (§4).
* ``repro-tau2ti`` — the tau2simgrid extractor on an existing TAU
  archive (§4.3).
* ``repro-calibrate`` — flop-rate + network calibration; can write a
  calibrated SimGrid platform file (§5).
* ``repro-replay`` — the trace replay tool: platform XML + deployment
  XML + traces in, simulated execution time out (§5, Fig. 4).
* ``repro-validate`` — static replayability check of a trace set.
* ``repro-stats`` — descriptive statistics of a trace (volumes, traffic
  matrix, message-size mix).
* ``repro-convert`` — text <-> binary trace conversion (§7 future work).
* ``repro-campaign`` — parallel experiment campaigns over the full
  pipeline with content-addressed result caching (lives in
  :mod:`repro.campaign.cli`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .apps import (
    CgWorkload, LuWorkload, MgWorkload, StencilConfig, ring_program,
    stencil_program,
)
from .core.acquisition import AcquisitionMode, acquire
from .core.calibration import calibrate_flop_rate, calibrate_network
from .core.replay import TraceReplayer
from .extract import tau2simgrid
from .platforms import bordereau, gdx, grid5000
from .simkernel import (
    dump_platform,
    load_deployment,
    load_platform,
)
from .smpi import round_robin_deployment

_PLATFORMS = {"bordereau": bordereau, "gdx": gdx, "grid5000": grid5000}


def _build_platform(name: str, n_hosts: Optional[int], ground_truth: bool,
                    cores: int = 1, speed: Optional[float] = None):
    try:
        factory = _PLATFORMS[name]
    except KeyError:
        raise SystemExit(
            f"unknown platform {name!r}; choose from {sorted(_PLATFORMS)}"
        )
    kwargs = {"ground_truth": ground_truth, "cores": cores}
    if name != "grid5000" and speed is not None:
        kwargs["speed"] = speed
    if n_hosts is not None:
        if name == "grid5000":
            kwargs.update(n_bordereau=n_hosts, n_gdx=n_hosts)
        else:
            kwargs["n_hosts"] = n_hosts
    return factory(**kwargs)


def _build_program(args):
    if args.app == "lu":
        return LuWorkload(args.lu_class, args.ranks).program
    if args.app == "cg":
        return CgWorkload(args.lu_class, args.ranks).program
    if args.app == "mg":
        return MgWorkload(args.lu_class, args.ranks).program
    if args.app == "ring":
        return ring_program
    if args.app == "stencil":
        config = StencilConfig(nx=args.stencil_size, ny=args.stencil_size,
                               iterations=args.stencil_iterations)
        return lambda mpi: stencil_program(mpi, config)
    raise SystemExit(f"unknown app {args.app!r}")


def _add_app_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--app", default="lu",
                        choices=["lu", "cg", "mg", "ring", "stencil"],
                        help="workload to run (default: lu)")
    parser.add_argument("--class", dest="lu_class", default="S",
                        help="NPB problem class for lu/cg/mg (default: S)")
    parser.add_argument("--ranks", type=int, default=4,
                        help="number of MPI ranks (default: 4)")
    parser.add_argument("--stencil-size", type=int, default=256)
    parser.add_argument("--stencil-iterations", type=int, default=100)
    parser.add_argument("--platform", default="bordereau",
                        choices=sorted(_PLATFORMS))
    parser.add_argument("--hosts", type=int, default=None,
                        help="number of hosts per cluster (default: full)")
    parser.add_argument("--cores", type=int, default=1,
                        help="cores per host (paper uses 1 for acquisition)")


def main_acquire(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-acquire",
        description="Acquire a time-independent trace (instrument, "
                    "execute, extract, gather).",
    )
    _add_app_options(parser)
    parser.add_argument("--mode", default="R",
                        help="acquisition mode: R, F-<x>, S-<y>, SF-(<u>,<v>)")
    parser.add_argument("--workdir", required=True,
                        help="directory for tau/ and ti/ outputs")
    parser.add_argument("--jitter", type=float, default=0.0,
                        help="hardware-counter jitter fraction (e.g. 0.005)")
    parser.add_argument("--skip-application-run", action="store_true",
                        help="skip the uninstrumented reference run")
    args = parser.parse_args(argv)

    platform = _build_platform(args.platform, args.hosts, ground_truth=True,
                               cores=args.cores)
    mode = AcquisitionMode.parse(args.mode)
    result = acquire(
        _build_program(args), platform, args.ranks, mode=mode,
        workdir=args.workdir, papi_jitter=args.jitter,
        measure_application=not args.skip_application_run,
    )
    print(f"mode:                {result.mode_label}")
    if result.application_time is not None:
        print(f"application time:    {result.application_time:.3f} s")
        print(f"tracing overhead:    {result.tracing_overhead:.3f} s")
    print(f"execution time:      {result.execution_time:.3f} s")
    print(f"timed trace size:    {result.tau_archive.mib:.2f} MiB "
          f"({result.tau_archive.n_records} records)")
    print(f"extraction:          {result.extraction.wall_seconds:.3f} s "
          f"({result.extraction.n_actions} actions)")
    print(f"TI trace size:       {result.extraction.mib:.2f} MiB")
    print(f"gathering:           {result.gather.time:.3f} s simulated "
          f"({result.gather.n_rounds} rounds)")
    print(f"traces in:           {result.trace_dir}")
    return 0


def main_tau2ti(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-tau2ti",
        description="Extract time-independent traces from a TAU archive.",
    )
    parser.add_argument("tau_dir", help="directory of tautrace.*/events.* files")
    parser.add_argument("n_ranks", type=int)
    parser.add_argument("out_dir", help="destination for SG_process*.trace")
    parser.add_argument("--processes", type=int, default=1,
                        help="extraction parallelism (tau2simgrid is a "
                             "parallel program)")
    args = parser.parse_args(argv)
    report = tau2simgrid(args.tau_dir, args.n_ranks, args.out_dir,
                         processes=args.processes)
    print(f"extracted {report.n_actions} actions "
          f"({report.mib:.2f} MiB) for {report.n_ranks} ranks "
          f"in {report.wall_seconds:.3f} s")
    return 0


def main_calibrate(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-calibrate",
        description="Calibrate flop rate (5-run weighted average) and the "
                    "piece-wise-linear network model.",
    )
    _add_app_options(parser)
    parser.add_argument("--runs", type=int, default=5)
    parser.add_argument("--jitter", type=float, default=0.002)
    parser.add_argument("--output", default=None,
                        help="write a calibrated SimGrid platform XML here")
    args = parser.parse_args(argv)

    platform = _build_platform(args.platform, args.hosts, ground_truth=True,
                               cores=args.cores)
    deployment = round_robin_deployment(platform, args.ranks)
    flops = calibrate_flop_rate(platform, deployment, _build_program(args),
                                runs=args.runs, jitter=args.jitter)
    network = calibrate_network(platform, deployment[:2])
    print(f"flop rate:    {flops.rate:.4g} flop/s "
          f"(spread {100 * flops.spread:.2f}% over {args.runs} runs, "
          f"{flops.n_samples} bursts)")
    print(f"latency:      {network.latency:.4g} s  (1-byte ping-pong / 6)")
    print(f"bandwidth:    {network.bandwidth:.4g} B/s (nominal)")
    for seg in network.model.segments:
        upper = "inf" if seg.upper == float("inf") else f"{seg.upper:g}"
        print(f"  segment [{seg.lower:g}, {upper}): "
              f"lat x {seg.lat_factor:.3f}, bw x {seg.bw_factor:.3f}")
    if args.output:
        calibrated = _build_platform(args.platform, args.hosts,
                                     ground_truth=False, cores=args.cores,
                                     speed=flops.rate)
        dump_platform(calibrated, args.output)
        print(f"calibrated platform written to {args.output}")
    return 0


def main_convert(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-convert",
        description="Convert a directory of time-independent traces "
                    "between the text and binary representations "
                    "(the paper's §7 size-reduction future work).",
    )
    parser.add_argument("src_dir")
    parser.add_argument("dst_dir")
    parser.add_argument("--to", dest="target", required=True,
                        choices=["binary", "text"])
    args = parser.parse_args(argv)

    import os

    from .core.binfmt import (
        binary_trace_file_name, read_binary_trace, write_binary_trace,
    )
    from .core.trace import read_trace_file, trace_file_name
    from .core.actions import format_action

    os.makedirs(args.dst_dir, exist_ok=True)
    rank = 0
    in_bytes = out_bytes = 0
    while True:
        text_path = os.path.join(args.src_dir, trace_file_name(rank))
        bin_path = os.path.join(args.src_dir, binary_trace_file_name(rank))
        if args.target == "binary" and os.path.exists(text_path):
            actions = list(read_trace_file(text_path, expect_rank=rank))
            out_path = os.path.join(args.dst_dir,
                                    binary_trace_file_name(rank))
            out_bytes += write_binary_trace(actions, rank, out_path)
            in_bytes += os.path.getsize(text_path)
        elif args.target == "text" and os.path.exists(bin_path):
            out_path = os.path.join(args.dst_dir, trace_file_name(rank))
            with open(out_path, "w", encoding="ascii") as handle:
                for action in read_binary_trace(bin_path):
                    handle.write(format_action(action) + "\n")
            in_bytes += os.path.getsize(bin_path)
            out_bytes += os.path.getsize(out_path)
        else:
            break
        rank += 1
    if rank == 0:
        raise SystemExit(f"no rank-0 trace found in {args.src_dir!r}")
    print(f"converted {rank} ranks: {in_bytes:,} B -> {out_bytes:,} B "
          f"({in_bytes / max(1, out_bytes):.2f}x)")
    return 0


def main_compile(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-compile",
        description="Compile time-independent traces into columnar op "
                    "programs cached as .tic sidecars, so later replays "
                    "skip tokenization and dispatch entirely.",
    )
    parser.add_argument("trace", help="trace directory or merged trace file")
    parser.add_argument("--force", action="store_true",
                        help="recompile even when fresh .tic sidecars exist")
    args = parser.parse_args(argv)

    from .core.compile import compile_source, fuse_computes

    try:
        programs, report = compile_source(args.trace, force=args.force)
    except (OSError, ValueError) as exc:
        print(f"compile failed: {exc}", file=sys.stderr)
        return 2
    fusible = sum(p.n_src - fuse_computes(p).n_ops for p in programs)
    print(f"compiled {report.n_ranks} ranks: {report.n_src:,} actions -> "
          f"{report.n_ops:,} ops ({fusible:,} computes fusible) in "
          f"{report.wall_seconds:.2f} s")
    print(f"cache: {report.cache_hits} hits, {report.cache_misses} misses; "
          f"{len(report.artifacts)} sidecar(s) written")
    for path in report.artifacts[:8]:
        print(f"  {path}")
    if len(report.artifacts) > 8:
        print(f"  ... and {len(report.artifacts) - 8} more")
    return 0


def main_import(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-import",
        description="Import a PyTorch/param comms trace (per-rank "
                    "rank<k>.json files, or one symmetric JSON file of "
                    "collectives) into a time-independent trace set.",
    )
    parser.add_argument("source",
                        help="directory of rank<k>.json files, or a single "
                             "JSON trace file")
    parser.add_argument("out_dir",
                        help="destination for SG_process*.trace files")
    parser.add_argument("--format", default="param-comms",
                        choices=["param-comms"],
                        help="source trace format (default: param-comms)")
    parser.add_argument("--world-size", type=int, default=None,
                        help="communicator size; required for single-file "
                             "sources, checked against per-rank sources")
    parser.add_argument("--skip-unsupported", action="store_true",
                        help="drop records the format cannot express "
                             "(counted in the report) instead of failing")
    parser.add_argument("--binary", action="store_true",
                        help="write .btrace files instead of text")
    parser.add_argument("--json", action="store_true",
                        help="print the import report as JSON")
    args = parser.parse_args(argv)

    from .importers import import_param_comms

    try:
        report = import_param_comms(
            args.source, args.out_dir,
            world_size=args.world_size,
            skip_unsupported=args.skip_unsupported,
            binary=args.binary,
        )
    except (OSError, ValueError) as exc:
        print(f"import failed: {exc}", file=sys.stderr)
        return 2
    if args.json:
        import json

        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(f"imported {report.n_ranks} ranks: {report.n_records:,} "
              f"records -> {report.n_actions:,} actions "
              f"({report.n_bytes:,} B) into {report.out_dir}")
        if report.n_skipped:
            ops = ", ".join(f"{op} x{n}" for op, n
                            in sorted(report.skipped_ops.items()))
            print(f"skipped {report.n_skipped} unsupported record(s): "
                  f"{ops}")
    return 0


def main_validate(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-validate",
        description="Statically check a time-independent trace for "
                    "replayability (matching, request balance, collective "
                    "agreement).",
    )
    parser.add_argument("trace", help="trace directory or merged file")
    parser.add_argument("--format", default="text", choices=["text", "json"],
                        help="report format (default: text)")
    args = parser.parse_args(argv)

    import os

    from .core.trace import read_merged_trace, read_trace_dir
    from .core.validate import validate_trace

    if os.path.isdir(args.trace):
        trace = read_trace_dir(args.trace)
    else:
        trace = read_merged_trace(args.trace)
    report = validate_trace(trace)
    if args.format == "json":
        import json

        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    # Exit taxonomy: 0 = clean, 1 = warnings only, 2 = errors.
    if not report.ok:
        return 2
    return 1 if report.findings else 0


def main_stats(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-stats",
        description="Descriptive statistics of a time-independent trace: "
                    "volumes, traffic matrix, message-size mix.",
    )
    parser.add_argument("trace", help="trace directory or merged file")
    args = parser.parse_args(argv)

    import os

    from .analysis import compute_trace_stats
    from .core.trace import read_merged_trace, read_trace_dir

    if os.path.isdir(args.trace):
        trace = read_trace_dir(args.trace)
    else:
        trace = read_merged_trace(args.trace)
    print(compute_trace_stats(trace).report())
    return 0


def main_replay(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-replay",
        description="Replay time-independent traces: platform + deployment "
                    "+ traces -> simulated execution time (Fig. 4).",
    )
    parser.add_argument("trace", help="trace directory or merged trace file")
    parser.add_argument("--platform-xml", required=True,
                        help="SimGrid v3 platform file (Fig. 5)")
    parser.add_argument("--deployment-xml", default=None,
                        help="SimGrid v3 deployment file (Fig. 6); default: "
                             "rank i on host i")
    parser.add_argument("--ranks", type=int, default=None,
                        help="rank count when no deployment file is given")
    parser.add_argument("--collectives", default="binomial",
                        choices=["binomial", "flat"])
    parser.add_argument("--lmm", default="auto",
                        choices=["auto", "reference", "vectorized",
                                 "native"],
                        help="max-min solver path: 'auto' vectorizes "
                             "large sharing components, 'reference' "
                             "forces the pure-Python oracle, 'vectorized' "
                             "forces NumPy, 'native' runs the optional "
                             "Numba kernel (needs the repro[native] "
                             "extra; fails fast when it is missing) "
                             "(default: auto)")
    parser.add_argument("--no-lmm-incremental", dest="lmm_incremental",
                        action="store_false", default=True,
                        help="disable the certified incremental max-min "
                             "re-solve of large sharing groups (A/B "
                             "benchmarking only; results are identical "
                             "either way)")
    parser.add_argument("--eager-threshold", type=float, default=65536)
    parser.add_argument("--compiled", dest="compiled", action="store_const",
                        const="always", default="auto",
                        help="force the compiled replay driver (columnar op "
                             "programs, .tic sidecar cache); default 'auto' "
                             "compiles directory and merged-file sources")
    parser.add_argument("--no-compiled", dest="compiled",
                        action="store_const", const="never",
                        help="force the token-stream replay driver")
    parser.add_argument("--batch-phases", action="store_true",
                        help="advance synchronizing collectives as one "
                             "batched dependency graph instead of N "
                             "per-rank protocols (exact; falls back "
                             "silently when the replay is not eligible)")
    parser.add_argument("--shards", type=int, default=0, metavar="N",
                        help="replay contiguous rank bands in N forked "
                             "worker processes, merged at collective "
                             "windows (decoupled platforms only; results "
                             "are validated against the band owners to "
                             "1e-9 and the replay fails loudly if the "
                             "halo is too thin)")
    parser.add_argument("--shard-halo", type=int, default=0, metavar="R",
                        help="guard width in ranks each shard simulates "
                             "beyond its band (default: auto-sized from "
                             "the trace's communication pattern)")
    parser.add_argument("--faults", default=None, metavar="PLAN_JSON",
                        help="fault plan JSON (host crashes, link outages, "
                             "link degradations) to inject during replay")
    parser.add_argument("--fault-mode", default="abort",
                        choices=["abort", "checkpoint-restart"],
                        help="failure-aware replay mode: 'abort' stops at "
                             "the first rank death and reports provenance; "
                             "'checkpoint-restart' prices a coordinated "
                             "checkpoint/restart timeline (the plan needs "
                             "a 'checkpoint' block)")
    parser.add_argument("--fault-report", default=None, metavar="JSON_PATH",
                        help="write the structured FaultReport here "
                             "(default: a summary on stdout)")
    parser.add_argument("--timed-trace", default=None,
                        help="write the simulated timed trace here")
    parser.add_argument("--metrics", nargs="?", const="-", default=None,
                        metavar="JSON_PATH",
                        help="collect replay telemetry and emit it as a "
                             "JSON document (to stdout, or to JSON_PATH "
                             "when given)")
    args = parser.parse_args(argv)

    platform = load_platform(args.platform_xml)
    hosts = platform.host_list()
    if args.deployment_xml:
        deployments = load_deployment(args.deployment_xml)
        deployment = [platform.host(d.host) for d in deployments]
    else:
        n = args.ranks if args.ranks is not None else len(hosts)
        deployment = round_robin_deployment(platform, n)
    fault_plan = None
    if args.faults is not None:
        from .faults import load_fault_plan

        try:
            fault_plan = load_fault_plan(args.faults)
            fault_plan.validate(platform)
        except (OSError, ValueError) as exc:
            print(f"bad fault plan: {exc}", file=sys.stderr)
            return 2
    try:
        replayer = TraceReplayer(
            platform, deployment,
            eager_threshold=args.eager_threshold,
            collective_algorithm=args.collectives,
            record_timed_trace=args.timed_trace is not None,
            collect_metrics=args.metrics is not None,
            lmm_mode=args.lmm,
            lmm_incremental=args.lmm_incremental,
            fault_plan=fault_plan,
            fault_mode=args.fault_mode,
            compiled=args.compiled,
            batch_phases=args.batch_phases,
            shards=args.shards,
            shard_halo=args.shard_halo,
        )
    except (ValueError, RuntimeError) as exc:
        # Option mismatch (checkpoint-restart without a checkpoint
        # block, --shards with --no-compiled, --lmm native without the
        # repro[native] extra installed, ...) is an input error, not a
        # replay failure.
        print(f"bad replay configuration: {exc}", file=sys.stderr)
        return 2
    try:
        result = replayer.replay(args.trace)
    except Exception as exc:
        # A failed replay (deadlock, malformed trace, rank/deployment
        # mismatch) must fail the invoking script: diagnostics on stderr,
        # a nonzero exit code, and whatever telemetry was collected up to
        # the failure point still emitted.
        print(f"replay failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        from .simkernel import DeadlockError

        if isinstance(exc, DeadlockError):
            if exc.blocked:
                print(f"blocked processes: {', '.join(exc.blocked)}",
                      file=sys.stderr)
            for key, value in sorted(exc.details.items()):
                print(f"  {key}: {value}", file=sys.stderr)
        if args.metrics is not None and replayer.telemetry is not None:
            import json

            document = json.dumps(replayer.telemetry.as_dict(), indent=2,
                                  sort_keys=True)
            if args.metrics == "-":
                print(document)
            else:
                with open(args.metrics, "w", encoding="ascii") as handle:
                    handle.write(document + "\n")
                print(f"metrics written to {args.metrics}", file=sys.stderr)
        return 3
    print(f"Simulated execution time: {result.simulated_time:.6f} s")
    print(f"({result.n_ranks} ranks, {result.n_actions} actions, "
          f"replayed in {result.wall_seconds:.2f} s)")
    if result.fault_report is not None:
        print(result.fault_report.summary())
        if args.fault_report:
            with open(args.fault_report, "w", encoding="ascii") as handle:
                handle.write(result.fault_report.to_json() + "\n")
            print(f"fault report written to {args.fault_report}")
    if args.timed_trace:
        with open(args.timed_trace, "w") as handle:
            for rank, name, start, end in result.timed_trace:
                handle.write(f"p{rank} {name} {start:.9f} {end:.9f}\n")
        print(f"timed trace written to {args.timed_trace}")
    if args.metrics is not None:
        import json

        document = json.dumps(result.metrics, indent=2, sort_keys=True)
        if args.metrics == "-":
            print(document)
        else:
            with open(args.metrics, "w", encoding="ascii") as handle:
                handle.write(document + "\n")
            print(f"metrics written to {args.metrics}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_replay())
