"""The HTTP/JSON front end of the replay service.

Pure stdlib: an :func:`asyncio.start_server` loop speaking enough
HTTP/1.1 for JSON request/response bodies (``Connection: close`` per
request — clients poll, they do not stream).  All state lives in the
:class:`~repro.service.supervisor.Supervisor`; the server is a thin
router plus a periodic scheduler tick, so killing it loses nothing that
matters — the queue is the durable object.

API (all bodies JSON):

======  =============================  =======================================
POST    /v1/jobs                       submit {spec, tenant?, priority?}
GET     /v1/jobs[?tenant=&state=]      list jobs
GET     /v1/jobs/<id>[?events_after=]  status + incremental events
GET     /v1/jobs/<id>/results          manifest + run records
POST    /v1/jobs/<id>/cancel           cancel (queued: now; running: drain)
POST    /v1/tenants                    {name, weight} — fair-share weight
GET     /v1/metrics                    queue/tenant/artifact-store counters
GET     /v1/health                     liveness + fleet occupancy
GET     /v1/jobs/<id>/units            the job's work units (workers mode)
POST    /v1/workers                    register {name, info?}
GET     /v1/workers                    worker fleet + heartbeat ages
POST    /v1/lease                      {worker, lease_s?} — claim a unit
POST    /v1/units/<id>/heartbeat       {worker, token, lease_s?} — renew
POST    /v1/units/<id>/result          {worker, token, status, result|error}
POST    /v1/units/<id>/staged          {worker, cached_bytes, fetched_bytes}
GET     /v1/units/<id>                 one unit (state, leases, history)
GET     /v1/artifacts/traces/<digest>  staged trace tree as a tar body
PUT     /v1/artifacts/traces/<digest>  push a trace tar (digest-verified)
======  =============================  =======================================

The bodies of the two ``/v1/artifacts/`` transfers are raw tar bytes
(``application/x-tar``); everything else stays JSON.

Error taxonomy: 400 malformed request or spec, 404 unknown job, 409
illegal lifecycle transition (e.g. cancelling a DONE job), 405 wrong
method, 500 with the exception name for anything else.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .queue import LeaseLostError
from .supervisor import Supervisor

__all__ = ["ServiceServer", "serve"]

_MAX_BODY = 64 << 20        # a campaign spec, not a trace upload
_STATUS_TEXT = {200: "OK", 201: "Created", 400: "Bad Request",
                404: "Not Found", 405: "Method Not Allowed",
                409: "Conflict", 500: "Internal Server Error"}


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class ServiceServer:
    """Router + scheduler tick around one Supervisor."""

    def __init__(self, supervisor: Supervisor, host: str = "127.0.0.1",
                 port: int = 8642, tick_s: float = 0.2) -> None:
        self.supervisor = supervisor
        self.host = host
        self.port = port
        self.tick_s = tick_s
        self._server: Optional[asyncio.AbstractServer] = None
        self._tick_task: Optional[asyncio.Task] = None

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        self.supervisor.recover()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._tick_task = asyncio.ensure_future(self._tick_loop())

    async def stop(self) -> None:
        if self._tick_task is not None:
            self._tick_task.cancel()
            try:
                await self._tick_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.supervisor.shutdown()

    async def _tick_loop(self) -> None:
        while True:
            try:
                self.supervisor.tick()
            except Exception:  # pragma: no cover - keep the pump alive
                pass
            await asyncio.sleep(self.tick_s)

    # -- HTTP plumbing ---------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            status, document = await self._handle_request(reader)
        except _HttpError as exc:
            status, document = exc.status, {"error": exc.message}
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            status, document = 500, {"error": f"{type(exc).__name__}: {exc}"}
        if isinstance(document, (bytes, bytearray)):
            body = bytes(document)          # artifact fetch: raw tar
            ctype = "application/x-tar"
        else:
            body = (json.dumps(document, sort_keys=True)
                    + "\n").encode("utf-8")
            ctype = "application/json"
        head = (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()

    async def _handle_request(self, reader: asyncio.StreamReader
                              ) -> Tuple[int, Any]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise _HttpError(400, "empty request")
        try:
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            raise _HttpError(400, f"malformed request line {request_line!r}")
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise _HttpError(400, f"body too large ({length} bytes)")
        split = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        path = split.path.rstrip("/")
        raw = await reader.readexactly(length) if length else b""
        if method.upper() == "PUT" and path.startswith("/v1/artifacts/"):
            # Artifact push: the body is the artifact, not JSON.
            return self._route(method.upper(), path, query, {}, raw=raw)
        body: Dict[str, Any] = {}
        if raw:
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                raise _HttpError(400, "request body is not valid JSON")
        return self._route(method.upper(), path, query, body)

    # -- routing ---------------------------------------------------------
    def _route(self, method: str, path: str, query: Dict[str, str],
               body: Dict[str, Any], raw: bytes = b"") -> Tuple[int, Any]:
        parts = [p for p in path.split("/") if p]
        if parts[:1] != ["v1"]:
            raise _HttpError(404, f"unknown path {path!r}")
        tail = parts[1:]

        if tail == ["health"]:
            self._need(method, "GET")
            return 200, {"ok": True, "service": "repro.service",
                         "running_jobs": self.supervisor.running_jobs,
                         "max_jobs": self.supervisor.max_jobs}
        if tail == ["metrics"]:
            self._need(method, "GET")
            return 200, self.supervisor.metrics_doc()
        if tail == ["tenants"]:
            self._need(method, "POST")
            name = body.get("name")
            if not name:
                raise _HttpError(400, "tenant needs a 'name'")
            try:
                self.supervisor.queue.ensure_tenant(
                    name, float(body.get("weight", 1.0)))
            except (TypeError, ValueError) as exc:
                raise _HttpError(400, str(exc))
            return 200, {"tenants": self.supervisor.queue.tenants()}
        if tail == ["jobs"]:
            if method == "POST":
                return self._submit(body)
            self._need(method, "GET")
            jobs = self.supervisor.queue.list_jobs(
                tenant=query.get("tenant"), state=query.get("state"))
            return 200, {"jobs": [j.to_dict() for j in jobs]}
        if len(tail) >= 2 and tail[0] == "jobs":
            job_id = tail[1]
            if len(tail) == 2:
                self._need(method, "GET")
                after = int(query.get("events_after", "0") or "0")
                return 200, self._job(job_id, after)
            if tail[2:] == ["results"]:
                self._need(method, "GET")
                return 200, self._results(job_id)
            if tail[2:] == ["cancel"]:
                self._need(method, "POST")
                return self._cancel(job_id)
            if tail[2:] == ["units"]:
                self._need(method, "GET")
                try:
                    self.supervisor.queue.get(job_id)
                except KeyError:
                    raise _HttpError(404, f"unknown job {job_id!r}")
                units = self.supervisor.queue.units_for_job(job_id)
                return 200, {"units": [u.to_dict() for u in units]}

        # -- distributed execution: workers, leases, units, artifacts ----
        if tail == ["workers"]:
            if method == "POST":
                name = body.get("name")
                if not name:
                    raise _HttpError(400, "worker needs a 'name'")
                doc = self.supervisor.queue.register_worker(
                    str(name), info=body.get("info") or {})
                return 201, {"worker": doc}
            self._need(method, "GET")
            return 200, {"workers": self.supervisor.queue.workers_doc()}
        if tail == ["lease"]:
            self._need(method, "POST")
            worker = body.get("worker")
            if not worker:
                raise _HttpError(400, "lease request needs a 'worker'")
            lease_s = float(body.get("lease_s", 15.0))
            if lease_s <= 0:
                raise _HttpError(400, "lease_s must be > 0")
            grant = self.supervisor.queue.lease_unit(str(worker), lease_s)
            if grant is None:
                return 200, {"unit": None}
            return 200, {"unit": grant["unit"].to_dict(),
                         "token": grant["token"],
                         "deadline": grant["deadline"],
                         "speculative": grant["speculative"]}
        if len(tail) >= 2 and tail[0] == "units":
            unit_id = tail[1]
            if tail[2:] == []:
                self._need(method, "GET")
                return 200, {"unit": self._unit(unit_id).to_dict()}
            if tail[2:] == ["heartbeat"]:
                self._need(method, "POST")
                return self._heartbeat(unit_id, body)
            if tail[2:] == ["result"]:
                self._need(method, "POST")
                return self._unit_result(unit_id, body)
            if tail[2:] == ["staged"]:
                self._need(method, "POST")
                return self._unit_staged(unit_id, body)
        if len(tail) == 3 and tail[:2] == ["artifacts", "traces"]:
            digest = tail[2]
            if method == "GET":
                try:
                    data = self.supervisor.store.export_trace_tar(digest)
                except KeyError:
                    raise _HttpError(404, f"trace {digest!r} not staged")
                self.supervisor.queue.incr_counter("bytes_shipped",
                                                   len(data))
                return 200, data
            self._need(method, "PUT")
            try:
                path_, hit = self.supervisor.store.import_trace_tar(
                    raw, digest, tenant=str(query.get("tenant", "default")))
            except ValueError as exc:
                raise _HttpError(400, str(exc))
            return 201, {"digest": digest, "hit": hit}
        raise _HttpError(404, f"unknown path {path!r}")

    @staticmethod
    def _need(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected}")

    def _submit(self, body: Dict[str, Any]) -> Tuple[int, Any]:
        spec = body.get("spec")
        if not isinstance(spec, dict):
            raise _HttpError(400, "submit body needs a 'spec' object")
        try:
            job = self.supervisor.submit(
                spec, tenant=str(body.get("tenant", "default")),
                priority=int(body.get("priority", 0)))
        except (TypeError, ValueError, KeyError) as exc:
            raise _HttpError(400, f"bad campaign spec: {exc}")
        return 201, {"job": job.to_dict()}

    def _job(self, job_id: str, events_after: int) -> Any:
        try:
            return self.supervisor.job_status_doc(
                job_id, events_after=events_after)
        except KeyError:
            raise _HttpError(404, f"unknown job {job_id!r}")

    def _results(self, job_id: str) -> Any:
        try:
            return self.supervisor.results_doc(job_id)
        except KeyError:
            raise _HttpError(404, f"unknown job {job_id!r}")

    def _cancel(self, job_id: str) -> Tuple[int, Any]:
        try:
            job = self.supervisor.cancel(job_id)
        except KeyError:
            raise _HttpError(404, f"unknown job {job_id!r}")
        except ValueError as exc:
            raise _HttpError(409, str(exc))
        return 200, {"job": job.to_dict()}

    # -- distributed-execution handlers -----------------------------------
    def _unit(self, unit_id: str):
        try:
            return self.supervisor.queue.get_unit(unit_id)
        except KeyError:
            raise _HttpError(404, f"unknown unit {unit_id!r}")

    @staticmethod
    def _lease_fields(body: Dict[str, Any]) -> Tuple[str, str]:
        worker, token = body.get("worker"), body.get("token")
        if not worker or not token:
            raise _HttpError(400, "need 'worker' and 'token'")
        return str(worker), str(token)

    def _heartbeat(self, unit_id: str,
                   body: Dict[str, Any]) -> Tuple[int, Any]:
        worker, token = self._lease_fields(body)
        self._unit(unit_id)
        try:
            deadline = self.supervisor.queue.heartbeat_unit(
                unit_id, worker, token,
                float(body.get("lease_s", 15.0)))
        except LeaseLostError as exc:
            raise _HttpError(409, str(exc))
        return 200, {"deadline": deadline}

    def _unit_result(self, unit_id: str,
                     body: Dict[str, Any]) -> Tuple[int, Any]:
        worker, token = self._lease_fields(body)
        self._unit(unit_id)
        try:
            doc = self.supervisor.dispatcher.on_result(
                unit_id, worker, token, body)
        except LeaseLostError as exc:
            raise _HttpError(409, str(exc))
        return 200, doc

    def _unit_staged(self, unit_id: str,
                     body: Dict[str, Any]) -> Tuple[int, Any]:
        """A worker finished staging a unit's artifacts: fold its cache
        economics (bytes it did NOT have to fetch) into the counters."""
        unit = self._unit(unit_id)
        saved = int(body.get("cached_bytes", 0) or 0)
        if saved > 0:
            self.supervisor.queue.incr_counter("bytes_saved_by_cache",
                                               saved)
        if body.get("worker"):
            self.supervisor.queue.worker_seen(str(body["worker"]))
        return 200, {"unit": unit.id}


async def serve(root: str, host: str = "127.0.0.1", port: int = 8642,
                max_jobs: int = 2, cache_max_bytes: int = 0,
                tenant_weights: Optional[Dict[str, float]] = None,
                tick_s: float = 0.2, dispatch: str = "local",
                log=print) -> None:
    """Run the service until SIGTERM/SIGINT, then drain and re-queue."""
    supervisor = Supervisor(root, max_jobs=max_jobs,
                            cache_max_bytes=cache_max_bytes,
                            tenant_weights=tenant_weights,
                            dispatch=dispatch, log=log)
    server = ServiceServer(supervisor, host=host, port=port, tick_s=tick_s)
    await server.start()
    if log:
        log(f"repro.service listening on http://{server.host}:{server.port}"
            f" (root {supervisor.root}, {max_jobs} job slot(s))")
    loop = asyncio.get_running_loop()
    stop = loop.create_future()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(
            signum, lambda: stop.done() or stop.set_result(None))
    try:
        await stop
    finally:
        if log:
            log("repro.service stopping: draining runners, "
                "re-queueing unfinished jobs")
        await server.stop()
