"""``repro-service`` — run the replay-as-a-service campaign server.

::

    repro-service --root /var/lib/repro --port 8642 --max-jobs 4 \\
        --cache-bytes 2000000000 --tenant-weight ml=3 --tenant-weight ci=1

The server owns everything under ``--root``: the SQLite job queue, the
multi-tenant artifact store, and one directory per job.  SIGTERM/SIGINT
drain running campaigns (they write resumable manifests) and re-queue
unfinished jobs, so ``repro-service`` can be restarted at any time
without losing work.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Dict, List, Optional

from .server import serve

__all__ = ["main_service"]


def _parse_weight(text: str) -> Dict[str, float]:
    name, sep, value = text.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"expected NAME=WEIGHT, got {text!r}")
    try:
        weight = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"weight in {text!r} is not a number")
    if weight <= 0:
        raise argparse.ArgumentTypeError("weight must be > 0")
    return {name: weight}


def main_service(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Long-running campaign server: persistent job queue, "
                    "weighted fair-share across tenants, shared artifact "
                    "store with LRU eviction.",
    )
    parser.add_argument("--root", required=True,
                        help="service state directory (queue.db, artifacts/, "
                             "jobs/)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642,
                        help="listen port (0 picks a free one)")
    parser.add_argument("--max-jobs", type=int, default=2,
                        help="campaigns run concurrently (each uses its "
                             "spec's own worker count)")
    parser.add_argument("--cache-bytes", type=int, default=0,
                        help="artifact-store size bound in bytes "
                             "(0 = unbounded)")
    parser.add_argument("--tenant-weight", type=_parse_weight,
                        action="append", default=[], metavar="NAME=W",
                        help="fair-share weight for a tenant (repeatable)")
    parser.add_argument("--tick-s", type=float, default=0.2,
                        help="scheduler tick interval in seconds")
    parser.add_argument("--dispatch", choices=("local", "workers"),
                        default="local",
                        help="'local' runs campaigns in server-side child "
                             "processes; 'workers' fans scenarios out as "
                             "leased work units to repro-worker processes "
                             "(see docs/distributed.md)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-event log lines")
    args = parser.parse_args(argv)

    weights: Dict[str, float] = {}
    for entry in args.tenant_weight:
        weights.update(entry)

    try:
        asyncio.run(serve(
            args.root, host=args.host, port=args.port,
            max_jobs=args.max_jobs, cache_max_bytes=args.cache_bytes,
            tenant_weights=weights or None, tick_s=args.tick_s,
            dispatch=args.dispatch,
            log=None if args.quiet else print,
        ))
    except KeyboardInterrupt:  # pragma: no cover - belt and braces
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_service())
