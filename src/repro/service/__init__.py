"""repro.service — replay-as-a-service.

The campaign subsystem (:mod:`repro.campaign`) made re-execution cheap:
acquire a time-independent trace once, then sweep it across platform
scenarios with content-addressed result caching.  This package makes it
*shared*: a long-running server owns a persistent job queue, a bounded
pool of campaign-runner processes, and a multi-tenant artifact store, so
many clients (CLIs, notebooks, CI) submit campaign specs over HTTP and
poll incremental results — the "heavy traffic" shape of the ROADMAP,
with the existing ``repro-campaign`` CLI as just one thin client.

Layering (each module usable on its own):

* :mod:`repro.service.queue` — SQLite-backed :class:`JobQueue`: explicit
  job lifecycle (QUEUED → STAGING → RUNNING → DONE/FAILED/CANCELLED),
  per-job priorities, and weighted fair-share across named tenants.
* :mod:`repro.service.artifacts` — :class:`ArtifactStore`: the
  content-addressed result cache plus staged trace trees (with their
  warm ``.tic`` sidecars) under one size-bounded, LRU-evicted root.
* :mod:`repro.service.supervisor` — :class:`Supervisor`: claims jobs
  fair-share, stages artifacts, drives :func:`repro.campaign.run_campaign`
  in child processes, streams per-scenario events, and resumes
  interrupted jobs across server restarts via ``--resume``.
* :mod:`repro.service.dispatch` — :class:`Dispatcher`: fans a campaign
  out as per-scenario *work units* with leases, heartbeats, speculative
  re-execution of stragglers, and poison-unit quarantine.
* :mod:`repro.service.worker` — :class:`Worker` / ``repro-worker``: the
  remote execution process that leases units, stages artifacts by
  content digest, runs them, and streams results back.
* :mod:`repro.service.server` — the asyncio HTTP/JSON front end.
* :mod:`repro.service.client` — the stdlib-urllib client the CLI uses.
"""

from .artifacts import ArtifactStore
from .client import ServiceClient, ServiceError
from .dispatch import (
    DETERMINISTIC_RESULT_FIELDS, Dispatcher, deterministic_projection,
)
from .queue import (
    STATE_CANCELLED, STATE_DONE, STATE_FAILED, STATE_QUEUED, STATE_RUNNING,
    STATE_STAGING, TERMINAL_STATES, UNIT_CANCELLED, UNIT_DONE, UNIT_LEASED,
    UNIT_PENDING, UNIT_QUARANTINED, Job, JobQueue, LeaseLostError, WorkUnit,
)
from .supervisor import Supervisor
from .worker import Worker

__all__ = [
    "ArtifactStore", "DETERMINISTIC_RESULT_FIELDS", "Dispatcher", "Job",
    "JobQueue", "LeaseLostError", "ServiceClient", "ServiceError",
    "Supervisor", "Worker", "WorkUnit", "deterministic_projection",
    "STATE_QUEUED", "STATE_STAGING", "STATE_RUNNING", "STATE_DONE",
    "STATE_FAILED", "STATE_CANCELLED", "TERMINAL_STATES",
    "UNIT_PENDING", "UNIT_LEASED", "UNIT_DONE", "UNIT_QUARANTINED",
    "UNIT_CANCELLED",
]
