"""The worker-pool supervisor: queue ↔ campaign runner ↔ artifact store.

One :class:`Supervisor` owns a service *root*::

    <root>/
      queue.db                  # the persistent JobQueue
      artifacts/                # the shared ArtifactStore
      jobs/<id>/spec.json       # the (expanded, staged) campaign spec
      jobs/<id>/events.jsonl    # streamed lifecycle + scenario events
      jobs/<id>/outcome.json    # the job runner's final verdict
      jobs/<id>/campaign/       # runs/ + manifest.json (CampaignStore)

Each claimed job is staged (``dir`` traces copied into the artifact
store by content address), then executed by a dedicated child process
running the ordinary :func:`repro.campaign.run_campaign` against the
shared result cache.  The child streams one event line per finished
scenario (the runner's ``on_record`` hook), so a polling client watches
progress without any server-side session state.

**Cancellation** rides the runner's graceful-drain path: the supervisor
sends the child SIGTERM, in-flight scenarios finish and are recorded,
and the campaign manifest stays resumable.

**Crash recovery**: on startup :meth:`Supervisor.recover` re-queues
every job a previous server left in STAGING/RUNNING (terminating any
orphaned runner first) with ``resume=True`` — the re-run serves every
already-recorded scenario from the campaign store and re-executes only
what is missing, retry/resume provenance intact.
"""

from __future__ import annotations

import errno
import json
import multiprocessing
import os
import signal
import sys
import tempfile
import time
import traceback
from dataclasses import replace as dc_replace
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..campaign.spec import CampaignSpec
from ..campaign.store import CampaignStore
from .artifacts import ArtifactStore
from .queue import (
    STATE_CANCELLED, STATE_DONE, STATE_FAILED, STATE_QUEUED, STATE_RUNNING,
    STATE_STAGING, Job, JobQueue,
)

__all__ = ["Supervisor", "append_event", "read_events"]

_START_METHOD = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                 else "spawn")


# ----------------------------------------------------------------------
# Event log: JSON lines, append-only, multi-writer safe
# ----------------------------------------------------------------------
def append_event(path: str, event: str, **fields: Any) -> None:
    """Append one event line.  Single ``write()`` of one ``O_APPEND``
    line — atomic on POSIX for our line sizes, so the supervisor (state
    changes) and the job runner (scenario completions) can share the
    file without locks."""
    doc = {"t": time.time(), "event": event}
    doc.update(fields)
    line = json.dumps(doc, sort_keys=True) + "\n"
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, line.encode("utf-8"))
    finally:
        os.close(fd)


def read_events(path: str, after: int = 0) -> Tuple[List[Dict[str, Any]], int]:
    """Events ``after`` the given index (0 = from the start) plus the
    next index to poll from.

    Robust against a concurrent writer: the file is read as *bytes* and
    only newline-terminated lines are surfaced, so a torn final line —
    a reader racing ``append_event`` mid-write, including a torn
    multi-byte UTF-8 sequence that would not even decode — is simply
    not visible yet, and the cursor stays stable until the writer
    finishes it.  A complete-but-corrupt line (disk trouble) is skipped
    instead of hiding every event after it.
    """
    events: List[Dict[str, Any]] = []
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return [], 0
    # Drop the final fragment: either b"" (file ends with a newline) or
    # a line still being appended.
    for line in data.split(b"\n")[:-1]:
        if not line:
            continue
        try:
            events.append(json.loads(line.decode("utf-8")))
        except (UnicodeDecodeError, ValueError):
            continue
    return events[after:], len(events)


def _write_json_atomic(path: str, document: Any) -> None:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# The job runner (child-process side)
# ----------------------------------------------------------------------
def _job_main(job_id: str, job_dir: str, cache_dir: str,
              resume: bool) -> None:
    """Child entry point: run the campaign, stream events, verdict out.

    SIGTERM here is handled *by the campaign runner* (graceful drain);
    after a drain this function still writes ``outcome.json`` with
    ``interrupted: true`` and exits 0 — the supervisor, not the child,
    decides whether that means cancelled or resumable.
    """
    from ..campaign.runner import run_campaign

    # Forked from the asyncio server: drop the inherited signal plumbing,
    # or a SIGTERM aimed at THIS child gets echoed down the shared wakeup
    # socketpair and the parent's event loop shuts the whole service down.
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    signal.signal(signal.SIGTERM, signal.SIG_DFL)

    events_path = os.path.join(job_dir, "events.jsonl")
    out_dir = os.path.join(job_dir, "campaign")
    outcome_path = os.path.join(job_dir, "outcome.json")
    try:
        with open(os.path.join(job_dir, "spec.json"),
                  encoding="utf-8") as handle:
            spec = CampaignSpec.from_dict(json.load(handle))

        def on_record(record):
            append_event(
                events_path, "scenario", job=job_id, name=record.name,
                status=record.status, cache_hit=record.cache_hit,
                cache_source=record.cache_source, attempts=record.attempts,
                simulated_time=record.result.get("simulated_time"),
            )

        result = run_campaign(spec, out_dir, cache_dir=cache_dir,
                              resume=resume, on_record=on_record)
        _write_json_atomic(outcome_path, {
            "ok": result.ok,
            "interrupted": result.interrupted,
            "failed": result.failed_names,
            "metrics": result.metrics.as_dict(),
        })
        sys.exit(0)
    except SystemExit:
        raise
    except BaseException as exc:  # noqa: BLE001 - the verdict IS the point
        _write_json_atomic(outcome_path, {
            "ok": False,
            "interrupted": False,
            "failed": [],
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
            "metrics": {},
        })
        sys.exit(1)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError as exc:
        return exc.errno == errno.EPERM
    return True


# ----------------------------------------------------------------------
# The supervisor (server side)
# ----------------------------------------------------------------------
class Supervisor:
    """Claims jobs fair-share and drives one runner process per job."""

    def __init__(self, root: str, max_jobs: int = 2,
                 cache_max_bytes: int = 0,
                 tenant_weights: Optional[Dict[str, float]] = None,
                 drain_timeout_s: float = 30.0,
                 dispatch: str = "local",
                 log: Optional[Callable[[str], None]] = None) -> None:
        if max_jobs < 1:
            raise ValueError("max_jobs must be >= 1")
        if dispatch not in ("local", "workers"):
            raise ValueError("dispatch must be 'local' or 'workers'")
        self.root = os.path.abspath(root)
        self.max_jobs = max_jobs
        self.drain_timeout_s = drain_timeout_s
        self.dispatch = dispatch
        self.jobs_dir = os.path.join(self.root, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)
        self.queue = JobQueue(os.path.join(self.root, "queue.db"))
        self.store = ArtifactStore(os.path.join(self.root, "artifacts"),
                                   max_bytes=cache_max_bytes)
        for name, weight in (tenant_weights or {}).items():
            self.queue.ensure_tenant(name, weight)
        self._emit = log if log is not None else (lambda _msg: None)
        self._ctx = multiprocessing.get_context(_START_METHOD)
        self._children: Dict[str, multiprocessing.Process] = {}
        #: Trace digests staged for live jobs — protected from eviction.
        self._staged: Dict[str, Set[str]] = {}
        #: Staging hit/miss per live job, folded into the tenant at reap.
        self._stage_counts: Dict[str, Tuple[int, int]] = {}
        self._cancel_signalled: Set[str] = set()
        # The dispatcher exists in both modes (its read-side endpoints —
        # units, workers, counters — always answer); only in "workers"
        # mode does the tick hand jobs to it instead of forking.
        from .dispatch import Dispatcher
        self.dispatcher = Dispatcher(self)

    @property
    def running_jobs(self) -> int:
        return len(self._children)

    # -- paths -----------------------------------------------------------
    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, job_id)

    def events_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "events.jsonl")

    def campaign_dir(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "campaign")

    # -- client-facing operations ---------------------------------------
    def submit(self, spec_doc: Dict[str, Any], tenant: str = "default",
               priority: int = 0) -> Job:
        """Validate + enqueue a campaign spec.  Raises ``ValueError`` on
        a bad spec — submission fails loudly, never at run time."""
        if not isinstance(spec_doc, dict) or not spec_doc.get("name"):
            raise ValueError("campaign spec needs a 'name'")
        spec = CampaignSpec.from_dict(dict(spec_doc))
        job = self.queue.submit(tenant, spec.name, len(spec.scenarios),
                                priority=priority)
        job_dir = self.job_dir(job.id)
        os.makedirs(job_dir, exist_ok=True)
        # The *expanded* spec is what runs: grids resolved at submit time
        # so the job is self-contained and byte-stable from here on.
        _write_json_atomic(os.path.join(job_dir, "spec.json"),
                           spec.to_dict())
        append_event(self.events_path(job.id), "state", job=job.id,
                     state=job.state, tenant=tenant, campaign=spec.name)
        self._emit(f"[service] job {job.id} queued: campaign "
                   f"{spec.name!r}, tenant {tenant!r}, "
                   f"{len(spec.scenarios)} scenario(s)")
        return job

    def cancel(self, job_id: str) -> Job:
        job = self.queue.request_cancel(job_id)
        if job.state == STATE_CANCELLED:
            append_event(self.events_path(job_id), "state", job=job_id,
                         state=job.state)
            self._emit(f"[service] job {job_id} cancelled while queued")
        else:
            self._signal_cancel(job_id)
        return job

    def _signal_cancel(self, job_id: str) -> None:
        process = self._children.get(job_id)
        if process is not None and process.is_alive() \
                and job_id not in self._cancel_signalled:
            process.terminate()      # SIGTERM -> the runner drains
            self._cancel_signalled.add(job_id)
            append_event(self.events_path(job_id), "cancelling",
                         job=job_id)
            self._emit(f"[service] job {job_id}: SIGTERM sent, draining")

    # -- scheduling ------------------------------------------------------
    def tick(self) -> None:
        """One supervisor step: reap finished runners, launch claimable
        jobs while worker slots are free.  Cheap; call it often."""
        if self.dispatch == "workers":
            self.dispatcher.tick()
            running = len(self.queue.list_jobs(state=STATE_RUNNING))
            while running < self.max_jobs:
                job = self.queue.claim_next()
                if job is None:
                    break
                self._start_dispatched(job)
                running += 1
            return
        self._reap()
        while len(self._children) < self.max_jobs:
            job = self.queue.claim_next()
            if job is None:
                break
            self._start(job)

    def _start_dispatched(self, job: Job) -> None:
        """Workers mode: stage, then fan out into leased work units."""
        events = self.events_path(job.id)
        append_event(events, "state", job=job.id, state=job.state)
        try:
            digests, hits, misses = self._stage(job)
        except BaseException as exc:  # noqa: BLE001 - recorded, not fatal
            self.queue.set_state(job.id, STATE_FAILED,
                                 error=f"staging failed: {exc}")
            append_event(events, "state", job=job.id, state=STATE_FAILED,
                         error=str(exc))
            self._emit(f"[service] job {job.id}: staging failed: {exc}")
            return
        self._staged[job.id] = digests
        self._stage_counts[job.id] = (hits, misses)
        self.dispatcher.start_job(job)

    def _start(self, job: Job) -> None:
        job_dir = self.job_dir(job.id)
        events = self.events_path(job.id)
        append_event(events, "state", job=job.id, state=job.state)
        try:
            digests, hits, misses = self._stage(job)
        except BaseException as exc:  # noqa: BLE001 - recorded, not fatal
            self.queue.set_state(job.id, STATE_FAILED,
                                 error=f"staging failed: {exc}")
            append_event(events, "state", job=job.id, state=STATE_FAILED,
                         error=str(exc))
            self._emit(f"[service] job {job.id}: staging failed: {exc}")
            return
        self._staged[job.id] = digests
        self._stage_counts[job.id] = (hits, misses)
        process = self._ctx.Process(
            target=_job_main,
            args=(job.id, job_dir, self.store.results_dir, job.resume),
            name=f"repro-job-{job.id}",
        )
        process.start()
        self._children[job.id] = process
        job = self.queue.set_state(job.id, STATE_RUNNING, pid=process.pid)
        append_event(events, "state", job=job.id, state=job.state,
                     pid=process.pid, resume=job.resume)
        self._emit(f"[service] job {job.id} running (pid {process.pid}"
                   f"{', resume' if job.resume else ''})")
        # A cancel that arrived between claim and start applies now.
        if job.cancel_requested:
            self._signal_cancel(job.id)

    def _stage(self, job: Job) -> Tuple[Set[str], int, int]:
        """Copy ``dir`` traces into the artifact store and point the
        spec at the staged trees.  Idempotent: a resumed job re-stages
        to the same content addresses (hits)."""
        spec_path = os.path.join(self.job_dir(job.id), "spec.json")
        with open(spec_path, encoding="utf-8") as handle:
            spec = CampaignSpec.from_dict(json.load(handle))
        digests: Set[str] = set()
        hits = misses = 0
        staged_scenarios = []
        changed = False
        for scenario in spec.scenarios:
            if scenario.trace.kind == "dir":
                staged, hit = self.store.stage_trace_dir(
                    scenario.trace.path, tenant=job.tenant)
                digests.add(os.path.basename(staged))
                hits += 1 if hit else 0
                misses += 0 if hit else 1
                if staged != scenario.trace.path:
                    scenario = dc_replace(
                        scenario, trace=dc_replace(scenario.trace,
                                                   path=staged))
                    changed = True
            staged_scenarios.append(scenario)
        if changed:
            spec.scenarios = staged_scenarios
            _write_json_atomic(spec_path, spec.to_dict())
        return digests, hits, misses

    # -- reaping ---------------------------------------------------------
    def _reap(self) -> None:
        for job_id in list(self._children):
            process = self._children[job_id]
            if process.is_alive():
                # Enforce a cancel that arrived since the last tick.
                if self.queue.get(job_id).cancel_requested:
                    self._signal_cancel(job_id)
                continue
            process.join()
            del self._children[job_id]
            self._cancel_signalled.discard(job_id)
            self._finish(job_id, process.exitcode)

    def _finish(self, job_id: str, exitcode: Optional[int]) -> None:
        job = self.queue.get(job_id)
        outcome = self._read_outcome(job_id)
        metrics = outcome.get("metrics") or {}
        if outcome.get("ok") and not outcome.get("interrupted"):
            state, error = STATE_DONE, ""
        elif job.cancel_requested:
            state = STATE_CANCELLED
            error = "cancelled: drained in-flight scenarios"
        elif not outcome:
            state = STATE_FAILED
            error = (f"job runner died without a verdict "
                     f"(exitcode {exitcode})")
        elif outcome.get("interrupted"):
            # Drained by a SIGTERM we did not send (external operator):
            # the campaign is resumable, so hand it back to the queue.
            state, error = STATE_QUEUED, ""
        else:
            state = STATE_FAILED
            error = outcome.get("error") or (
                "scenarios failed: " + ", ".join(outcome.get("failed", []))
                if outcome.get("failed") else
                f"job runner exited {exitcode}")
        job = self.queue.set_state(
            job_id, state, error=error, metrics=metrics,
            resume=True if state == STATE_QUEUED else None)
        append_event(self.events_path(job_id), "state", job=job_id,
                     state=job.state, error=error or None)

        self._settle(job, metrics)
        self._emit(f"[service] job {job_id} -> {job.state}"
                   f"{f' ({error})' if error else ''}")

    def protected_digests(self) -> Set[str]:
        """Every trace digest eviction must spare: trees staged for live
        local jobs plus trees referenced by live work units (pinned from
        lease grant until the result is acknowledged)."""
        protect = set().union(*self._staged.values()) if self._staged \
            else set()
        protect |= self.dispatcher.pinned_digests()
        return protect

    def _settle(self, job: Job, metrics: Dict[str, Any]) -> None:
        """Fold a finished job's economics into its tenant, then bound
        the store (this job's traces are no longer pinned)."""
        stage_hits, stage_misses = self._stage_counts.pop(job.id, (0, 0))
        self._staged.pop(job.id, None)
        evicted = self.store.evict(protect=self.protected_digests())
        self.queue.charge(
            job.tenant, float(metrics.get("wall_seconds", 0.0)),
            result_hits=int(metrics.get("cached_hits", 0)),
            result_misses=int(metrics.get("replays_executed", 0)),
            stage_hits=stage_hits, stage_misses=stage_misses,
            evictions=len(evicted),
            finished=job.state in (STATE_DONE, STATE_FAILED,
                                   STATE_CANCELLED),
        )

    def settle_dispatched(self, job: Job, metrics: Dict[str, Any]) -> None:
        """Dispatcher callback when a units-backed job reaches a
        terminal state."""
        self._settle(job, metrics)

    def _read_outcome(self, job_id: str) -> Dict[str, Any]:
        try:
            with open(os.path.join(self.job_dir(job_id), "outcome.json"),
                      encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return {}

    # -- restart / shutdown ----------------------------------------------
    def recover(self) -> List[Job]:
        """Adopt a root a previous server left behind: terminate any
        orphaned runners, then re-queue their jobs with ``resume=True``
        (or finalise them CANCELLED if that was already requested)."""
        recovered = []
        for job in self.queue.unfinished_jobs():
            if self.queue.units_for_job(job.id):
                if self.dispatch == "workers":
                    recovered.append(self._recover_dispatched(job))
                    continue
                # A workers-mode root adopted by a local-mode server:
                # drop the leftover units and re-run locally with
                # resume — recorded scenarios are served from the store.
                self.queue.cancel_units(job.id)
            if job.pid and _pid_alive(job.pid):
                self._terminate_pid(job.pid)
            # The orphan may have finished the whole campaign before (or
            # while) being told to stop — in that case the job is DONE,
            # not requeued.
            outcome = self._read_outcome(job.id)
            if outcome.get("ok") and not outcome.get("interrupted"):
                job = self.queue.set_state(
                    job.id, STATE_DONE, metrics=outcome.get("metrics") or {})
            elif job.cancel_requested:
                job = self.queue.set_state(
                    job.id, STATE_CANCELLED,
                    error="cancelled (server restarted)")
            else:
                job = self.queue.set_state(job.id, STATE_QUEUED,
                                           resume=True)
            append_event(self.events_path(job.id), "state", job=job.id,
                         state=job.state, recovered=True)
            self._emit(f"[service] recovered job {job.id} -> {job.state}")
            recovered.append(job)
        if self.dispatch == "workers":
            # Crash-recovery lease sweep: workers that died with (or
            # without) the server hold leases that are now past their
            # deadline — drop them, tagged ``resumed``, so their units
            # requeue immediately.  Live workers' leases stay valid (the
            # tokens persist in SQLite) and their next heartbeat renews.
            self.dispatcher.tick(resumed=True)
        return recovered

    def _recover_dispatched(self, job: Job) -> Job:
        """A units-backed job: the durable state IS the units table.

        A RUNNING job stays RUNNING — surviving workers still hold valid
        leases (tokens live in the queue DB) and keep heartbeating; dead
        workers' leases expire and their units requeue.  A job caught
        mid-fan-out (STAGING) goes back to QUEUED and is re-dispatched
        idempotently: existing units (DONE ones included) are kept.
        """
        if job.state == STATE_STAGING:
            job = self.queue.set_state(job.id, STATE_QUEUED, resume=True)
        append_event(self.events_path(job.id), "state", job=job.id,
                     state=job.state, recovered=True, dispatched=True)
        self._emit(f"[service] recovered dispatched job {job.id} "
                   f"-> {job.state}")
        return job

    def _terminate_pid(self, pid: int) -> None:
        try:
            os.kill(pid, signal.SIGTERM)
        except OSError:
            return
        deadline = time.monotonic() + self.drain_timeout_s
        while time.monotonic() < deadline:
            if not _pid_alive(pid):
                return
            time.sleep(0.05)
        try:
            os.kill(pid, signal.SIGKILL)  # drain budget exhausted
        except OSError:
            pass

    def shutdown(self) -> None:
        """Graceful stop: drain every runner, re-queue what they were
        working on (resume on next start), release the queue DB."""
        for job_id, process in list(self._children.items()):
            if process.is_alive():
                process.terminate()
            process.join(self.drain_timeout_s)
            if process.is_alive():  # pragma: no cover - drain hung
                process.kill()
                process.join()
        self._reap()
        for job in self.queue.unfinished_jobs():
            if self.dispatch == "workers" \
                    and self.queue.units_for_job(job.id):
                # Units-backed jobs are already durable: leases expire
                # while the server is down and recover() re-adopts the
                # job on restart — nothing to requeue here.
                continue
            if job.cancel_requested:
                job = self.queue.set_state(job.id, STATE_CANCELLED,
                                           error="cancelled at shutdown")
            else:
                job = self.queue.set_state(job.id, STATE_QUEUED,
                                           resume=True)
            append_event(self.events_path(job.id), "state", job=job.id,
                         state=job.state, shutdown=True)
        self.queue.close()

    # -- read-side documents ---------------------------------------------
    def job_status_doc(self, job_id: str,
                       events_after: int = 0) -> Dict[str, Any]:
        job = self.queue.get(job_id)            # KeyError -> 404
        events, next_index = read_events(self.events_path(job_id),
                                         after=events_after)
        # Progress = distinct scenarios with a recorded completion (a
        # resumed job re-emits store-served scenarios; names dedupe).
        all_events, _ = read_events(self.events_path(job_id))
        done = {e["name"] for e in all_events
                if e.get("event") == "scenario"}
        doc = job.to_dict()
        doc["progress"] = {"scenarios_done": len(done),
                           "scenarios_total": job.n_scenarios}
        doc["events"] = events
        doc["events_next"] = next_index
        return doc

    def results_doc(self, job_id: str) -> Dict[str, Any]:
        job = self.queue.get(job_id)
        store = CampaignStore(self.campaign_dir(job_id))
        manifest = store.load_or_rebuild_manifest()
        records = [r.to_dict() for r in store.read_runs()]
        return {"job": job.to_dict(), "manifest": manifest,
                "records": records}

    def metrics_doc(self) -> Dict[str, Any]:
        doc = self.queue.counters_doc()
        doc["running_jobs"] = len(self._children)
        doc["max_jobs"] = self.max_jobs
        doc["dispatch_mode"] = self.dispatch
        doc["artifact_store"] = self.store.counters_doc()
        doc["dispatch"] = {
            "counters": self.queue.dispatch_counters(),
            "units_by_state": self.queue.units_by_state_doc(),
            "workers": self.queue.workers_doc(),
        }
        return doc
