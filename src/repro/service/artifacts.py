"""Multi-tenant artifact store: results + staged traces under one roof.

The campaign layer already has two derived-artifact caches: the
content-addressed :class:`~repro.campaign.cache.ResultCache` (scenario
results) and the ``.tic`` sidecars :mod:`repro.core.compile` drops next
to trace files.  For a long-running, many-tenant service both are
promoted into a single *artifact store*::

    <root>/
      results/<k>/<key>.json    # the shared ResultCache (unchanged layout)
      traces/<digest>/...       # staged trace trees, content-addressed,
                                # growing warm .tic sidecars in place

**Staged traces.**  A submitted scenario with ``trace.kind == "dir"``
references some client-side directory.  The supervisor *stages* it: the
tree is copied under its content digest (``digest_tree``, which skips
``.tic`` files, so the address is stable as sidecars appear) and the
scenario is rewritten to replay the staged copy.  Two tenants submitting
byte-identical traces share one staged tree — and therefore one compiled
``.tic`` set: the first replay compiles, everyone after replays warm.

**Eviction.**  ``max_bytes`` bounds the store.  Eviction is LRU over
*use*: result records get their mtime bumped on every cache hit
(:meth:`ResultCache.get`), staged trees on every staging hit; the
least-recently-used entry (record file or whole trace tree) goes first.
Entries named in ``protect`` — traces referenced by live jobs — are
never evicted.

**Concurrency.**  Writers are atomic (temp + ``os.replace`` for records,
temp tree + ``os.rename`` for traces); readers take no locks: a reader
racing a writer sees the old artifact or the new one, never a torn one.
Per-tenant counters kept here are in-process views (the server folds the
authoritative per-tenant totals into the queue DB from each job's
campaign metrics — see :meth:`Supervisor._reap`).
"""

from __future__ import annotations

import io
import os
import shutil
import tarfile
import time
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..campaign.cache import ResultCache, digest_tree

__all__ = ["ArtifactStore", "pack_tree_tar", "unpack_tree_tar"]


def pack_tree_tar(root: str) -> bytes:
    """A directory tree as an (uncompressed) tar archive, members in
    sorted order — the wire format of the artifact fetch/push endpoints.
    Trace bytes are already dense; compression would cost CPU on the
    single-threaded server for little."""
    buf = io.BytesIO()
    with tarfile.open(fileobj=buf, mode="w") as tar:
        for dirpath, dirs, files in os.walk(root):
            dirs.sort()
            for name in sorted(files):
                full = os.path.join(dirpath, name)
                tar.add(full, arcname=os.path.relpath(full, root),
                        recursive=False)
    return buf.getvalue()


def _safe_members(tar: tarfile.TarFile) -> Iterator[tarfile.TarInfo]:
    for member in tar.getmembers():
        parts = member.name.split("/")
        if member.name.startswith("/") or ".." in parts:
            raise ValueError(f"unsafe tar member {member.name!r}")
        if not (member.isreg() or member.isdir()):
            raise ValueError(
                f"unsupported tar member type for {member.name!r}")
        yield member


def unpack_tree_tar(data: bytes, dst: str) -> None:
    """Extract an artifact tar under ``dst``, refusing absolute paths,
    ``..`` traversal, and non-file members."""
    os.makedirs(dst, exist_ok=True)
    with tarfile.open(fileobj=io.BytesIO(data), mode="r:*") as tar:
        members = list(_safe_members(tar))
        try:
            tar.extractall(dst, members=members, filter="data")
        except TypeError:   # Python < 3.12: no extraction filters
            tar.extractall(dst, members=members)


def _tree_bytes(root: str) -> int:
    total = 0
    for dirpath, _dirs, files in os.walk(root):
        for name in files:
            try:
                total += os.path.getsize(os.path.join(dirpath, name))
            except OSError:
                pass
    return total


class ArtifactStore:
    """One directory holding every shareable artifact of the service."""

    def __init__(self, root: str, max_bytes: int = 0) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0 (0 = unbounded)")
        self.root = root
        self.max_bytes = max_bytes
        self.results_dir = os.path.join(root, "results")
        self.traces_dir = os.path.join(root, "traces")
        os.makedirs(self.results_dir, exist_ok=True)
        os.makedirs(self.traces_dir, exist_ok=True)
        self.results = ResultCache(self.results_dir)
        #: In-process per-tenant counters: {tenant: {counter: n}}.
        self.counters: Dict[str, Dict[str, int]] = {}
        self.evictions = 0
        self.evicted_bytes = 0

    # -- counters --------------------------------------------------------
    def _count(self, tenant: str, counter: str, n: int = 1) -> None:
        per = self.counters.setdefault(tenant, {
            "result_hits": 0, "result_misses": 0,
            "stage_hits": 0, "stage_misses": 0,
        })
        per[counter] += n

    # -- result records --------------------------------------------------
    def get_result(self, key: str,
                   tenant: str = "default") -> Optional[Dict[str, Any]]:
        record = self.results.get(key)
        self._count(tenant,
                    "result_hits" if record is not None else "result_misses")
        return record

    def put_result(self, key: str, record: Dict[str, Any],
                   tenant: str = "default") -> str:
        path = self.results.put(key, record)
        if self.max_bytes:
            self.evict()
        return path

    # -- staged trace trees ----------------------------------------------
    def trace_path(self, digest: str) -> str:
        return os.path.join(self.traces_dir, digest)

    def stage_trace_dir(self, src: str,
                        tenant: str = "default") -> Tuple[str, bool]:
        """Stage a trace directory by content address.

        Returns ``(staged_path, hit)`` — ``hit`` when a byte-identical
        tree was already staged (by any tenant).  The copy lands under a
        temp name and is published with one ``rename``, so a concurrent
        stager of the same tree loses the race harmlessly.
        """
        digest = digest_tree(src)
        dst = self.trace_path(digest)
        if os.path.isdir(dst):
            os.utime(dst, None)     # LRU recency, same as a cache hit
            self._count(tenant, "stage_hits")
            return dst, True
        tmp = os.path.join(self.traces_dir, f".tmp-{digest}-{os.getpid()}")
        shutil.rmtree(tmp, ignore_errors=True)
        shutil.copytree(src, tmp)
        try:
            os.rename(tmp, dst)
        except OSError:
            # Lost the publish race: someone else staged it first.
            shutil.rmtree(tmp, ignore_errors=True)
            if not os.path.isdir(dst):
                raise
            self._count(tenant, "stage_hits")
            return dst, True
        self._count(tenant, "stage_misses")
        if self.max_bytes:
            # Never evict the tree we just staged — the caller is about
            # to run a job against it.
            self.evict(protect=(digest,))
        return dst, False

    def export_trace_tar(self, digest: str) -> bytes:
        """The staged tree as a tar archive (the fetch endpoint body).
        Raises ``KeyError`` when the digest is not staged.  Counts as a
        use for LRU purposes."""
        path = self.trace_path(digest)
        if not os.path.isdir(path):
            raise KeyError(f"trace {digest!r} is not staged")
        os.utime(path, None)
        return pack_tree_tar(path)

    def import_trace_tar(self, data: bytes, digest: str,
                         tenant: str = "default") -> Tuple[str, bool]:
        """Accept a pushed trace tar, verify its content address, and
        publish it (the push endpoint).  Returns ``(path, hit)``; raises
        ``ValueError`` when the bytes do not hash to ``digest``."""
        dst = self.trace_path(digest)
        if os.path.isdir(dst):
            os.utime(dst, None)
            self._count(tenant, "stage_hits")
            return dst, True
        tmp = os.path.join(self.traces_dir,
                           f".tmp-push-{digest}-{os.getpid()}")
        shutil.rmtree(tmp, ignore_errors=True)
        try:
            unpack_tree_tar(data, tmp)
            actual = digest_tree(tmp)
            if actual != digest:
                raise ValueError(
                    f"pushed artifact hashes to {actual[:12]}, "
                    f"not {digest[:12]} — refusing corrupt bytes")
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        try:
            os.rename(tmp, dst)
        except OSError:
            shutil.rmtree(tmp, ignore_errors=True)
            if not os.path.isdir(dst):
                raise
            self._count(tenant, "stage_hits")
            return dst, True
        self._count(tenant, "stage_misses")
        return dst, False

    # -- size accounting + LRU eviction ----------------------------------
    def _entries(self) -> List[Dict[str, Any]]:
        """Every evictable entry: result record files and trace trees."""
        entries: List[Dict[str, Any]] = []
        for dirpath, _dirs, files in os.walk(self.results_dir):
            for name in files:
                if not name.endswith(".json"):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                entries.append({"kind": "result", "path": path,
                                "name": name[:-len(".json")],
                                "bytes": stat.st_size,
                                "used_at": stat.st_mtime})
        try:
            names = sorted(os.listdir(self.traces_dir))
        except OSError:
            names = []
        for name in names:
            if name.startswith(".tmp-"):
                continue
            path = os.path.join(self.traces_dir, name)
            if not os.path.isdir(path):
                continue
            try:
                used = os.stat(path).st_mtime
            except OSError:
                continue
            entries.append({"kind": "trace", "path": path, "name": name,
                            "bytes": _tree_bytes(path), "used_at": used})
        return entries

    def usage(self) -> Dict[str, Any]:
        entries = self._entries()
        return {
            "bytes": sum(e["bytes"] for e in entries),
            "max_bytes": self.max_bytes,
            "result_records": sum(1 for e in entries
                                  if e["kind"] == "result"),
            "trace_trees": sum(1 for e in entries if e["kind"] == "trace"),
        }

    def evict(self, protect: Iterable[str] = ()) -> List[Dict[str, Any]]:
        """Drop least-recently-used entries until under ``max_bytes``.

        ``protect`` lists trace digests that must survive (traces staged
        for jobs currently running).  Returns what was evicted.  A
        no-op when the store is unbounded.
        """
        if not self.max_bytes:
            return []
        protected = set(protect)
        entries = self._entries()
        total = sum(e["bytes"] for e in entries)
        evicted: List[Dict[str, Any]] = []
        for entry in sorted(entries, key=lambda e: e["used_at"]):
            if total <= self.max_bytes:
                break
            if entry["kind"] == "trace" and entry["name"] in protected:
                continue
            try:
                if entry["kind"] == "trace":
                    shutil.rmtree(entry["path"])
                else:
                    os.unlink(entry["path"])
            except OSError:
                continue
            total -= entry["bytes"]
            self.evictions += 1
            self.evicted_bytes += entry["bytes"]
            evicted.append({"kind": entry["kind"], "name": entry["name"],
                            "bytes": entry["bytes"],
                            "evicted_at": time.time()})
        return evicted

    def counters_doc(self) -> Dict[str, Any]:
        return {
            "usage": self.usage(),
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "tenants": {name: dict(per)
                        for name, per in sorted(self.counters.items())},
        }
