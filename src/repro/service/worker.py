"""``repro-worker``: a remote execution worker for the campaign service.

A worker is the distributed counterpart of one slot of the campaign
runner's process fleet.  It is stdlib-only and owns a local *root*::

    <root>/
      traces/<digest>/...   # artifact cache, content-addressed, mirrors
                            # the server store (grows warm .tic sidecars)
      cache/...             # local ResultCache for re-executed units
      units/<id>/           # scratch campaign dir of the unit in flight

The loop::

    register → lease → stage artifacts by digest → fork runner
             → heartbeat while it runs → post result → lease …

**Staging by content address.**  A unit names the trace digests it
needs.  A digest already present locally is *verified*
(``digest_tree``, which skips ``.tic`` sidecars — locally compiled
programs survive verification) and reused: zero bytes move.  A missing
or corrupt tree is fetched from ``GET /v1/artifacts/traces/<digest>``
as a tar, verified, and published atomically.  The worker reports
fetched vs. cached bytes so the server can account
``bytes_shipped`` / ``bytes_saved_by_cache``.

**Leases.**  The unit is executed by a forked child running the
ordinary campaign runner (``jobs=1``, ``max_retries=0`` — the *server*
owns the retry/backoff/quarantine policy).  While the child runs, the
parent heartbeats every ``lease_s / 3``.  A 409 means the lease was
lost (expired and requeued, or a speculative twin already won): the
child is killed and nothing is posted.  A 409 on the result post means
the same race was lost at the finish line — the result is discarded
server-side and counted, and the worker simply moves on.

SIGTERM finishes the unit in flight, then exits (SIGKILL is the chaos
path the service is designed to absorb).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import socket
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..campaign.cache import digest_tree
from .artifacts import pack_tree_tar, unpack_tree_tar
from .client import ServiceClient, ServiceError

__all__ = ["Worker", "main_worker"]


def _unit_main(spec_doc: Dict[str, Any], out_dir: str,
               cache_dir: str) -> None:
    """Child entry: run the single-scenario campaign, exit 0/1."""
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    from ..campaign.runner import run_campaign
    from ..campaign.spec import CampaignSpec

    spec = CampaignSpec.from_dict(spec_doc)
    result = run_campaign(spec, out_dir, jobs=1, cache_dir=cache_dir)
    sys.exit(0 if result.ok else 1)


class Worker:
    """One remote worker process: lease, stage, execute, report."""

    def __init__(self, server_url: str, root: str,
                 name: Optional[str] = None, *,
                 lease_s: float = 15.0, poll_s: float = 1.0,
                 max_units: int = 0, idle_exit_s: float = 0.0,
                 verify: bool = True,
                 log: Optional[Callable[[str], None]] = None) -> None:
        if lease_s <= 0:
            raise ValueError("lease_s must be > 0")
        self.client = ServiceClient(server_url)
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.root = os.path.abspath(root)
        self.traces_dir = os.path.join(self.root, "traces")
        self.cache_dir = os.path.join(self.root, "cache")
        self.units_dir = os.path.join(self.root, "units")
        for path in (self.traces_dir, self.cache_dir, self.units_dir):
            os.makedirs(path, exist_ok=True)
        self.lease_s = lease_s
        self.poll_s = poll_s
        self.max_units = max_units
        self.idle_exit_s = idle_exit_s
        self.verify = verify
        self._emit = log if log is not None else (lambda _msg: None)
        self._stop = False
        import multiprocessing
        start = ("fork"
                 if "fork" in multiprocessing.get_all_start_methods()
                 else "spawn")
        self._ctx = multiprocessing.get_context(start)
        self.units_completed = 0
        self.units_failed = 0
        self.leases_lost = 0
        self.bytes_fetched = 0
        self.bytes_cached = 0

    # -- lifecycle -------------------------------------------------------
    def request_stop(self) -> None:
        self._stop = True

    def run(self) -> int:
        """The worker loop; returns the number of units completed."""
        self.client.register_worker(self.name, info={
            "pid": os.getpid(), "host": socket.gethostname(),
            "root": self.root})
        self._emit(f"[worker {self.name}] registered with "
                   f"{self.client.base_url}")
        idle_since: Optional[float] = None
        while not self._stop:
            if self.max_units and self.units_completed >= self.max_units:
                break
            try:
                grant = self.client.lease(self.name, self.lease_s)
            except ServiceError as exc:
                if exc.status == 0:
                    self._emit(f"[worker {self.name}] server unreachable: "
                               f"{exc.message}; retrying")
                    time.sleep(self.poll_s)
                    continue
                raise
            if grant is None:
                now = time.monotonic()
                idle_since = idle_since if idle_since is not None else now
                if self.idle_exit_s and now - idle_since >= self.idle_exit_s:
                    self._emit(f"[worker {self.name}] idle "
                               f"{self.idle_exit_s:g}s; exiting")
                    break
                time.sleep(self.poll_s)
                continue
            idle_since = None
            self._run_unit(grant)
        self._emit(f"[worker {self.name}] done: "
                   f"{self.units_completed} completed, "
                   f"{self.units_failed} failed, "
                   f"{self.leases_lost} lease(s) lost")
        return self.units_completed

    # -- staging ---------------------------------------------------------
    def _stage_digest(self, digest: str) -> Tuple[str, int, int]:
        """Ensure ``traces/<digest>`` exists and is intact; returns
        ``(path, fetched_bytes, cached_bytes)``."""
        local = os.path.join(self.traces_dir, digest)
        if os.path.isdir(local):
            if not self.verify or digest_tree(local) == digest:
                size = sum(
                    os.path.getsize(os.path.join(dirpath, fname))
                    for dirpath, _dirs, files in os.walk(local)
                    for fname in files)
                return local, 0, size
            # Corrupt local copy (torn fetch, disk trouble, chaos):
            # refuse to replay garbage — drop it and fetch fresh bytes.
            self._emit(f"[worker {self.name}] local artifact {digest[:12]} "
                       f"failed verification; refetching")
            shutil.rmtree(local, ignore_errors=True)
        data = self.client.fetch_trace(digest)
        tmp = os.path.join(self.traces_dir,
                           f".tmp-{digest}-{os.getpid()}")
        shutil.rmtree(tmp, ignore_errors=True)
        try:
            unpack_tree_tar(data, tmp)
            actual = digest_tree(tmp)
            if actual != digest:
                raise ValueError(
                    f"fetched artifact hashes to {actual[:12]}, "
                    f"not {digest[:12]}")
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        try:
            os.rename(tmp, local)
        except OSError:
            shutil.rmtree(tmp, ignore_errors=True)
            if not os.path.isdir(local):
                raise
        return local, len(data), 0

    def _stage_unit(self, unit: Dict[str, Any]
                    ) -> Tuple[Dict[str, Any], int, int]:
        """Stage every artifact the unit references; returns the
        rewritten scenario plus fetched/cached byte counts."""
        scenario = json.loads(json.dumps(unit["scenario"]))  # deep copy
        fetched = cached = 0
        trace = scenario.get("trace") or {}
        if trace.get("kind") == "dir":
            digests = unit.get("digests") or []
            if not digests:
                raise ValueError("dir-trace unit carries no digest")
            local, f, c = self._stage_digest(digests[0])
            fetched += f
            cached += c
            trace["path"] = local
            scenario["trace"] = trace
        platform = scenario.get("platform") or {}
        xml_path = platform.get("xml_path")
        if xml_path and not os.path.exists(xml_path):
            raise ValueError(
                f"platform file {xml_path!r} is not visible from this "
                f"worker (server-local paths do not ship; see "
                f"docs/distributed.md)")
        faults = scenario.get("faults") or {}
        plan_path = faults.get("plan_path")
        if plan_path and not os.path.exists(plan_path):
            raise ValueError(
                f"fault plan {plan_path!r} is not visible from this "
                f"worker (use inline plan_json for distributed runs)")
        # The server owns retries/backoff/quarantine; one attempt here.
        scenario["max_retries"] = 0
        return scenario, fetched, cached

    # -- one unit --------------------------------------------------------
    def _run_unit(self, grant: Dict[str, Any]) -> None:
        unit = grant["unit"]
        unit_id, token = unit["id"], grant["token"]
        name = unit["name"]
        tag = " (speculative)" if grant.get("speculative") else ""
        self._emit(f"[worker {self.name}] unit {unit_id} ({name})"
                   f"{tag}: leased")
        t0 = time.monotonic()
        try:
            scenario, fetched, cached = self._stage_unit(unit)
        except (ServiceError, ValueError, OSError) as exc:
            self._post_failure(unit_id, token, name, {
                "type": type(exc).__name__, "message": str(exc),
                "traceback": ""}, time.monotonic() - t0)
            return
        self.bytes_fetched += fetched
        self.bytes_cached += cached
        try:
            self.client.ack_staged(unit_id, self.name,
                                   fetched_bytes=fetched,
                                   cached_bytes=cached)
        except ServiceError:
            pass    # accounting only; never worth failing the unit

        spec_doc = {"name": f"unit-{unit_id}", "jobs": 1,
                    "retry_backoff": 0.0, "scenarios": [scenario]}
        out_dir = os.path.join(self.units_dir, unit_id)
        shutil.rmtree(out_dir, ignore_errors=True)
        process = self._ctx.Process(
            target=_unit_main, args=(spec_doc, out_dir, self.cache_dir),
            name=f"repro-unit-{unit_id}")
        process.start()
        lost = False
        hb_due = time.monotonic() + self.lease_s / 3.0
        while process.is_alive():
            time.sleep(min(0.2, self.lease_s / 10.0))
            if time.monotonic() < hb_due:
                continue
            hb_due = time.monotonic() + self.lease_s / 3.0
            try:
                self.client.heartbeat(unit_id, self.name, token,
                                      self.lease_s)
            except ServiceError as exc:
                if exc.status == 409:
                    # Superseded: expired + requeued, cancelled, or a
                    # speculative twin already won.  Stop burning CPU.
                    self._emit(f"[worker {self.name}] unit {unit_id}: "
                               f"lease lost ({exc.message}); aborting")
                    process.terminate()
                    process.join(5.0)
                    if process.is_alive():
                        process.kill()
                        process.join()
                    lost = True
                    break
                # Unreachable server: keep computing, try again next beat.
        process.join()
        wall = time.monotonic() - t0
        if lost:
            self.leases_lost += 1
            shutil.rmtree(out_dir, ignore_errors=True)
            return
        self._report(unit_id, token, name, scenario, out_dir, wall)
        shutil.rmtree(out_dir, ignore_errors=True)

    def _report(self, unit_id: str, token: str, name: str,
                scenario: Dict[str, Any], out_dir: str,
                wall: float) -> None:
        from ..campaign.store import CampaignStore

        record = CampaignStore(out_dir).read_run(name)
        if record is None:
            self._post_failure(unit_id, token, name, {
                "type": "WorkerDied",
                "message": "unit runner exited without a record",
                "traceback": ""}, wall)
            return
        if record.ok:
            try:
                self.client.post_result(unit_id, self.name, token, {
                    "status": "ok", "result": record.result,
                    "wall_seconds": wall})
            except ServiceError as exc:
                if exc.status != 409:
                    raise
                self.leases_lost += 1
                self._emit(f"[worker {self.name}] unit {unit_id}: result "
                           f"discarded (lease superseded)")
                return
            self.units_completed += 1
            self._emit(f"[worker {self.name}] unit {unit_id} ({name}): "
                       f"ok in {wall:.2f}s")
            return
        error = record.error or {"type": "Unknown", "message": "",
                                 "traceback": ""}
        self._post_failure(unit_id, token, name, error, wall,
                           status=record.status)

    def _post_failure(self, unit_id: str, token: str, name: str,
                      error: Dict[str, str], wall: float,
                      status: str = "failed") -> None:
        self.units_failed += 1
        self._emit(f"[worker {self.name}] unit {unit_id} ({name}): "
                   f"{status}: {error.get('message', '')}")
        try:
            self.client.post_result(unit_id, self.name, token, {
                "status": status, "error": error, "wall_seconds": wall})
        except ServiceError as exc:
            if exc.status != 409:
                raise
            self.leases_lost += 1

    # -- push-back (optional) --------------------------------------------
    def push_trace(self, digest: str) -> bool:
        """Push a locally staged tree (e.g. one that grew ``.tic``
        sidecars) back to the server store; False when absent locally."""
        local = os.path.join(self.traces_dir, digest)
        if not os.path.isdir(local):
            return False
        self.client.push_trace(digest, pack_tree_tar(local))
        return True


def main_worker(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Remote execution worker for the repro campaign "
                    "service: leases work units, stages artifacts by "
                    "content digest, runs them through the campaign "
                    "runner, and streams results back.")
    parser.add_argument("--server", required=True,
                        help="service base URL, e.g. http://host:8642")
    parser.add_argument("--root", required=True,
                        help="worker root (artifact cache + scratch)")
    parser.add_argument("--name", default=None,
                        help="worker name (default: <host>-<pid>)")
    parser.add_argument("--lease-s", type=float, default=15.0,
                        help="lease duration; heartbeats every third "
                             "of it (default 15)")
    parser.add_argument("--poll-s", type=float, default=1.0,
                        help="idle poll interval (default 1)")
    parser.add_argument("--max-units", type=int, default=0,
                        help="exit after N completed units (0 = forever)")
    parser.add_argument("--idle-exit-s", type=float, default=0.0,
                        help="exit after this long with nothing to lease "
                             "(0 = never)")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip re-hashing locally cached artifacts")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    worker = Worker(
        args.server, args.root, args.name,
        lease_s=args.lease_s, poll_s=args.poll_s,
        max_units=args.max_units, idle_exit_s=args.idle_exit_s,
        verify=not args.no_verify,
        log=(None if args.quiet else print))
    signal.signal(signal.SIGTERM,
                  lambda _s, _f: worker.request_stop())
    try:
        worker.run()
    except KeyboardInterrupt:
        pass
    except ServiceError as exc:
        print(f"repro-worker: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":   # pragma: no cover - `python -m` entry
    sys.exit(main_worker())
