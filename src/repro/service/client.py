"""Thin stdlib client for the replay service.

``repro-campaign submit/status/results/cancel --server URL`` all go
through :class:`ServiceClient`; it is equally usable from notebooks and
tests.  One HTTP request per call (``urllib``), JSON in/out, and a
:class:`ServiceError` carrying the server's status code and message on
anything non-2xx — no retry magic, the service is idempotent to poll.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Optional

__all__ = ["ServiceClient", "ServiceError"]

#: Job states a client may wait for (mirrors repro.service.queue).
_TERMINAL = {"DONE", "FAILED", "CANCELLED"}


class ServiceError(Exception):
    """An HTTP-level failure: ``status`` 0 means unreachable."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"[{status}] {message}" if status else message)
        self.status = status
        self.message = message


class ServiceClient:
    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- transport -------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")) \
                    .get("error", exc.reason)
            except Exception:  # noqa: BLE001 - error body is best-effort
                message = str(exc.reason)
            raise ServiceError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                0, f"cannot reach {self.base_url}: {exc.reason}") from None

    def _request_raw(self, method: str, path: str,
                     data: Optional[bytes] = None,
                     content_type: str = "application/x-tar") -> bytes:
        """Binary transport (artifact fetch/push): raw bytes in/out."""
        headers = {}
        if data is not None:
            headers["Content-Type"] = content_type
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")) \
                    .get("error", exc.reason)
            except Exception:  # noqa: BLE001 - error body is best-effort
                message = str(exc.reason)
            raise ServiceError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                0, f"cannot reach {self.base_url}: {exc.reason}") from None

    # -- API -------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/metrics")

    def set_tenant(self, name: str, weight: float = 1.0) -> Dict[str, Any]:
        return self._request("POST", "/v1/tenants",
                             {"name": name, "weight": weight})

    def submit(self, spec_doc: Dict[str, Any], tenant: str = "default",
               priority: int = 0) -> Dict[str, Any]:
        doc = self._request("POST", "/v1/jobs", {
            "spec": spec_doc, "tenant": tenant, "priority": priority})
        return doc["job"]

    def jobs(self, tenant: Optional[str] = None,
             state: Optional[str] = None) -> List[Dict[str, Any]]:
        query = []
        if tenant:
            query.append(f"tenant={tenant}")
        if state:
            query.append(f"state={state}")
        suffix = ("?" + "&".join(query)) if query else ""
        return self._request("GET", f"/v1/jobs{suffix}")["jobs"]

    def job(self, job_id: str, events_after: int = 0) -> Dict[str, Any]:
        return self._request(
            "GET", f"/v1/jobs/{job_id}?events_after={events_after}")

    def results(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}/results")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")["job"]

    # -- distributed execution -------------------------------------------
    def register_worker(self, name: str,
                        info: Optional[Dict[str, Any]] = None
                        ) -> Dict[str, Any]:
        return self._request("POST", "/v1/workers",
                             {"name": name, "info": info or {}})["worker"]

    def workers(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/workers")["workers"]

    def lease(self, worker: str,
              lease_s: float = 15.0) -> Optional[Dict[str, Any]]:
        """Claim the next work unit, or None when the queue is idle."""
        doc = self._request("POST", "/v1/lease",
                            {"worker": worker, "lease_s": lease_s})
        if doc.get("unit") is None:
            return None
        return doc

    def heartbeat(self, unit_id: str, worker: str, token: str,
                  lease_s: float = 15.0) -> float:
        """Renew a lease; :class:`ServiceError` 409 = lease lost."""
        return self._request(
            "POST", f"/v1/units/{unit_id}/heartbeat",
            {"worker": worker, "token": token,
             "lease_s": lease_s})["deadline"]

    def post_result(self, unit_id: str, worker: str, token: str,
                    doc: Dict[str, Any]) -> Dict[str, Any]:
        body = dict(doc)
        body.update(worker=worker, token=token)
        return self._request("POST", f"/v1/units/{unit_id}/result", body)

    def ack_staged(self, unit_id: str, worker: str, *,
                   fetched_bytes: int = 0,
                   cached_bytes: int = 0) -> Dict[str, Any]:
        return self._request(
            "POST", f"/v1/units/{unit_id}/staged",
            {"worker": worker, "fetched_bytes": int(fetched_bytes),
             "cached_bytes": int(cached_bytes)})

    def job_units(self, job_id: str) -> List[Dict[str, Any]]:
        return self._request("GET", f"/v1/jobs/{job_id}/units")["units"]

    def unit(self, unit_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/units/{unit_id}")["unit"]

    def fetch_trace(self, digest: str) -> bytes:
        """The staged trace tree as tar bytes (404 = not staged)."""
        return self._request_raw("GET", f"/v1/artifacts/traces/{digest}")

    def push_trace(self, digest: str, data: bytes) -> Dict[str, Any]:
        raw = self._request_raw("PUT", f"/v1/artifacts/traces/{digest}",
                                data=data)
        return json.loads(raw.decode("utf-8"))

    # -- convenience -----------------------------------------------------
    def wait(self, job_id: str, timeout_s: Optional[float] = None,
             poll_s: float = 0.5,
             on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
             ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state, streaming each
        new event through ``on_event``.  Raises :class:`TimeoutError`
        when ``timeout_s`` elapses first."""
        deadline = None if timeout_s is None else \
            time.monotonic() + timeout_s
        cursor = 0
        while True:
            doc = self.job(job_id, events_after=cursor)
            cursor = doc.get("events_next", cursor)
            if on_event is not None:
                for event in doc.get("events", []):
                    on_event(event)
            if doc["state"] in _TERMINAL:
                return doc
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc['state']} after "
                    f"{timeout_s:g}s")
            time.sleep(poll_s)
