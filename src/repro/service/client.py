"""Thin stdlib client for the replay service.

``repro-campaign submit/status/results/cancel --server URL`` all go
through :class:`ServiceClient`; it is equally usable from notebooks and
tests.  One HTTP request per call (``urllib``), JSON in/out, and a
:class:`ServiceError` carrying the server's status code and message on
anything non-2xx — no retry magic, the service is idempotent to poll.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Optional

__all__ = ["ServiceClient", "ServiceError"]

#: Job states a client may wait for (mirrors repro.service.queue).
_TERMINAL = {"DONE", "FAILED", "CANCELLED"}


class ServiceError(Exception):
    """An HTTP-level failure: ``status`` 0 means unreachable."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"[{status}] {message}" if status else message)
        self.status = status
        self.message = message


class ServiceClient:
    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- transport -------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")) \
                    .get("error", exc.reason)
            except Exception:  # noqa: BLE001 - error body is best-effort
                message = str(exc.reason)
            raise ServiceError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                0, f"cannot reach {self.base_url}: {exc.reason}") from None

    # -- API -------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/metrics")

    def set_tenant(self, name: str, weight: float = 1.0) -> Dict[str, Any]:
        return self._request("POST", "/v1/tenants",
                             {"name": name, "weight": weight})

    def submit(self, spec_doc: Dict[str, Any], tenant: str = "default",
               priority: int = 0) -> Dict[str, Any]:
        doc = self._request("POST", "/v1/jobs", {
            "spec": spec_doc, "tenant": tenant, "priority": priority})
        return doc["job"]

    def jobs(self, tenant: Optional[str] = None,
             state: Optional[str] = None) -> List[Dict[str, Any]]:
        query = []
        if tenant:
            query.append(f"tenant={tenant}")
        if state:
            query.append(f"state={state}")
        suffix = ("?" + "&".join(query)) if query else ""
        return self._request("GET", f"/v1/jobs{suffix}")["jobs"]

    def job(self, job_id: str, events_after: int = 0) -> Dict[str, Any]:
        return self._request(
            "GET", f"/v1/jobs/{job_id}?events_after={events_after}")

    def results(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}/results")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")["job"]

    # -- convenience -----------------------------------------------------
    def wait(self, job_id: str, timeout_s: Optional[float] = None,
             poll_s: float = 0.5,
             on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
             ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state, streaming each
        new event through ``on_event``.  Raises :class:`TimeoutError`
        when ``timeout_s`` elapses first."""
        deadline = None if timeout_s is None else \
            time.monotonic() + timeout_s
        cursor = 0
        while True:
            doc = self.job(job_id, events_after=cursor)
            cursor = doc.get("events_next", cursor)
            if on_event is not None:
                for event in doc.get("events", []):
                    on_event(event)
            if doc["state"] in _TERMINAL:
                return doc
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc['state']} after "
                    f"{timeout_s:g}s")
            time.sleep(poll_s)
