"""Persistent job queue with weighted fair-share across tenants.

One job = one campaign spec submitted by one *tenant*.  The queue is a
single SQLite file (WAL mode) inside the service root, so every
transition survives a server crash — on restart the supervisor finds
exactly the jobs it was running and re-queues them for ``--resume``.

**Lifecycle.**  Every job walks the explicit state machine::

    QUEUED ──→ STAGING ──→ RUNNING ──→ DONE
       │           │           ├─────→ FAILED
       │           │           ├─────→ CANCELLED
       └───────────┴───────────┴─────→ CANCELLED
                   └───────────┴─────→ QUEUED   (crash recovery, resume)

Transitions outside this graph raise — a job can never silently skip a
state or resurrect from a terminal one.

**Scheduling.**  :meth:`JobQueue.claim_next` implements weighted
fair-share over *accumulated service*: each tenant carries a virtual
time ``vtime`` that grows by ``busy_seconds / weight`` whenever one of
its jobs finishes; the claimable job is the highest-priority, oldest job
of the tenant with the smallest ``vtime``.  A tenant with weight 2
therefore receives twice the service of a weight-1 tenant under
contention, and an idle tenant's first job is served promptly — but
cannot *starve* the fleet, because its ``vtime`` is clamped up to the
smallest active ``vtime`` at submit instead of replaying its whole idle
history as credit.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "Job", "JobQueue",
    "STATE_QUEUED", "STATE_STAGING", "STATE_RUNNING", "STATE_DONE",
    "STATE_FAILED", "STATE_CANCELLED", "TERMINAL_STATES",
]

STATE_QUEUED = "QUEUED"
STATE_STAGING = "STAGING"
STATE_RUNNING = "RUNNING"
STATE_DONE = "DONE"
STATE_FAILED = "FAILED"
STATE_CANCELLED = "CANCELLED"

TERMINAL_STATES = frozenset({STATE_DONE, STATE_FAILED, STATE_CANCELLED})

#: The lifecycle graph: state -> states reachable from it.
_TRANSITIONS = {
    STATE_QUEUED: {STATE_STAGING, STATE_CANCELLED},
    STATE_STAGING: {STATE_RUNNING, STATE_FAILED, STATE_CANCELLED,
                    STATE_QUEUED},
    STATE_RUNNING: {STATE_DONE, STATE_FAILED, STATE_CANCELLED,
                    STATE_QUEUED},
    STATE_DONE: set(),
    STATE_FAILED: set(),
    STATE_CANCELLED: set(),
}

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id              TEXT PRIMARY KEY,
    tenant          TEXT NOT NULL,
    priority        INTEGER NOT NULL DEFAULT 0,
    state           TEXT NOT NULL,
    campaign        TEXT NOT NULL DEFAULT '',
    n_scenarios     INTEGER NOT NULL DEFAULT 0,
    submitted_at    REAL NOT NULL,
    started_at      REAL,
    finished_at     REAL,
    pid             INTEGER,
    resume          INTEGER NOT NULL DEFAULT 0,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    error           TEXT NOT NULL DEFAULT '',
    metrics         TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state);
CREATE TABLE IF NOT EXISTS tenants (
    name            TEXT PRIMARY KEY,
    weight          REAL NOT NULL DEFAULT 1.0,
    vtime           REAL NOT NULL DEFAULT 0.0,
    jobs_submitted  INTEGER NOT NULL DEFAULT 0,
    jobs_finished   INTEGER NOT NULL DEFAULT 0,
    busy_seconds    REAL NOT NULL DEFAULT 0.0,
    result_hits     INTEGER NOT NULL DEFAULT 0,
    result_misses   INTEGER NOT NULL DEFAULT 0,
    stage_hits      INTEGER NOT NULL DEFAULT 0,
    stage_misses    INTEGER NOT NULL DEFAULT 0,
    evictions_triggered INTEGER NOT NULL DEFAULT 0
);
"""


@dataclass
class Job:
    """One queued campaign (the DB row, shaped for JSON)."""

    id: str
    tenant: str
    priority: int
    state: str
    campaign: str = ""
    n_scenarios: int = 0
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    pid: Optional[int] = None
    resume: bool = False
    cancel_requested: bool = False
    error: str = ""
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id, "tenant": self.tenant,
            "priority": self.priority, "state": self.state,
            "campaign": self.campaign, "n_scenarios": self.n_scenarios,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "resume": self.resume,
            "cancel_requested": self.cancel_requested,
            "error": self.error, "metrics": self.metrics,
        }


def _row_to_job(row: sqlite3.Row) -> Job:
    metrics = {}
    if row["metrics"]:
        try:
            metrics = json.loads(row["metrics"])
        except ValueError:  # pragma: no cover - defensive
            metrics = {}
    return Job(
        id=row["id"], tenant=row["tenant"], priority=row["priority"],
        state=row["state"], campaign=row["campaign"],
        n_scenarios=row["n_scenarios"], submitted_at=row["submitted_at"],
        started_at=row["started_at"], finished_at=row["finished_at"],
        pid=row["pid"], resume=bool(row["resume"]),
        cancel_requested=bool(row["cancel_requested"]),
        error=row["error"], metrics=metrics,
    )


class JobQueue:
    """SQLite-backed queue; one writer (the server), any readers."""

    def __init__(self, path: str) -> None:
        self.path = path
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self._db = sqlite3.connect(path, check_same_thread=False)
        self._db.row_factory = sqlite3.Row
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA synchronous=NORMAL")
        self._db.executescript(_SCHEMA)
        self._db.commit()

    def close(self) -> None:
        self._db.close()

    # -- tenants ---------------------------------------------------------
    def ensure_tenant(self, name: str, weight: Optional[float] = None) -> None:
        """Create the tenant row if needed; set its weight if given."""
        if not name:
            raise ValueError("tenant name must be non-empty")
        if weight is not None and weight <= 0:
            raise ValueError("tenant weight must be > 0")
        self._db.execute(
            "INSERT OR IGNORE INTO tenants (name) VALUES (?)", (name,))
        if weight is not None:
            self._db.execute(
                "UPDATE tenants SET weight = ? WHERE name = ?",
                (float(weight), name))
        self._db.commit()

    def tenants(self) -> List[Dict[str, Any]]:
        rows = self._db.execute(
            "SELECT * FROM tenants ORDER BY name").fetchall()
        return [dict(row) for row in rows]

    # -- submit / read ---------------------------------------------------
    def submit(self, tenant: str, campaign: str, n_scenarios: int,
               priority: int = 0, job_id: Optional[str] = None) -> Job:
        job_id = job_id or uuid.uuid4().hex[:12]
        self.ensure_tenant(tenant)
        now = time.time()
        # Idle-tenant clamp: returning after a quiet spell must not grant
        # unbounded back-service (its vtime would be far below everyone
        # else's — it would monopolise the fleet until "caught up").
        row = self._db.execute(
            "SELECT MIN(t.vtime) AS lo FROM tenants t WHERE EXISTS ("
            "  SELECT 1 FROM jobs j WHERE j.tenant = t.name"
            "  AND j.state IN (?, ?, ?))",
            (STATE_QUEUED, STATE_STAGING, STATE_RUNNING)).fetchone()
        if row["lo"] is not None:
            self._db.execute(
                "UPDATE tenants SET vtime = MAX(vtime, ?) WHERE name = ?",
                (row["lo"], tenant))
        self._db.execute(
            "INSERT INTO jobs (id, tenant, priority, state, campaign,"
            " n_scenarios, submitted_at) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (job_id, tenant, int(priority), STATE_QUEUED, campaign,
             int(n_scenarios), now))
        self._db.execute(
            "UPDATE tenants SET jobs_submitted = jobs_submitted + 1 "
            "WHERE name = ?", (tenant,))
        self._db.commit()
        return self.get(job_id)

    def get(self, job_id: str) -> Job:
        row = self._db.execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)).fetchone()
        if row is None:
            raise KeyError(f"unknown job {job_id!r}")
        return _row_to_job(row)

    def list_jobs(self, tenant: Optional[str] = None,
                  state: Optional[str] = None) -> List[Job]:
        query = "SELECT * FROM jobs"
        clauses, args = [], []
        if tenant:
            clauses.append("tenant = ?")
            args.append(tenant)
        if state:
            clauses.append("state = ?")
            args.append(state)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY submitted_at ASC, rowid ASC"
        return [_row_to_job(r) for r in self._db.execute(query, args)]

    # -- lifecycle -------------------------------------------------------
    def set_state(self, job_id: str, state: str, *,
                  pid: Optional[int] = None,
                  error: Optional[str] = None,
                  resume: Optional[bool] = None,
                  metrics: Optional[Dict[str, Any]] = None) -> Job:
        """Transition a job, enforcing the lifecycle graph."""
        job = self.get(job_id)
        if state not in _TRANSITIONS:
            raise ValueError(f"unknown job state {state!r}")
        if state not in _TRANSITIONS[job.state]:
            raise ValueError(
                f"job {job_id}: illegal transition "
                f"{job.state} -> {state}")
        sets = ["state = ?"]
        args: List[Any] = [state]
        now = time.time()
        if state == STATE_RUNNING:
            sets.append("started_at = COALESCE(started_at, ?)")
            args.append(now)
        if state in TERMINAL_STATES:
            sets.append("finished_at = ?")
            args.append(now)
        if state == STATE_QUEUED:   # crash-recovery requeue
            sets.append("pid = NULL")
        if pid is not None:
            sets.append("pid = ?")
            args.append(int(pid))
        if error is not None:
            sets.append("error = ?")
            args.append(error)
        if resume is not None:
            sets.append("resume = ?")
            args.append(1 if resume else 0)
        if metrics is not None:
            sets.append("metrics = ?")
            args.append(json.dumps(metrics, sort_keys=True))
        args.append(job_id)
        self._db.execute(
            f"UPDATE jobs SET {', '.join(sets)} WHERE id = ?", args)
        self._db.commit()
        return self.get(job_id)

    def request_cancel(self, job_id: str) -> Job:
        """Cancel a job.  QUEUED cancels immediately; STAGING/RUNNING is
        flagged for the supervisor to drain; terminal states refuse."""
        job = self.get(job_id)
        if job.terminal:
            raise ValueError(
                f"job {job_id} is already {job.state}; nothing to cancel")
        if job.state == STATE_QUEUED:
            return self.set_state(job_id, STATE_CANCELLED,
                                  error="cancelled while queued")
        self._db.execute(
            "UPDATE jobs SET cancel_requested = 1 WHERE id = ?", (job_id,))
        self._db.commit()
        return self.get(job_id)

    # -- fair-share claim ------------------------------------------------
    def claim_next(self) -> Optional[Job]:
        """The next job to run, or None: smallest tenant ``vtime`` first,
        then highest priority, then submit order.  The claim itself is
        the QUEUED → STAGING transition."""
        row = self._db.execute(
            "SELECT j.id FROM jobs j JOIN tenants t ON j.tenant = t.name"
            " WHERE j.state = ?"
            " ORDER BY t.vtime ASC, t.name ASC, j.priority DESC,"
            " j.submitted_at ASC, j.rowid ASC LIMIT 1",
            (STATE_QUEUED,)).fetchone()
        if row is None:
            return None
        return self.set_state(row["id"], STATE_STAGING)

    def charge(self, tenant: str, busy_seconds: float, *,
               result_hits: int = 0, result_misses: int = 0,
               stage_hits: int = 0, stage_misses: int = 0,
               evictions: int = 0, finished: bool = False) -> None:
        """Fold one job's service + cache economics into its tenant:
        ``vtime`` advances by ``busy_seconds / weight`` (the fair-share
        meter), the counters are the per-tenant hit/miss/eviction story
        the metrics endpoint reports."""
        self.ensure_tenant(tenant)
        self._db.execute(
            "UPDATE tenants SET"
            " vtime = vtime + ? / weight,"
            " busy_seconds = busy_seconds + ?,"
            " jobs_finished = jobs_finished + ?,"
            " result_hits = result_hits + ?,"
            " result_misses = result_misses + ?,"
            " stage_hits = stage_hits + ?,"
            " stage_misses = stage_misses + ?,"
            " evictions_triggered = evictions_triggered + ?"
            " WHERE name = ?",
            (max(0.0, busy_seconds), max(0.0, busy_seconds),
             1 if finished else 0, result_hits, result_misses,
             stage_hits, stage_misses, evictions, tenant))
        self._db.commit()

    # -- crash recovery --------------------------------------------------
    def unfinished_jobs(self) -> List[Job]:
        """Jobs a previous server left in STAGING/RUNNING."""
        return [job for state in (STATE_STAGING, STATE_RUNNING)
                for job in self.list_jobs(state=state)]

    def counters_doc(self) -> Dict[str, Any]:
        states = {state: 0 for state in _TRANSITIONS}
        for row in self._db.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"):
            states[row["state"]] = row["n"]
        return {"jobs_by_state": states, "tenants": self.tenants()}
