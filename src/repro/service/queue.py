"""Persistent job queue with weighted fair-share across tenants.

One job = one campaign spec submitted by one *tenant*.  The queue is a
single SQLite file (WAL mode) inside the service root, so every
transition survives a server crash — on restart the supervisor finds
exactly the jobs it was running and re-queues them for ``--resume``.

**Lifecycle.**  Every job walks the explicit state machine::

    QUEUED ──→ STAGING ──→ RUNNING ──→ DONE
       │           │           ├─────→ FAILED
       │           │           ├─────→ CANCELLED
       └───────────┴───────────┴─────→ CANCELLED
                   └───────────┴─────→ QUEUED   (crash recovery, resume)

Transitions outside this graph raise — a job can never silently skip a
state or resurrect from a terminal one.

**Scheduling.**  :meth:`JobQueue.claim_next` implements weighted
fair-share over *accumulated service*: each tenant carries a virtual
time ``vtime`` that grows by ``busy_seconds / weight`` whenever one of
its jobs finishes; the claimable job is the highest-priority, oldest job
of the tenant with the smallest ``vtime``.  A tenant with weight 2
therefore receives twice the service of a weight-1 tenant under
contention, and an idle tenant's first job is served promptly — but
cannot *starve* the fleet, because its ``vtime`` is clamped up to the
smallest active ``vtime`` at submit instead of replaying its whole idle
history as credit.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "Job", "JobQueue", "WorkUnit", "LeaseLostError",
    "STATE_QUEUED", "STATE_STAGING", "STATE_RUNNING", "STATE_DONE",
    "STATE_FAILED", "STATE_CANCELLED", "TERMINAL_STATES",
    "UNIT_PENDING", "UNIT_LEASED", "UNIT_DONE", "UNIT_QUARANTINED",
    "UNIT_CANCELLED", "UNIT_TERMINAL_STATES",
]

STATE_QUEUED = "QUEUED"
STATE_STAGING = "STAGING"
STATE_RUNNING = "RUNNING"
STATE_DONE = "DONE"
STATE_FAILED = "FAILED"
STATE_CANCELLED = "CANCELLED"

TERMINAL_STATES = frozenset({STATE_DONE, STATE_FAILED, STATE_CANCELLED})

#: The lifecycle graph: state -> states reachable from it.
_TRANSITIONS = {
    STATE_QUEUED: {STATE_STAGING, STATE_CANCELLED},
    STATE_STAGING: {STATE_RUNNING, STATE_FAILED, STATE_CANCELLED,
                    STATE_QUEUED},
    STATE_RUNNING: {STATE_DONE, STATE_FAILED, STATE_CANCELLED,
                    STATE_QUEUED},
    STATE_DONE: set(),
    STATE_FAILED: set(),
    STATE_CANCELLED: set(),
}

UNIT_PENDING = "PENDING"
UNIT_LEASED = "LEASED"
UNIT_DONE = "DONE"
UNIT_QUARANTINED = "QUARANTINED"
UNIT_CANCELLED = "CANCELLED"

UNIT_TERMINAL_STATES = frozenset(
    {UNIT_DONE, UNIT_QUARANTINED, UNIT_CANCELLED})


class LeaseLostError(Exception):
    """A heartbeat/result arrived under a lease that no longer exists.

    Raised when the (worker, token) pair does not match any active lease
    on the unit — the lease expired and was requeued, the unit already
    finished under another lease (speculative race), or the unit was
    cancelled.  The server maps this to HTTP 409 so the worker stops
    working on the unit.
    """


_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id              TEXT PRIMARY KEY,
    tenant          TEXT NOT NULL,
    priority        INTEGER NOT NULL DEFAULT 0,
    state           TEXT NOT NULL,
    campaign        TEXT NOT NULL DEFAULT '',
    n_scenarios     INTEGER NOT NULL DEFAULT 0,
    submitted_at    REAL NOT NULL,
    started_at      REAL,
    finished_at     REAL,
    pid             INTEGER,
    resume          INTEGER NOT NULL DEFAULT 0,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    error           TEXT NOT NULL DEFAULT '',
    metrics         TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state);
CREATE TABLE IF NOT EXISTS tenants (
    name            TEXT PRIMARY KEY,
    weight          REAL NOT NULL DEFAULT 1.0,
    vtime           REAL NOT NULL DEFAULT 0.0,
    jobs_submitted  INTEGER NOT NULL DEFAULT 0,
    jobs_finished   INTEGER NOT NULL DEFAULT 0,
    busy_seconds    REAL NOT NULL DEFAULT 0.0,
    result_hits     INTEGER NOT NULL DEFAULT 0,
    result_misses   INTEGER NOT NULL DEFAULT 0,
    stage_hits      INTEGER NOT NULL DEFAULT 0,
    stage_misses    INTEGER NOT NULL DEFAULT 0,
    evictions_triggered INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS units (
    id              TEXT PRIMARY KEY,
    job_id          TEXT NOT NULL,
    seq             INTEGER NOT NULL,
    name            TEXT NOT NULL,
    scenario        TEXT NOT NULL,
    cache_key       TEXT NOT NULL DEFAULT '',
    digests         TEXT NOT NULL DEFAULT '[]',
    state           TEXT NOT NULL,
    attempts        INTEGER NOT NULL DEFAULT 0,
    max_attempts    INTEGER NOT NULL DEFAULT 3,
    backoff_s       REAL NOT NULL DEFAULT 0.5,
    ready_at        REAL NOT NULL DEFAULT 0.0,
    speculative_eligible INTEGER NOT NULL DEFAULT 0,
    leases          TEXT NOT NULL DEFAULT '[]',
    retry_history   TEXT NOT NULL DEFAULT '[]',
    error           TEXT NOT NULL DEFAULT '',
    winner          TEXT NOT NULL DEFAULT '',
    created_at      REAL NOT NULL,
    started_at      REAL,
    finished_at     REAL,
    duration        REAL
);
CREATE INDEX IF NOT EXISTS units_by_job ON units (job_id);
CREATE INDEX IF NOT EXISTS units_by_state ON units (state);
CREATE TABLE IF NOT EXISTS workers (
    name            TEXT PRIMARY KEY,
    registered_at   REAL NOT NULL,
    last_seen       REAL NOT NULL,
    info            TEXT NOT NULL DEFAULT '{}',
    units_done      INTEGER NOT NULL DEFAULT 0,
    units_failed    INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS dcounters (
    name            TEXT PRIMARY KEY,
    value           INTEGER NOT NULL DEFAULT 0
);
"""


@dataclass
class Job:
    """One queued campaign (the DB row, shaped for JSON)."""

    id: str
    tenant: str
    priority: int
    state: str
    campaign: str = ""
    n_scenarios: int = 0
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    pid: Optional[int] = None
    resume: bool = False
    cancel_requested: bool = False
    error: str = ""
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id, "tenant": self.tenant,
            "priority": self.priority, "state": self.state,
            "campaign": self.campaign, "n_scenarios": self.n_scenarios,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "resume": self.resume,
            "cancel_requested": self.cancel_requested,
            "error": self.error, "metrics": self.metrics,
        }


def _row_to_job(row: sqlite3.Row) -> Job:
    metrics = {}
    if row["metrics"]:
        try:
            metrics = json.loads(row["metrics"])
        except ValueError:  # pragma: no cover - defensive
            metrics = {}
    return Job(
        id=row["id"], tenant=row["tenant"], priority=row["priority"],
        state=row["state"], campaign=row["campaign"],
        n_scenarios=row["n_scenarios"], submitted_at=row["submitted_at"],
        started_at=row["started_at"], finished_at=row["finished_at"],
        pid=row["pid"], resume=bool(row["resume"]),
        cancel_requested=bool(row["cancel_requested"]),
        error=row["error"], metrics=metrics,
    )


@dataclass
class WorkUnit:
    """One scenario-shard of a job, claimable by a worker under a lease.

    A unit generalizes the job-level ``RUNNING → QUEUED`` crash-recovery
    edge to per-scenario granularity::

        PENDING ──→ LEASED ──→ DONE
           │           ├─────→ PENDING      (lease expired / attempt failed)
           │           ├─────→ QUARANTINED  (attempts exhausted)
           │           └─────→ CANCELLED
           └─────────────────→ CANCELLED

    ``leases`` is the list of *active* leases — normally one; two during
    a speculative re-execution window (first result wins).  ``attempts``
    counts lease grants, and every lost attempt (expiry or failure)
    lands in ``retry_history`` with the same shape the campaign runner
    uses, plus ``worker``/``resumed``/``speculative`` tags.
    """

    id: str
    job_id: str
    seq: int
    name: str
    scenario: Dict[str, Any]
    cache_key: str = ""
    digests: List[str] = field(default_factory=list)
    state: str = UNIT_PENDING
    attempts: int = 0
    max_attempts: int = 3
    backoff_s: float = 0.5
    ready_at: float = 0.0
    speculative_eligible: bool = False
    leases: List[Dict[str, Any]] = field(default_factory=list)
    retry_history: List[Dict[str, Any]] = field(default_factory=list)
    error: str = ""
    winner: str = ""
    created_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    duration: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.state in UNIT_TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id, "job_id": self.job_id, "seq": self.seq,
            "name": self.name, "scenario": self.scenario,
            "cache_key": self.cache_key, "digests": list(self.digests),
            "state": self.state, "attempts": self.attempts,
            "max_attempts": self.max_attempts, "backoff_s": self.backoff_s,
            "ready_at": self.ready_at,
            "speculative_eligible": self.speculative_eligible,
            "leases": list(self.leases),
            "retry_history": list(self.retry_history),
            "error": self.error, "winner": self.winner,
            "created_at": self.created_at, "started_at": self.started_at,
            "finished_at": self.finished_at, "duration": self.duration,
        }


def _row_to_unit(row: sqlite3.Row) -> WorkUnit:
    def _loads(text: str, default: Any) -> Any:
        try:
            return json.loads(text) if text else default
        except ValueError:  # pragma: no cover - defensive
            return default

    return WorkUnit(
        id=row["id"], job_id=row["job_id"], seq=row["seq"],
        name=row["name"], scenario=_loads(row["scenario"], {}),
        cache_key=row["cache_key"], digests=_loads(row["digests"], []),
        state=row["state"], attempts=row["attempts"],
        max_attempts=row["max_attempts"], backoff_s=row["backoff_s"],
        ready_at=row["ready_at"],
        speculative_eligible=bool(row["speculative_eligible"]),
        leases=_loads(row["leases"], []),
        retry_history=_loads(row["retry_history"], []),
        error=row["error"], winner=row["winner"],
        created_at=row["created_at"], started_at=row["started_at"],
        finished_at=row["finished_at"], duration=row["duration"],
    )


class JobQueue:
    """SQLite-backed queue; one writer (the server), any readers."""

    def __init__(self, path: str) -> None:
        self.path = path
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self._db = sqlite3.connect(path, check_same_thread=False)
        self._db.row_factory = sqlite3.Row
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA synchronous=NORMAL")
        self._db.executescript(_SCHEMA)
        self._db.commit()

    def close(self) -> None:
        self._db.close()

    # -- tenants ---------------------------------------------------------
    def ensure_tenant(self, name: str, weight: Optional[float] = None) -> None:
        """Create the tenant row if needed; set its weight if given."""
        if not name:
            raise ValueError("tenant name must be non-empty")
        if weight is not None and weight <= 0:
            raise ValueError("tenant weight must be > 0")
        self._db.execute(
            "INSERT OR IGNORE INTO tenants (name) VALUES (?)", (name,))
        if weight is not None:
            self._db.execute(
                "UPDATE tenants SET weight = ? WHERE name = ?",
                (float(weight), name))
        self._db.commit()

    def tenants(self) -> List[Dict[str, Any]]:
        rows = self._db.execute(
            "SELECT * FROM tenants ORDER BY name").fetchall()
        return [dict(row) for row in rows]

    # -- submit / read ---------------------------------------------------
    def submit(self, tenant: str, campaign: str, n_scenarios: int,
               priority: int = 0, job_id: Optional[str] = None) -> Job:
        job_id = job_id or uuid.uuid4().hex[:12]
        self.ensure_tenant(tenant)
        now = time.time()
        # Idle-tenant clamp: returning after a quiet spell must not grant
        # unbounded back-service (its vtime would be far below everyone
        # else's — it would monopolise the fleet until "caught up").
        row = self._db.execute(
            "SELECT MIN(t.vtime) AS lo FROM tenants t WHERE EXISTS ("
            "  SELECT 1 FROM jobs j WHERE j.tenant = t.name"
            "  AND j.state IN (?, ?, ?))",
            (STATE_QUEUED, STATE_STAGING, STATE_RUNNING)).fetchone()
        if row["lo"] is not None:
            self._db.execute(
                "UPDATE tenants SET vtime = MAX(vtime, ?) WHERE name = ?",
                (row["lo"], tenant))
        self._db.execute(
            "INSERT INTO jobs (id, tenant, priority, state, campaign,"
            " n_scenarios, submitted_at) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (job_id, tenant, int(priority), STATE_QUEUED, campaign,
             int(n_scenarios), now))
        self._db.execute(
            "UPDATE tenants SET jobs_submitted = jobs_submitted + 1 "
            "WHERE name = ?", (tenant,))
        self._db.commit()
        return self.get(job_id)

    def get(self, job_id: str) -> Job:
        row = self._db.execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)).fetchone()
        if row is None:
            raise KeyError(f"unknown job {job_id!r}")
        return _row_to_job(row)

    def list_jobs(self, tenant: Optional[str] = None,
                  state: Optional[str] = None) -> List[Job]:
        query = "SELECT * FROM jobs"
        clauses, args = [], []
        if tenant:
            clauses.append("tenant = ?")
            args.append(tenant)
        if state:
            clauses.append("state = ?")
            args.append(state)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY submitted_at ASC, rowid ASC"
        return [_row_to_job(r) for r in self._db.execute(query, args)]

    # -- lifecycle -------------------------------------------------------
    def set_state(self, job_id: str, state: str, *,
                  pid: Optional[int] = None,
                  error: Optional[str] = None,
                  resume: Optional[bool] = None,
                  metrics: Optional[Dict[str, Any]] = None) -> Job:
        """Transition a job, enforcing the lifecycle graph."""
        job = self.get(job_id)
        if state not in _TRANSITIONS:
            raise ValueError(f"unknown job state {state!r}")
        if state not in _TRANSITIONS[job.state]:
            raise ValueError(
                f"job {job_id}: illegal transition "
                f"{job.state} -> {state}")
        sets = ["state = ?"]
        args: List[Any] = [state]
        now = time.time()
        if state == STATE_RUNNING:
            sets.append("started_at = COALESCE(started_at, ?)")
            args.append(now)
        if state in TERMINAL_STATES:
            sets.append("finished_at = ?")
            args.append(now)
        if state == STATE_QUEUED:   # crash-recovery requeue
            sets.append("pid = NULL")
        if pid is not None:
            sets.append("pid = ?")
            args.append(int(pid))
        if error is not None:
            sets.append("error = ?")
            args.append(error)
        if resume is not None:
            sets.append("resume = ?")
            args.append(1 if resume else 0)
        if metrics is not None:
            sets.append("metrics = ?")
            args.append(json.dumps(metrics, sort_keys=True))
        args.append(job_id)
        self._db.execute(
            f"UPDATE jobs SET {', '.join(sets)} WHERE id = ?", args)
        self._db.commit()
        return self.get(job_id)

    def request_cancel(self, job_id: str) -> Job:
        """Cancel a job.  QUEUED cancels immediately; STAGING/RUNNING is
        flagged for the supervisor to drain; terminal states refuse."""
        job = self.get(job_id)
        if job.terminal:
            raise ValueError(
                f"job {job_id} is already {job.state}; nothing to cancel")
        if job.state == STATE_QUEUED:
            return self.set_state(job_id, STATE_CANCELLED,
                                  error="cancelled while queued")
        self._db.execute(
            "UPDATE jobs SET cancel_requested = 1 WHERE id = ?", (job_id,))
        self._db.commit()
        return self.get(job_id)

    # -- fair-share claim ------------------------------------------------
    def claim_next(self) -> Optional[Job]:
        """The next job to run, or None: smallest tenant ``vtime`` first,
        then highest priority, then submit order.  The claim itself is
        the QUEUED → STAGING transition."""
        row = self._db.execute(
            "SELECT j.id FROM jobs j JOIN tenants t ON j.tenant = t.name"
            " WHERE j.state = ?"
            " ORDER BY t.vtime ASC, t.name ASC, j.priority DESC,"
            " j.submitted_at ASC, j.rowid ASC LIMIT 1",
            (STATE_QUEUED,)).fetchone()
        if row is None:
            return None
        return self.set_state(row["id"], STATE_STAGING)

    def charge(self, tenant: str, busy_seconds: float, *,
               result_hits: int = 0, result_misses: int = 0,
               stage_hits: int = 0, stage_misses: int = 0,
               evictions: int = 0, finished: bool = False) -> None:
        """Fold one job's service + cache economics into its tenant:
        ``vtime`` advances by ``busy_seconds / weight`` (the fair-share
        meter), the counters are the per-tenant hit/miss/eviction story
        the metrics endpoint reports."""
        self.ensure_tenant(tenant)
        self._db.execute(
            "UPDATE tenants SET"
            " vtime = vtime + ? / weight,"
            " busy_seconds = busy_seconds + ?,"
            " jobs_finished = jobs_finished + ?,"
            " result_hits = result_hits + ?,"
            " result_misses = result_misses + ?,"
            " stage_hits = stage_hits + ?,"
            " stage_misses = stage_misses + ?,"
            " evictions_triggered = evictions_triggered + ?"
            " WHERE name = ?",
            (max(0.0, busy_seconds), max(0.0, busy_seconds),
             1 if finished else 0, result_hits, result_misses,
             stage_hits, stage_misses, evictions, tenant))
        self._db.commit()

    # -- crash recovery --------------------------------------------------
    def unfinished_jobs(self) -> List[Job]:
        """Jobs a previous server left in STAGING/RUNNING."""
        return [job for state in (STATE_STAGING, STATE_RUNNING)
                for job in self.list_jobs(state=state)]

    def counters_doc(self) -> Dict[str, Any]:
        states = {state: 0 for state in _TRANSITIONS}
        for row in self._db.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"):
            states[row["state"]] = row["n"]
        return {"jobs_by_state": states, "tenants": self.tenants()}

    # =====================================================================
    # Work units: scenario-shard leases for distributed execution
    # =====================================================================
    def create_unit(self, job_id: str, seq: int, name: str,
                    scenario: Dict[str, Any], *, cache_key: str = "",
                    digests: Iterable[str] = (), max_attempts: int = 3,
                    backoff_s: float = 0.5,
                    retry_history: Optional[List[Dict[str, Any]]] = None,
                    ) -> WorkUnit:
        unit_id = uuid.uuid4().hex[:12]
        self._db.execute(
            "INSERT INTO units (id, job_id, seq, name, scenario, cache_key,"
            " digests, state, max_attempts, backoff_s, retry_history,"
            " created_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (unit_id, job_id, int(seq), name,
             json.dumps(scenario, sort_keys=True), cache_key,
             json.dumps(sorted(digests)), UNIT_PENDING,
             max(1, int(max_attempts)), float(backoff_s),
             json.dumps(retry_history or []), time.time()))
        self._db.commit()
        return self.get_unit(unit_id)

    def get_unit(self, unit_id: str) -> WorkUnit:
        row = self._db.execute(
            "SELECT * FROM units WHERE id = ?", (unit_id,)).fetchone()
        if row is None:
            raise KeyError(f"unknown unit {unit_id!r}")
        return _row_to_unit(row)

    def units_for_job(self, job_id: str) -> List[WorkUnit]:
        return [_row_to_unit(r) for r in self._db.execute(
            "SELECT * FROM units WHERE job_id = ? ORDER BY seq ASC",
            (job_id,))]

    def list_units(self, state: Optional[str] = None) -> List[WorkUnit]:
        if state:
            rows = self._db.execute(
                "SELECT * FROM units WHERE state = ?"
                " ORDER BY created_at ASC, rowid ASC", (state,))
        else:
            rows = self._db.execute(
                "SELECT * FROM units ORDER BY created_at ASC, rowid ASC")
        return [_row_to_unit(r) for r in rows]

    def _update_unit(self, unit: WorkUnit, **cols: Any) -> None:
        sets, args = [], []
        for col, value in cols.items():
            sets.append(f"{col} = ?")
            if col in ("leases", "retry_history", "digests"):
                value = json.dumps(value)
            args.append(value)
        args.append(unit.id)
        self._db.execute(
            f"UPDATE units SET {', '.join(sets)} WHERE id = ?", args)
        self._db.commit()

    # -- lease lifecycle -------------------------------------------------
    def lease_unit(self, worker: str, lease_s: float,
                   now: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """Grant the next unit to ``worker`` under a fresh lease.

        PENDING units go first (oldest job, then shard order); when none
        is ready, a straggling LEASED unit marked ``speculative_eligible``
        may be re-leased to a *different* worker (one extra copy at most —
        first result wins).  Returns ``{"unit", "token", "deadline",
        "speculative"}`` or None when there is nothing to hand out.
        """
        now = time.time() if now is None else now
        self.worker_seen(worker, now)
        row = self._db.execute(
            "SELECT u.id FROM units u JOIN jobs j ON u.job_id = j.id"
            " WHERE u.state = ? AND u.ready_at <= ?"
            " ORDER BY j.submitted_at ASC, u.seq ASC, u.rowid ASC LIMIT 1",
            (UNIT_PENDING, now)).fetchone()
        speculative = False
        unit: Optional[WorkUnit] = None
        if row is not None:
            unit = self.get_unit(row["id"])
        else:
            for cand in self._db.execute(
                    "SELECT * FROM units WHERE state = ?"
                    " AND speculative_eligible = 1"
                    " ORDER BY started_at ASC, rowid ASC", (UNIT_LEASED,)):
                candidate = _row_to_unit(cand)
                if (len(candidate.leases) == 1
                        and candidate.leases[0]["worker"] != worker):
                    unit, speculative = candidate, True
                    break
            if unit is None:
                return None
        token = uuid.uuid4().hex
        attempt = unit.attempts + 1
        lease = {"worker": worker, "token": token, "attempt": attempt,
                 "granted_at": now, "deadline": now + float(lease_s),
                 "speculative": speculative}
        self._update_unit(
            unit, state=UNIT_LEASED, attempts=attempt,
            leases=unit.leases + [lease],
            started_at=unit.started_at if unit.started_at is not None
            else now,
            speculative_eligible=0)
        self.incr_counter("leases_granted")
        if speculative:
            self.incr_counter("speculative_leases")
        fresh = self.get_unit(unit.id)
        return {"unit": fresh, "token": token,
                "deadline": lease["deadline"], "speculative": speculative}

    def _find_lease(self, unit: WorkUnit, worker: str,
                    token: str) -> Optional[Dict[str, Any]]:
        if unit.state != UNIT_LEASED:
            return None
        for lease in unit.leases:
            if lease["worker"] == worker and lease["token"] == token:
                return lease
        return None

    def heartbeat_unit(self, unit_id: str, worker: str, token: str,
                       lease_s: float,
                       now: Optional[float] = None) -> float:
        """Renew a lease; raises :class:`LeaseLostError` if superseded."""
        now = time.time() if now is None else now
        unit = self.get_unit(unit_id)
        self.worker_seen(worker, now)
        lease = self._find_lease(unit, worker, token)
        if lease is None:
            self.incr_counter("late_heartbeats_rejected")
            raise LeaseLostError(
                f"unit {unit_id}: no active lease held by {worker!r}"
                f" (unit is {unit.state})")
        lease["deadline"] = now + float(lease_s)
        self._update_unit(unit, leases=unit.leases)
        return lease["deadline"]

    def complete_unit(self, unit_id: str, worker: str, token: str, *,
                      duration: Optional[float] = None,
                      now: Optional[float] = None) -> Dict[str, Any]:
        """First result wins: the valid lease-holder lands DONE; a result
        from a superseded lease raises :class:`LeaseLostError` and is
        counted ``late_results_discarded``."""
        now = time.time() if now is None else now
        unit = self.get_unit(unit_id)
        self.worker_seen(worker, now)
        lease = self._find_lease(unit, worker, token)
        if lease is None:
            self.incr_counter("late_results_discarded")
            raise LeaseLostError(
                f"unit {unit_id}: result from superseded lease of"
                f" {worker!r} discarded (unit is {unit.state})")
        superseded = [l for l in unit.leases if l["token"] != token]
        self._update_unit(
            unit, state=UNIT_DONE, leases=[], winner=worker,
            finished_at=now, duration=duration, error="",
            speculative_eligible=0)
        self._db.execute(
            "UPDATE workers SET units_done = units_done + 1"
            " WHERE name = ?", (worker,))
        self._db.commit()
        if lease.get("speculative") or superseded:
            # A race was on (this lease was the extra copy, or an extra
            # copy is still running) — the winner decides it.
            self.incr_counter("speculative_wins")
        return {"unit": self.get_unit(unit_id), "lease": lease,
                "superseded": superseded}

    def fail_unit(self, unit_id: str, worker: str, token: str, *,
                  error: str, status: str = "error",
                  now: Optional[float] = None) -> WorkUnit:
        """A worker reports an attempt failed: drop its lease, requeue
        with exponential backoff, or quarantine after ``max_attempts``."""
        now = time.time() if now is None else now
        unit = self.get_unit(unit_id)
        self.worker_seen(worker, now)
        lease = self._find_lease(unit, worker, token)
        if lease is None:
            raise LeaseLostError(
                f"unit {unit_id}: failure report from superseded lease"
                f" of {worker!r} ignored (unit is {unit.state})")
        remaining = [l for l in unit.leases if l["token"] != token]
        backoff = unit.backoff_s * (2 ** max(0, unit.attempts - 1))
        entry = {"attempt": lease["attempt"], "status": status,
                 "worker": worker, "message": str(error)[:1000],
                 "backoff_s": round(backoff, 6)}
        if lease.get("speculative"):
            entry["speculative"] = True
        history = unit.retry_history + [entry]
        self._db.execute(
            "UPDATE workers SET units_failed = units_failed + 1"
            " WHERE name = ?", (worker,))
        if remaining:
            # The other (speculative) copy is still running; let it race.
            self._update_unit(unit, leases=remaining,
                              retry_history=history)
        elif unit.attempts >= unit.max_attempts:
            self._quarantine(unit, history, error, now)
        else:
            self._update_unit(
                unit, state=UNIT_PENDING, leases=[],
                retry_history=history, ready_at=now + backoff,
                speculative_eligible=0)
            self.incr_counter("units_requeued")
        return self.get_unit(unit_id)

    def _quarantine(self, unit: WorkUnit, history: List[Dict[str, Any]],
                    error: str, now: float) -> None:
        self._update_unit(
            unit, state=UNIT_QUARANTINED, leases=[],
            retry_history=history, error=str(error)[:2000],
            finished_at=now, speculative_eligible=0)
        self.incr_counter("units_quarantined")

    def expire_leases(self, now: Optional[float] = None, *,
                      resumed: bool = False) -> List[Dict[str, Any]]:
        """Drop every lease past its deadline; requeue or quarantine
        units left leaseless.  Idempotent: a second sweep at the same
        ``now`` finds nothing.  ``resumed`` tags the history entries
        (crash-recovery sweep after a server restart)."""
        now = time.time() if now is None else now
        events: List[Dict[str, Any]] = []
        for row in self._db.execute(
                "SELECT * FROM units WHERE state = ?", (UNIT_LEASED,)):
            unit = _row_to_unit(row)
            keep = [l for l in unit.leases if l["deadline"] > now]
            dropped = [l for l in unit.leases if l["deadline"] <= now]
            if not dropped:
                continue
            history = list(unit.retry_history)
            for lease in dropped:
                entry = {"attempt": lease["attempt"],
                         "status": "lease_expired",
                         "worker": lease["worker"], "backoff_s": 0.0}
                if lease.get("speculative"):
                    entry["speculative"] = True
                if resumed:
                    entry["resumed"] = True
                history.append(entry)
                self.incr_counter("leases_expired")
                events.append({
                    "unit": unit.id, "job_id": unit.job_id,
                    "name": unit.name, "worker": lease["worker"],
                    "attempt": lease["attempt"],
                    "requeued": not keep, "resumed": resumed})
            if keep:
                self._update_unit(unit, leases=keep, retry_history=history)
            elif unit.attempts >= unit.max_attempts:
                self._quarantine(
                    unit, history,
                    f"lease expired on final attempt {unit.attempts}"
                    f" (worker {dropped[-1]['worker']})", now)
            else:
                # Worker death is not the unit's fault: requeue with no
                # backoff so recovery is immediate.
                self._update_unit(
                    unit, state=UNIT_PENDING, leases=[],
                    retry_history=history, ready_at=now,
                    speculative_eligible=0)
                self.incr_counter("units_requeued")
        return events

    def mark_speculative_eligible(self, unit_id: str) -> None:
        self._db.execute(
            "UPDATE units SET speculative_eligible = 1"
            " WHERE id = ? AND state = ?", (unit_id, UNIT_LEASED))
        self._db.commit()

    def cancel_units(self, job_id: str,
                     now: Optional[float] = None) -> int:
        now = time.time() if now is None else now
        cur = self._db.execute(
            "UPDATE units SET state = ?, leases = '[]', finished_at = ?"
            " WHERE job_id = ? AND state IN (?, ?)",
            (UNIT_CANCELLED, now, job_id, UNIT_PENDING, UNIT_LEASED))
        self._db.commit()
        return cur.rowcount

    def unit_states_for_job(self, job_id: str) -> Dict[str, int]:
        states = {UNIT_PENDING: 0, UNIT_LEASED: 0, UNIT_DONE: 0,
                  UNIT_QUARANTINED: 0, UNIT_CANCELLED: 0}
        for row in self._db.execute(
                "SELECT state, COUNT(*) AS n FROM units WHERE job_id = ?"
                " GROUP BY state", (job_id,)):
            states[row["state"]] = row["n"]
        return states

    def done_unit_durations(self, tenant: str) -> List[float]:
        """Durations of this tenant's DONE units (straggler p95 input)."""
        return [row["duration"] for row in self._db.execute(
            "SELECT u.duration FROM units u JOIN jobs j ON u.job_id = j.id"
            " WHERE j.tenant = ? AND u.state = ? AND u.duration IS NOT NULL",
            (tenant, UNIT_DONE))]

    # -- worker registry -------------------------------------------------
    def register_worker(self, name: str,
                        info: Optional[Dict[str, Any]] = None,
                        now: Optional[float] = None) -> Dict[str, Any]:
        if not name:
            raise ValueError("worker name must be non-empty")
        now = time.time() if now is None else now
        self._db.execute(
            "INSERT INTO workers (name, registered_at, last_seen, info)"
            " VALUES (?, ?, ?, ?) ON CONFLICT(name) DO UPDATE SET"
            " last_seen = ?, info = ?",
            (name, now, now, json.dumps(info or {}, sort_keys=True),
             now, json.dumps(info or {}, sort_keys=True)))
        self._db.commit()
        return {"name": name, "registered_at": now}

    def worker_seen(self, name: str, now: Optional[float] = None) -> None:
        now = time.time() if now is None else now
        self._db.execute(
            "INSERT INTO workers (name, registered_at, last_seen)"
            " VALUES (?, ?, ?) ON CONFLICT(name) DO UPDATE SET"
            " last_seen = ?", (name, now, now, now))
        self._db.commit()

    def workers_doc(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        now = time.time() if now is None else now
        active: Dict[str, int] = {}
        for row in self._db.execute(
                "SELECT leases FROM units WHERE state = ?", (UNIT_LEASED,)):
            try:
                leases = json.loads(row["leases"])
            except ValueError:  # pragma: no cover - defensive
                leases = []
            for lease in leases:
                active[lease["worker"]] = active.get(lease["worker"], 0) + 1
        docs = []
        for row in self._db.execute(
                "SELECT * FROM workers ORDER BY name"):
            try:
                info = json.loads(row["info"]) if row["info"] else {}
            except ValueError:  # pragma: no cover - defensive
                info = {}
            docs.append({
                "name": row["name"],
                "registered_at": row["registered_at"],
                "last_seen": row["last_seen"],
                "last_seen_age_s": round(max(0.0, now - row["last_seen"]), 3),
                "active_leases": active.get(row["name"], 0),
                "units_done": row["units_done"],
                "units_failed": row["units_failed"],
                "info": info,
            })
        return docs

    # -- dispatch counters -----------------------------------------------
    _DISPATCH_COUNTERS = (
        "leases_granted", "leases_expired", "units_requeued",
        "speculative_leases", "speculative_wins", "units_quarantined",
        "late_heartbeats_rejected", "late_results_discarded",
        "bytes_shipped", "bytes_saved_by_cache", "dedup_mismatches",
    )

    def incr_counter(self, name: str, n: int = 1) -> None:
        self._db.execute(
            "INSERT INTO dcounters (name, value) VALUES (?, ?)"
            " ON CONFLICT(name) DO UPDATE SET value = value + ?",
            (name, int(n), int(n)))
        self._db.commit()

    def dispatch_counters(self) -> Dict[str, int]:
        counters = {name: 0 for name in self._DISPATCH_COUNTERS}
        for row in self._db.execute("SELECT name, value FROM dcounters"):
            counters[row["name"]] = row["value"]
        return counters

    def units_by_state_doc(self) -> Dict[str, int]:
        states = {UNIT_PENDING: 0, UNIT_LEASED: 0, UNIT_DONE: 0,
                  UNIT_QUARANTINED: 0, UNIT_CANCELLED: 0}
        for row in self._db.execute(
                "SELECT state, COUNT(*) AS n FROM units GROUP BY state"):
            states[row["state"]] = row["n"]
        return states
