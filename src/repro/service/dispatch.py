"""Server-side dispatch: fan a job out into leased work units.

In ``--dispatch workers`` mode the supervisor stops forking a local
runner per job.  Instead the :class:`Dispatcher` shards each claimed
campaign into per-scenario *work units* (:mod:`repro.service.queue`),
serves everything the shared result cache already knows, and hands the
rest to remote ``repro-worker`` processes over HTTP leases:

* **fan-out** — one unit per cache-missing scenario, created
  idempotently (a re-dispatched job keeps its DONE units and re-creates
  nothing);
* **straggler detection** — a unit running past
  ``straggler_factor × p95`` of the tenant's completed unit durations is
  marked speculative-eligible; the next idle worker runs a second copy
  and the first result wins;
* **deterministic dedup** — results are content-addressed, so two
  executions of the same unit must agree; when a result arrives for a
  cache key that already holds one, the deterministic projection of both
  payloads is compared and any mismatch is counted
  (``dedup_mismatches``) and logged rather than silently overwritten;
* **finalisation** — when every unit is terminal the dispatcher writes
  the campaign manifest (byte-compatible with a local
  ``run_campaign``), folds the job's economics into its tenant, and
  settles the job DONE / FAILED (quarantined units carry a structured
  failure record) / CANCELLED.

Everything durable lives in the queue DB and the job directory — the
dispatcher itself can be discarded and rebuilt from disk after a server
restart (see :meth:`Supervisor.recover`).
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Set

from ..campaign.cache import (
    CACHE_FORMAT_VERSION, canonical_json, scenario_cache_key,
)
from ..campaign.spec import CampaignSpec
from ..campaign.store import (
    STATUS_FAILED, STATUS_OK, STATUS_TIMEOUT, CampaignStore, RunRecord,
)
from .queue import (
    STATE_CANCELLED, STATE_DONE, STATE_FAILED, STATE_RUNNING,
    UNIT_CANCELLED, UNIT_DONE, UNIT_LEASED, UNIT_PENDING, UNIT_QUARANTINED,
    Job, LeaseLostError, WorkUnit,
)

__all__ = ["Dispatcher", "deterministic_projection",
           "DETERMINISTIC_RESULT_FIELDS"]

#: The result-payload fields that must be identical across re-executions
#: of the same cache key.  Wall-clock fields (``worker_wall_seconds``,
#: ``replay_wall_seconds``, measured ``actual_time``/``rel_error``) are
#: excluded — they measure the worker, not the experiment.
DETERMINISTIC_RESULT_FIELDS = (
    "simulated_time", "n_actions", "n_ranks", "calibration", "fault_report",
)


def deterministic_projection(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The replay-deterministic slice of a scenario result payload."""
    return {k: payload.get(k) for k in DETERMINISTIC_RESULT_FIELDS}


def _p95(values: List[float]) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


class Dispatcher:
    """Shards claimed jobs into work units and settles their results."""

    def __init__(self, supervisor: "Any", *,
                 straggler_factor: float = 3.0,
                 straggler_min_s: float = 10.0,
                 straggler_min_samples: int = 3) -> None:
        self.sup = supervisor
        self.queue = supervisor.queue
        self.store = supervisor.store
        self.straggler_factor = straggler_factor
        self.straggler_min_s = straggler_min_s
        self.straggler_min_samples = straggler_min_samples
        self._specs: Dict[str, CampaignSpec] = {}

    # -- helpers ---------------------------------------------------------
    def _spec(self, job_id: str) -> CampaignSpec:
        spec = self._specs.get(job_id)
        if spec is None:
            import json
            with open(os.path.join(self.sup.job_dir(job_id), "spec.json"),
                      encoding="utf-8") as handle:
                spec = CampaignSpec.from_dict(json.load(handle))
            self._specs[job_id] = spec
        return spec

    def _cstore(self, job_id: str) -> CampaignStore:
        return CampaignStore(self.sup.campaign_dir(job_id))

    def pinned_digests(self) -> Set[str]:
        """Trace digests referenced by any live (non-terminal) unit —
        pinned against eviction from lease grant through result ack, so
        a bounded store can never drop a tree a worker is fetching."""
        pins: Set[str] = set()
        for state in (UNIT_PENDING, UNIT_LEASED):
            for unit in self.queue.list_units(state):
                pins.update(unit.digests)
        return pins

    def has_units(self, job_id: str) -> bool:
        return bool(self.queue.units_for_job(job_id))

    # -- fan-out ---------------------------------------------------------
    def start_job(self, job: Job) -> None:
        """STAGING → RUNNING: serve cached scenarios, unit the rest.

        Idempotent: scenarios that already have a unit (a re-dispatched
        job after a server crash) are left exactly as they are.
        """
        from .supervisor import append_event

        spec = self._spec(job.id)
        cstore = self._cstore(job.id)
        events = self.sup.events_path(job.id)
        existing = {u.name for u in self.queue.units_for_job(job.id)}
        served = created = 0
        for seq, scenario in enumerate(spec.scenarios):
            if scenario.name in existing:
                continue
            key = scenario_cache_key(scenario)
            payload: Optional[Dict[str, Any]] = None
            source = ""
            prior_history: List[Dict[str, Any]] = []
            if job.resume:
                prior = cstore.read_run(scenario.name)
                if prior is not None and prior.cache_key == key:
                    prior_history = [
                        dict(entry, resumed=True)
                        if not entry.get("resumed") else dict(entry)
                        for entry in prior.retry_history
                    ]
                    if prior.ok:
                        payload, source = prior.result, "store"
            if payload is None:
                cached = self.store.get_result(key, tenant=job.tenant)
                if cached is not None and cached.get("status") == STATUS_OK:
                    payload, source = cached.get("result", {}), "cache"
            if payload is not None:
                record = RunRecord(
                    name=scenario.name, cache_key=key, status=STATUS_OK,
                    attempts=0, cache_hit=True, cache_source=source,
                    scenario=scenario.to_dict(), result=payload,
                    retry_history=prior_history,
                )
                cstore.write_run(record)
                append_event(
                    events, "scenario", job=job.id, name=scenario.name,
                    status=STATUS_OK, cache_hit=True, cache_source=source,
                    attempts=0,
                    simulated_time=payload.get("simulated_time"))
                served += 1
                continue
            digests = []
            if scenario.trace.kind == "dir":
                # Staged already (supervisor._stage): the path IS the
                # store tree, named by its content digest.
                digests = [os.path.basename(scenario.trace.path)]
            unit = self.queue.create_unit(
                job.id, seq, scenario.name, scenario.to_dict(),
                cache_key=key, digests=digests,
                max_attempts=max(3, scenario.max_retries + 1),
                backoff_s=spec.retry_backoff,
                retry_history=prior_history)
            append_event(events, "unit", job=job.id, unit=unit.id,
                         name=scenario.name, action="created")
            created += 1
        job = self.queue.set_state(job.id, STATE_RUNNING)
        append_event(events, "state", job=job.id, state=job.state,
                     dispatched=True, units_created=created,
                     scenarios_served=served)
        self.sup._emit(
            f"[service] job {job.id} dispatched: {created} unit(s), "
            f"{served} scenario(s) served from cache/store")
        self._maybe_finalize(job.id)

    # -- results from workers --------------------------------------------
    def on_result(self, unit_id: str, worker: str, token: str,
                  doc: Dict[str, Any]) -> Dict[str, Any]:
        """A worker reports a unit outcome.  Raises KeyError (404) for an
        unknown unit and :class:`LeaseLostError` (409) for a superseded
        lease — first result wins, late results are discarded."""
        from .supervisor import append_event

        unit = self.queue.get_unit(unit_id)
        job = self.queue.get(unit.job_id)
        events = self.sup.events_path(unit.job_id)
        status = doc.get("status", STATUS_OK)
        duration = float(doc.get("wall_seconds") or 0.0)

        if status != STATUS_OK:
            error = doc.get("error") or {}
            fail_status = STATUS_TIMEOUT if status == STATUS_TIMEOUT \
                else "error"
            unit = self.queue.fail_unit(
                unit_id, worker, token,
                error=f"{error.get('type', 'Error')}: "
                      f"{error.get('message', '')}",
                status=fail_status)
            append_event(
                events, "unit", job=unit.job_id, unit=unit.id,
                name=unit.name, action="attempt_failed", worker=worker,
                status=status, attempts=unit.attempts,
                unit_state=unit.state)
            if unit.state == UNIT_QUARANTINED:
                self._record_quarantine(job, unit, error)
            self._maybe_finalize(unit.job_id)
            return {"accepted": False, "unit_state": unit.state}

        payload = doc.get("result") or {}
        grant = self.queue.complete_unit(unit_id, worker, token,
                                         duration=duration)
        unit = grant["unit"]
        speculative_win = bool(grant["lease"].get("speculative")
                               or grant["superseded"])

        # Deterministic dedup: a duplicate execution of this cache key
        # (speculation, requeue-after-expiry) must agree byte-for-byte
        # on the deterministic projection.
        existing = self.store.results.get(unit.cache_key)
        if existing is not None and existing.get("status") == STATUS_OK:
            mine = canonical_json(deterministic_projection(payload))
            theirs = canonical_json(
                deterministic_projection(existing.get("result", {})))
            if mine != theirs:
                self.queue.incr_counter("dedup_mismatches")
                self.sup._emit(
                    f"[service] unit {unit.id} ({unit.name}): duplicate "
                    f"result DIVERGES from cached copy — replay is "
                    f"supposed to be deterministic; keeping the first")
        else:
            self.store.results.put(unit.cache_key, {
                "format": CACHE_FORMAT_VERSION,
                "status": STATUS_OK,
                "cache_key": unit.cache_key,
                "scenario_name": unit.name,
                "result": payload,
                "created_at": time.time(),
            })
            if self.store.max_bytes:
                self.store.evict(protect=self.sup.protected_digests())

        record = RunRecord(
            name=unit.name, cache_key=unit.cache_key, status=STATUS_OK,
            attempts=unit.attempts, cache_hit=False,
            wall_seconds=duration, scenario=unit.scenario,
            result=payload, retry_history=unit.retry_history,
        )
        self._cstore(unit.job_id).write_run(record)
        append_event(
            events, "scenario", job=unit.job_id, name=unit.name,
            status=STATUS_OK, cache_hit=False, cache_source="",
            attempts=unit.attempts, worker=worker,
            speculative_win=speculative_win,
            simulated_time=payload.get("simulated_time"))
        self._maybe_finalize(unit.job_id)
        return {"accepted": True, "unit_state": UNIT_DONE,
                "speculative_win": speculative_win}

    def _record_quarantine(self, job: Job, unit: WorkUnit,
                           error: Dict[str, Any]) -> None:
        """A poison unit gets a structured failure record, not a wedged
        campaign: the sweep continues and finalises around it."""
        record = RunRecord(
            name=unit.name, cache_key=unit.cache_key, status=STATUS_FAILED,
            attempts=unit.attempts, cache_hit=False,
            wall_seconds=unit.duration or 0.0, scenario=unit.scenario,
            error={
                "type": error.get("type") or "Quarantined",
                "message": (f"quarantined after {unit.attempts} attempt(s): "
                            f"{unit.error}"),
                "traceback": error.get("traceback", ""),
            },
            retry_history=unit.retry_history,
        )
        self._cstore(unit.job_id).write_run(record)
        from .supervisor import append_event
        append_event(
            self.sup.events_path(unit.job_id), "scenario", job=unit.job_id,
            name=unit.name, status=STATUS_FAILED, cache_hit=False,
            cache_source="", attempts=unit.attempts, quarantined=True,
            simulated_time=None)

    # -- periodic maintenance --------------------------------------------
    def tick(self, now: Optional[float] = None, *,
             resumed: bool = False) -> None:
        """Expire leases, mark stragglers, honour cancels, finalise."""
        from .supervisor import append_event

        now = time.time() if now is None else now
        touched: Set[str] = set()
        for event in self.queue.expire_leases(now, resumed=resumed):
            append_event(
                self.sup.events_path(event["job_id"]), "unit",
                job=event["job_id"], unit=event["unit"],
                name=event["name"], action="lease_expired",
                worker=event["worker"], attempt=event["attempt"],
                requeued=event["requeued"], resumed=resumed)
            touched.add(event["job_id"])

        # Straggler scan: a single-lease unit far past its tenant's p95
        # becomes eligible for one speculative copy.
        p95_cache: Dict[str, Optional[float]] = {}
        for unit in self.queue.list_units(UNIT_LEASED):
            if unit.speculative_eligible or len(unit.leases) != 1:
                continue
            lease = unit.leases[0]
            if lease.get("speculative"):
                continue
            job = self.queue.get(unit.job_id)
            if job.tenant not in p95_cache:
                durations = self.queue.done_unit_durations(job.tenant)
                p95_cache[job.tenant] = (
                    _p95(durations)
                    if len(durations) >= self.straggler_min_samples
                    else None)
            p95 = p95_cache[job.tenant]
            if p95 is None:
                continue
            threshold = max(self.straggler_min_s,
                            self.straggler_factor * p95)
            elapsed = now - lease["granted_at"]
            if elapsed > threshold:
                self.queue.mark_speculative_eligible(unit.id)
                append_event(
                    self.sup.events_path(unit.job_id), "unit",
                    job=unit.job_id, unit=unit.id, name=unit.name,
                    action="straggler", worker=lease["worker"],
                    elapsed_s=round(elapsed, 3),
                    threshold_s=round(threshold, 3))
                self.sup._emit(
                    f"[service] unit {unit.id} ({unit.name}) straggling "
                    f"on {lease['worker']} ({elapsed:.1f}s > "
                    f"{threshold:.1f}s): speculative copy armed")

        # Expiry may quarantine a unit without any worker report — give
        # it its failure record before finalising.
        for unit in self.queue.list_units(UNIT_QUARANTINED):
            if self._cstore(unit.job_id).read_run(unit.name) is None:
                self._record_quarantine(
                    self.queue.get(unit.job_id), unit,
                    {"type": "LeaseExpired"})
                touched.add(unit.job_id)

        for job in self.queue.list_jobs(state=STATE_RUNNING):
            if job.cancel_requested and self.has_units(job.id):
                dropped = self.queue.cancel_units(job.id)
                if dropped:
                    append_event(
                        self.sup.events_path(job.id), "unit", job=job.id,
                        action="cancelled", units_dropped=dropped)
                touched.add(job.id)
            elif self.has_units(job.id):
                touched.add(job.id)
        for job_id in touched:
            self._maybe_finalize(job_id)

    # -- finalisation ----------------------------------------------------
    def _maybe_finalize(self, job_id: str) -> None:
        from .supervisor import append_event

        job = self.queue.get(job_id)
        if job.state != STATE_RUNNING:
            return
        states = self.queue.unit_states_for_job(job_id)
        if states[UNIT_PENDING] or states[UNIT_LEASED]:
            return
        spec = self._spec(job_id)
        cstore = self._cstore(job_id)
        records = {r.name: r for r in cstore.read_runs()}
        units = self.queue.units_for_job(job_id)
        cancelled = [u for u in units if u.state == UNIT_CANCELLED]
        quarantined = [u for u in units if u.state == UNIT_QUARANTINED]
        missing = [s.name for s in spec.scenarios if s.name not in records]
        if missing and not cancelled:
            return      # records still landing (should not persist)

        ordered = [records[s.name] for s in spec.scenarios
                   if s.name in records]
        completed = sum(1 for r in ordered if r.ok)
        cached_hits = sum(1 for r in ordered if r.cache_hit)
        busy = sum(u.duration or 0.0 for u in units
                   if u.state == UNIT_DONE)
        metrics = {
            "scenarios_total": len(spec.scenarios),
            "completed": completed,
            "failed": sum(1 for r in ordered if not r.ok),
            "cached_hits": cached_hits,
            "cached_from_store": sum(1 for r in ordered
                                     if r.cache_source == "store"),
            "replays_executed": states[UNIT_DONE],
            "attempts": sum(u.attempts for u in units),
            "retries": sum(max(0, u.attempts - 1) for u in units),
            "timeouts": sum(
                1 for u in units for entry in u.retry_history
                if entry.get("status") == STATUS_TIMEOUT),
            "worker_busy_seconds": round(busy, 6),
            "wall_seconds": round(
                time.time() - (job.started_at or job.submitted_at), 6),
            "units": states,
            "workers": sorted({u.winner for u in units if u.winner}),
            "distributed": True,
        }
        extra = None
        if cancelled:
            state = STATE_CANCELLED
            error = (f"cancelled: {len(cancelled)} unit(s) dropped, "
                     f"{completed} scenario(s) recorded")
            extra = {"interrupted": True,
                     "unlaunched": sorted(u.name for u in cancelled)}
        elif quarantined:
            state = STATE_FAILED
            error = ("quarantined unit(s): " + ", ".join(
                f"{u.name} ({u.attempts} attempts)" for u in quarantined))
        else:
            state = STATE_DONE
            error = ""
        cstore.write_manifest(spec.to_dict(), metrics, ordered, extra=extra)
        job = self.queue.set_state(job_id, state, error=error,
                                   metrics=metrics)
        append_event(self.sup.events_path(job_id), "state", job=job_id,
                     state=job.state, error=error or None)
        self._specs.pop(job_id, None)
        self.sup.settle_dispatched(job, metrics)
        self.sup._emit(
            f"[service] job {job_id} -> {job.state}"
            f"{f' ({error})' if error else ''} "
            f"[{states[UNIT_DONE]} unit(s) executed, "
            f"{cached_hits} served from cache]")
