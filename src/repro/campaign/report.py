"""Rendering campaign results into the paper's comparison shapes.

Three consumers share this module:

* ``repro-campaign status`` / ``repro-campaign report`` — a human at a
  terminal looking at a campaign directory;
* the benchmark suite — :func:`render_accuracy_table` produces the
  Table-2/Fig-8-style fixed-width blocks that land in
  ``benchmarks/results/*.txt``;
* ``benchmarks/make_experiments_md.py`` — :func:`render_experiments_md`
  assembles EXPERIMENTS.md from those result blocks (the section loop
  used to live in the script; campaigns made it a library concern).
"""

from __future__ import annotations

import datetime
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .store import CampaignStore, RunRecord

__all__ = ["render_status", "render_report", "render_retry_summary",
           "render_accuracy_table", "render_experiments_md"]


def _fmt_time(value: Optional[float]) -> str:
    return f"{value:.1f}s" if isinstance(value, (int, float)) else "-"


def _fmt_err(value: Optional[float]) -> str:
    return f"{100 * value:+.1f}%" if isinstance(value, (int, float)) else "-"


# ----------------------------------------------------------------------
# Campaign-directory views (the CLI's status/report)
# ----------------------------------------------------------------------
def render_status(out_dir: str) -> str:
    """One line per scenario plus the campaign counters."""
    store = CampaignStore(out_dir)
    manifest = store.load_or_rebuild_manifest()
    records = store.read_runs()
    lines: List[str] = []
    if manifest is not None:
        name = manifest.get("campaign", "?")
        note = " (manifest rebuilt from run records)" \
            if manifest.get("rebuilt") else ""
        lines.append(f"campaign {name!r} in {out_dir}{note}")
    else:
        lines.append(f"campaign directory {out_dir} (no manifest yet)")
    if not records:
        lines.append("  no runs recorded")
        return "\n".join(lines)
    width = max(len(r.name) for r in records)
    for record in records:
        source = (f"cache:{record.cache_source}" if record.cache_hit
                  else f"ran x{record.attempts}")
        sim = record.result.get("simulated_time")
        detail = f"simulated {_fmt_time(sim)}" if record.ok else (
            (record.error or {}).get("message", ""))
        lines.append(f"  {record.name:<{width}}  {record.status:<7} "
                     f"{source:<12} {detail}")
    if manifest is not None and "metrics" in manifest:
        m = manifest["metrics"]
        lines.append(
            f"  -- {m.get('completed', 0)}/{m.get('scenarios_total', 0)} ok, "
            f"{m.get('cached_hits', 0)} cached, "
            f"{m.get('failed', 0)} failed, "
            f"{m.get('replays_executed', 0)} replays executed, "
            f"wall {m.get('wall_seconds', 0.0):.2f}s, "
            f"utilization {100 * m.get('worker_utilization', 0.0):.0f}%"
        )
    return "\n".join(lines)


def render_report(out_dir: str, title: str = "") -> str:
    """The comparison table over every successful run in a campaign."""
    store = CampaignStore(out_dir)
    manifest = store.load_or_rebuild_manifest()
    records = store.read_runs()
    if not title:
        name = (manifest or {}).get("campaign", os.path.basename(out_dir))
        title = f"campaign {name!r} - actual vs simulated"
    ok = [r for r in records if r.ok]
    failed = [r for r in records if not r.ok]
    lines = render_accuracy_table(ok, title)
    if failed:
        lines.append("")
        lines.append(f"{len(failed)} scenario(s) without a result:")
        for record in failed:
            message = (record.error or {}).get("message", "")
            lines.append(f"  {record.name}: {record.status} ({message})")
    lines.extend(render_retry_summary(records))
    return "\n".join(lines)


def render_retry_summary(records: Sequence[RunRecord]) -> List[str]:
    """Why attempts were re-executed: one line per failed attempt, drawn
    from each record's ``retry_history`` (empty when nothing retried)."""
    retried = [r for r in records if r.retry_history]
    if not retried:
        return []
    n_attempts = sum(len(r.retry_history) for r in retried)
    lines = ["", f"retries: {n_attempts} failed attempt(s) across "
                 f"{len(retried)} scenario(s):"]
    for record in retried:
        for entry in record.retry_history:
            cause = entry.get("error_type") or entry.get("status", "?")
            message = entry.get("message", "")
            backoff = entry.get("backoff_s", 0.0)
            tail = (f"; retried after {backoff:.2f}s" if backoff
                    else "; gave up")
            lines.append(f"  {record.name} attempt {entry.get('attempt')}: "
                         f"{entry.get('status')} [{cause}] {message}{tail}")
    return lines


# ----------------------------------------------------------------------
# Fixed-width result blocks (benchmarks/results/*.txt style)
# ----------------------------------------------------------------------
def render_accuracy_table(records: Sequence[RunRecord],
                          title: str,
                          notes: Sequence[str] = ()) -> List[str]:
    """Fig.-8-shaped block: one row per run, actual vs simulated columns.

    Returns the lines (callers either join them or hand them to the
    bench harness's ``emit_table``).  Runs without an actual time render
    ``-`` in the actual/error columns, so pure-replay campaigns produce
    a meaningful table too.
    """
    lines = [title]
    lines.extend(notes)
    lines.append("")
    width = max([len("inst.")] + [len(r.name) for r in records])
    lines.append(f"{'inst.':>{width}} {'actual':>10} {'simulated':>10} "
                 f"{'rel.err':>9} {'cache':>6}")
    for record in records:
        result = record.result
        lines.append(
            f"{record.name:>{width}} "
            f"{_fmt_time(result.get('actual_time')):>10} "
            f"{_fmt_time(result.get('simulated_time')):>10} "
            f"{_fmt_err(result.get('rel_error')):>9} "
            f"{'hit' if record.cache_hit else 'miss':>6}"
        )
    return lines


# ----------------------------------------------------------------------
# EXPERIMENTS.md assembly
# ----------------------------------------------------------------------
def render_experiments_md(
    sections: Sequence[Tuple[str, str, Sequence[str]]],
    results_dir: str,
    header: str,
    date: Optional[str] = None,
) -> Tuple[str, List[str]]:
    """Assemble the EXPERIMENTS.md body from recorded result blocks.

    ``sections`` is ``(title, commentary, [result files])``; files are
    read from ``results_dir`` and inlined verbatim inside code fences.
    Returns ``(document, missing file names)`` — missing files become a
    visible placeholder, never a silent omission.
    """
    parts = [header.format(
        date=date or datetime.date.today().isoformat())]
    missing: List[str] = []
    for title, commentary, files in sections:
        parts.append(f"\n## {title}\n")
        parts.append(commentary.strip() + "\n")
        for name in files:
            path = os.path.join(results_dir, name)
            if not os.path.exists(path):
                missing.append(name)
                parts.append(f"*(missing: run the bench that writes "
                             f"`{name}`)*\n")
                continue
            with open(path, "r", encoding="utf-8") as handle:
                body = handle.read().rstrip()
            parts.append("```")
            parts.append(body)
            parts.append("```\n")
    return "\n".join(parts), missing
