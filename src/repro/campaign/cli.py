"""``repro-campaign`` — run, inspect, and report experiment campaigns.

* ``repro-campaign run SPEC.json --out DIR [--jobs N] [--no-cache]
  [--resume]`` — execute a campaign spec (see
  :mod:`repro.campaign.spec`; ``base``/``vary`` grids supported).
* ``repro-campaign status DIR`` — per-scenario state of a campaign
  directory plus the fleet counters.
* ``repro-campaign report DIR [--output FILE]`` — the actual-vs-simulated
  comparison table over the recorded runs.

Against a running ``repro-service`` the same tool becomes the thin
client (see :mod:`repro.service`):

* ``repro-campaign submit SPEC.json --server URL [--tenant T]
  [--priority N] [--wait]`` — enqueue the campaign on the server.
* ``repro-campaign status --server URL [JOB] [--workers]`` — list jobs,
  show one, or show the worker fleet + dispatch counters.
* ``repro-campaign results JOB --server URL [--output FILE]`` — manifest
  plus run records of a finished job.
* ``repro-campaign cancel JOB --server URL`` — cancel (queued jobs die
  immediately; running jobs drain to a resumable manifest).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from .report import render_report, render_status
from .runner import run_campaign
from .spec import load_campaign_spec

__all__ = ["main_campaign"]


def _fmt_job_line(job: Dict[str, Any]) -> str:
    error = f"  {job['error']}" if job.get("error") else ""
    return (f"{job['id']}  {job['state']:<9}  tenant={job['tenant']}"
            f"  prio={job['priority']}  campaign={job['campaign']}"
            f"  scenarios={job['n_scenarios']}{error}")


def main_campaign(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Parallel experiment campaigns over the acquire/"
                    "calibrate/replay pipeline, with content-addressed "
                    "result caching.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="execute a campaign spec")
    run_p.add_argument("spec", help="campaign spec JSON file")
    run_p.add_argument("--out", required=True,
                       help="campaign directory (runs/, manifest.json, "
                            "cache/)")
    run_p.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: the spec's)")
    run_p.add_argument("--no-cache", action="store_true",
                       help="execute every scenario even when a cached "
                            "result exists (results are still cached)")
    run_p.add_argument("--resume", action="store_true",
                       help="also serve scenarios whose stored run record "
                            "already succeeded with the same cache key")
    run_p.add_argument("--cache-dir", default=None,
                       help="shared result cache location (default: "
                            "<out>/cache)")
    run_p.add_argument("--quiet", action="store_true",
                       help="suppress per-scenario progress lines")

    status_p = sub.add_parser("status", help="show a campaign directory, "
                                             "or jobs on a server")
    status_p.add_argument("out", nargs="?", default=None,
                          help="campaign directory (local mode) or job id "
                               "(with --server; omit to list all jobs)")
    status_p.add_argument("--server", default=None,
                          help="repro-service base URL")
    status_p.add_argument("--tenant", default=None,
                          help="with --server: only this tenant's jobs")
    status_p.add_argument("--workers", action="store_true",
                          help="with --server: show the worker fleet and "
                               "distributed-dispatch counters instead of "
                               "jobs")

    report_p = sub.add_parser("report", help="comparison table of a "
                                             "campaign's results")
    report_p.add_argument("out", help="campaign directory")
    report_p.add_argument("--output", default=None,
                          help="write the table here instead of stdout")

    submit_p = sub.add_parser("submit", help="submit a campaign spec to a "
                                             "repro-service server")
    submit_p.add_argument("spec", help="campaign spec JSON file")
    submit_p.add_argument("--server", required=True,
                          help="repro-service base URL, e.g. "
                               "http://127.0.0.1:8642")
    submit_p.add_argument("--tenant", default="default",
                          help="tenant to charge (default: 'default')")
    submit_p.add_argument("--priority", type=int, default=0,
                          help="higher runs earlier within the tenant")
    submit_p.add_argument("--wait", action="store_true",
                          help="poll until the job finishes, streaming "
                               "per-scenario events")
    submit_p.add_argument("--timeout", type=float, default=None,
                          help="with --wait: give up after this many "
                               "seconds")

    results_p = sub.add_parser("results", help="fetch a job's manifest and "
                                               "run records from a server")
    results_p.add_argument("job", help="job id")
    results_p.add_argument("--server", required=True,
                           help="repro-service base URL")
    results_p.add_argument("--output", default=None,
                           help="write the JSON document here instead of "
                                "stdout")

    cancel_p = sub.add_parser("cancel", help="cancel a job on a server")
    cancel_p.add_argument("job", help="job id")
    cancel_p.add_argument("--server", required=True,
                          help="repro-service base URL")

    args = parser.parse_args(argv)

    if args.command in ("submit", "results", "cancel") or (
            args.command == "status" and args.server):
        return _remote_command(args)

    if args.command == "run":
        try:
            spec = load_campaign_spec(args.spec)
        except (OSError, ValueError) as exc:
            print(f"bad campaign spec {args.spec!r}: {exc}", file=sys.stderr)
            return 2
        result = run_campaign(
            spec, args.out, jobs=args.jobs,
            use_cache=not args.no_cache, resume=args.resume,
            cache_dir=args.cache_dir,
            log=None if args.quiet else print,
        )
        metrics = result.metrics
        print(f"{metrics.completed}/{metrics.scenarios_total} scenarios ok "
              f"({metrics.cached_hits} cached, {metrics.failed} failed, "
              f"{metrics.replays_executed} replays executed) in "
              f"{metrics.wall_seconds:.2f}s")
        if not result.ok:
            print(f"failed: {', '.join(result.failed_names)}",
                  file=sys.stderr)
            return 1
        return 0

    if args.command == "status":
        if not args.out:
            print("status: need a campaign directory (or --server URL)",
                  file=sys.stderr)
            return 2
        print(render_status(args.out))
        return 0

    # report
    text = render_report(args.out)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _fleet_status(client: Any) -> int:
    """``status --server URL --workers``: fleet + dispatch counters."""
    workers = client.workers()
    if not workers:
        print("no workers registered")
    for worker in workers:
        age = worker.get("last_seen_age_s", 0.0)
        leases = worker.get("active_leases", [])
        busy = (f"leased: {', '.join(leases)}" if leases else "idle")
        print(f"{worker['name']}: {busy}  "
              f"done={worker.get('units_done', 0)} "
              f"failed={worker.get('units_failed', 0)}  "
              f"last seen {age:.1f}s ago")
    dispatch = client.metrics().get("dispatch", {})
    units = dispatch.get("units_by_state", {})
    if units:
        states = " ".join(f"{state}={count}"
                          for state, count in sorted(units.items()))
        print(f"units: {states}")
    counters = dispatch.get("counters", {})
    if counters:
        print("counters:")
        for name, value in sorted(counters.items()):
            print(f"  {name}: {value}")
    return 0


def _remote_command(args: argparse.Namespace) -> int:
    """submit/status/results/cancel against a repro-service server."""
    from ..service.client import ServiceClient, ServiceError

    client = ServiceClient(args.server)
    try:
        if args.command == "submit":
            try:
                with open(args.spec, "r", encoding="utf-8") as handle:
                    spec_doc = json.load(handle)
            except (OSError, ValueError) as exc:
                print(f"bad campaign spec {args.spec!r}: {exc}",
                      file=sys.stderr)
                return 2
            job = client.submit(spec_doc, tenant=args.tenant,
                                priority=args.priority)
            print(f"submitted job {job['id']} "
                  f"(campaign={job['campaign']}, tenant={job['tenant']}, "
                  f"{job['n_scenarios']} scenarios)")
            if not args.wait:
                return 0

            def _show(event: Dict[str, Any]) -> None:
                if event.get("event") == "scenario":
                    source = (" [" + event["cache_source"] + "]"
                              if event.get("cache_hit") else "")
                    print(f"  {event.get('name')}: "
                          f"{event.get('status')}{source}")

            try:
                doc = client.wait(job["id"], timeout_s=args.timeout,
                                  on_event=_show)
            except TimeoutError as exc:
                print(str(exc), file=sys.stderr)
                return 1
            print(f"job {doc['id']} {doc['state']}"
                  + (f": {doc['error']}" if doc.get("error") else ""))
            return 0 if doc["state"] == "DONE" else 1

        if args.command == "status":
            if getattr(args, "workers", False):
                return _fleet_status(client)
            if args.out:
                doc = client.job(args.out)
                print(_fmt_job_line(doc))
                progress = doc.get("progress")
                if progress:
                    print(f"  progress: {progress['scenarios_done']}/"
                          f"{progress['scenarios_total']} scenarios")
                return 0
            jobs = client.jobs(tenant=args.tenant)
            if not jobs:
                print("no jobs")
                return 0
            for job in jobs:
                print(_fmt_job_line(job))
            return 0

        if args.command == "results":
            doc = client.results(args.job)
            text = json.dumps(doc, indent=2, sort_keys=True)
            if args.output:
                with open(args.output, "w", encoding="utf-8") as handle:
                    handle.write(text + "\n")
                print(f"results written to {args.output}")
            else:
                print(text)
            return 0

        # cancel
        job = client.cancel(args.job)
        print(f"job {job['id']} -> {job['state']}"
              + ("" if job["state"] == "CANCELLED"
                 else " (cancel requested; running job will drain)"))
        return 0
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_campaign())
