"""``repro-campaign`` — run, inspect, and report experiment campaigns.

* ``repro-campaign run SPEC.json --out DIR [--jobs N] [--no-cache]
  [--resume]`` — execute a campaign spec (see
  :mod:`repro.campaign.spec`; ``base``/``vary`` grids supported).
* ``repro-campaign status DIR`` — per-scenario state of a campaign
  directory plus the fleet counters.
* ``repro-campaign report DIR [--output FILE]`` — the actual-vs-simulated
  comparison table over the recorded runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .report import render_report, render_status
from .runner import run_campaign
from .spec import load_campaign_spec

__all__ = ["main_campaign"]


def main_campaign(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Parallel experiment campaigns over the acquire/"
                    "calibrate/replay pipeline, with content-addressed "
                    "result caching.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="execute a campaign spec")
    run_p.add_argument("spec", help="campaign spec JSON file")
    run_p.add_argument("--out", required=True,
                       help="campaign directory (runs/, manifest.json, "
                            "cache/)")
    run_p.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: the spec's)")
    run_p.add_argument("--no-cache", action="store_true",
                       help="execute every scenario even when a cached "
                            "result exists (results are still cached)")
    run_p.add_argument("--resume", action="store_true",
                       help="also serve scenarios whose stored run record "
                            "already succeeded with the same cache key")
    run_p.add_argument("--cache-dir", default=None,
                       help="shared result cache location (default: "
                            "<out>/cache)")
    run_p.add_argument("--quiet", action="store_true",
                       help="suppress per-scenario progress lines")

    status_p = sub.add_parser("status", help="show a campaign directory")
    status_p.add_argument("out", help="campaign directory")

    report_p = sub.add_parser("report", help="comparison table of a "
                                             "campaign's results")
    report_p.add_argument("out", help="campaign directory")
    report_p.add_argument("--output", default=None,
                          help="write the table here instead of stdout")

    args = parser.parse_args(argv)

    if args.command == "run":
        try:
            spec = load_campaign_spec(args.spec)
        except (OSError, ValueError) as exc:
            print(f"bad campaign spec {args.spec!r}: {exc}", file=sys.stderr)
            return 2
        result = run_campaign(
            spec, args.out, jobs=args.jobs,
            use_cache=not args.no_cache, resume=args.resume,
            cache_dir=args.cache_dir,
            log=None if args.quiet else print,
        )
        metrics = result.metrics
        print(f"{metrics.completed}/{metrics.scenarios_total} scenarios ok "
              f"({metrics.cached_hits} cached, {metrics.failed} failed, "
              f"{metrics.replays_executed} replays executed) in "
              f"{metrics.wall_seconds:.2f}s")
        if not result.ok:
            print(f"failed: {', '.join(result.failed_names)}",
                  file=sys.stderr)
            return 1
        return 0

    if args.command == "status":
        print(render_status(args.out))
        return 0

    # report
    text = render_report(args.out)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_campaign())
