"""Campaign-level observability, in the :mod:`repro.simkernel.telemetry`
style: plain ``__slots__`` counter objects, incremented with cheap local
arithmetic by the runner's scheduling loop, rendered once into a
JSON-friendly document that lands in the campaign manifest (and is
printed by ``repro-campaign status``).

One :class:`CampaignMetrics` covers one ``run_campaign`` invocation:

* fleet outcomes — scenarios completed / failed / served from cache;
* execution effort — replays actually executed, attempts, retries,
  timeouts;
* worker economics — busy seconds vs. the ``workers x wall`` capacity,
  i.e. the utilization a sweep achieved (the number that says whether
  the fleet was starved by stragglers).
"""

from __future__ import annotations

from typing import Dict

__all__ = ["CampaignMetrics"]


class CampaignMetrics:
    """Counters for one campaign run."""

    __slots__ = ("workers", "scenarios_total", "completed", "failed",
                 "cached_hits", "cached_from_store", "replays_executed",
                 "attempts", "retries", "timeouts", "worker_busy_seconds",
                 "wall_seconds")

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self.reset()

    def reset(self) -> None:
        self.scenarios_total = 0
        self.completed = 0          # scenarios that ended with a result
        self.failed = 0             # scenarios that exhausted retries
        self.cached_hits = 0        # served without executing anything
        self.cached_from_store = 0  # of those, served by --resume's store
        self.replays_executed = 0   # worker processes launched
        self.attempts = 0           # attempts that returned (ok or error)
        self.retries = 0            # re-executions after a failed attempt
        self.timeouts = 0           # attempts terminated at timeout_s
        self.worker_busy_seconds = 0.0
        self.wall_seconds = 0.0

    @property
    def utilization(self) -> float:
        """Busy fraction of the fleet's ``workers x wall`` capacity."""
        capacity = self.workers * self.wall_seconds
        return self.worker_busy_seconds / capacity if capacity > 0 else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "workers": self.workers,
            "scenarios_total": self.scenarios_total,
            "completed": self.completed,
            "failed": self.failed,
            "cached_hits": self.cached_hits,
            "cached_from_store": self.cached_from_store,
            "replays_executed": self.replays_executed,
            "attempts": self.attempts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_busy_seconds": self.worker_busy_seconds,
            "wall_seconds": self.wall_seconds,
            "worker_utilization": self.utilization,
        }
