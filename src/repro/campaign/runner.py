"""Campaign execution: a managed fleet of replay workers.

``run_campaign`` turns a :class:`~repro.campaign.spec.CampaignSpec` into
results: each scenario becomes one worker *process* (the replay kernel is
pure Python — processes, not threads, are the unit of parallelism), at
most ``jobs`` of them alive at once, each bounded by the scenario's
``timeout_s`` and retried with exponential backoff up to its
``max_retries``.  A scenario that keeps failing is *recorded* — status,
last traceback — and the campaign moves on; one broken point never kills
a sweep (§6's tables want every cell that can be produced).

Before anything is launched, every scenario is looked up in the
content-addressed :class:`~repro.campaign.cache.ResultCache` (and, under
``--resume``, in the campaign's own run store): a hit is served without
spawning a worker, which is what makes re-running a dozens-of-scenarios
campaign after editing one platform file replay exactly the affected
scenarios.

The worker side, :func:`execute_scenario`, is an ordinary module-level
function over the (picklable) scenario dict, so it is also the unit a
different transport (a batch scheduler, a remote executor) would ship.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import tempfile
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field, replace as dc_replace
from multiprocessing.connection import wait as conn_wait
from typing import Callable, Dict, List, Optional

from .cache import CACHE_FORMAT_VERSION, ResultCache, scenario_cache_key
from .spec import CampaignSpec, PlatformSpec, Scenario
from .store import (
    STATUS_FAILED, STATUS_OK, STATUS_TIMEOUT, CampaignStore, RunRecord,
)
from .telemetry import CampaignMetrics

__all__ = ["execute_scenario", "run_campaign", "CampaignResult"]

# fork keeps worker start-up at O(page tables) and inherits the parent's
# imports; spawn (macOS/Windows) re-imports this module, which works but
# costs an interpreter start per attempt.
_START_METHOD = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                 else "spawn")


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _build_named_platform(pspec: PlatformSpec, ground_truth: bool,
                          speed: Optional[float] = None):
    from ..platforms import bordereau, gdx, grid5000

    factories = {"bordereau": bordereau, "gdx": gdx, "grid5000": grid5000}
    try:
        factory = factories[pspec.name]
    except KeyError:
        raise ValueError(
            f"unknown platform {pspec.name!r}; choose from "
            f"{sorted(factories)}"
        ) from None
    kwargs = {"ground_truth": ground_truth, "cores": pspec.cores}
    if pspec.name == "grid5000":
        if pspec.hosts:
            kwargs.update(n_bordereau=pspec.hosts, n_gdx=pspec.hosts)
    else:
        if pspec.hosts:
            kwargs["n_hosts"] = pspec.hosts
        if speed is not None:
            kwargs["speed"] = speed
    return factory(**kwargs)


def _replay_platform(scenario: Scenario, speed: Optional[float]):
    if scenario.platform.kind == "xml":
        from ..simkernel import load_platform
        # XML platforms carry their own rates; a calibration speed would
        # silently contradict the file, so it is not applied here.
        return load_platform(scenario.platform.xml_path)
    return _build_named_platform(scenario.platform, ground_truth=False,
                                 speed=speed)


def _rank_program(app: str, cls: str, ranks: int, itmax_cap: int = 0):
    from ..apps import CgWorkload, LuWorkload, MgWorkload, ring_program
    if app == "lu":
        config = cls
        if itmax_cap > 0:
            from ..apps.classes import lu_class
            config = dc_replace(lu_class(cls), itmax=itmax_cap,
                                inorm=itmax_cap)
        return LuWorkload(config, ranks).program
    if app == "cg":
        return CgWorkload(cls, ranks).program
    if app == "mg":
        return MgWorkload(cls, ranks).program
    if app == "ring":
        return ring_program
    raise ValueError(f"unknown app {app!r}")


def _resolve_calibration(scenario: Scenario):
    """-> (speed or None, comm model, info dict for the record)."""
    from ..simkernel.pwl import DEFAULT_MPI_MODEL, PiecewiseLinearModel, Segment

    calib = scenario.calibration
    if calib.kind == "nominal":
        return None, DEFAULT_MPI_MODEL, {"kind": "nominal"}
    if calib.kind == "fixed":
        model = DEFAULT_MPI_MODEL
        if calib.segments:
            model = PiecewiseLinearModel([
                Segment(lower, upper, lat, bw)
                for lower, upper, lat, bw in calib.segments
            ])
        speed = calib.speed if calib.speed > 0 else None
        return speed, model, {"kind": "fixed", "speed": calib.speed}
    # auto: the §5 procedure, run by this worker on the scenario's
    # ground-truth platform.  Deterministic per calib_seed.
    from ..core.calibration import calibrate_flop_rate, calibrate_network
    from ..smpi import round_robin_deployment

    if scenario.platform.kind != "named":
        raise ValueError(
            "calibration kind 'auto' needs a named (catalog) platform — "
            "XML platforms have no ground-truth flavour to calibrate on"
        )
    ground = _build_named_platform(scenario.platform, ground_truth=True)
    deployment = round_robin_deployment(ground, calib.calib_ranks)
    program = _rank_program(calib.calib_app, calib.calib_cls,
                            calib.calib_ranks)
    flops = calibrate_flop_rate(ground, deployment, program,
                                runs=calib.runs, jitter=calib.calib_jitter,
                                seed=calib.calib_seed)
    network = calibrate_network(ground, deployment[:2])
    info = {"kind": "auto", "speed": flops.rate,
            "spread": flops.spread, "latency": network.latency}
    return flops.rate, network.model, info


def _strip_metrics(metrics: Optional[dict]) -> Optional[dict]:
    """Telemetry sans the per-rank section (O(ranks) of JSON the campaign
    record does not need; ``repro-replay --metrics`` serves that)."""
    if metrics is None:
        return None
    return {k: v for k, v in metrics.items() if k != "per_rank"}


def execute_scenario(sdict: dict) -> dict:
    """Run one scenario to completion in this process; returns the JSON
    record payload.  Raises on failure — the caller (worker wrapper or a
    direct in-process invocation) owns the failure policy."""
    from ..core.replay import TraceReplayer
    from ..smpi import round_robin_deployment

    scenario = Scenario.from_dict(sdict)
    trace = scenario.trace
    t0 = time.perf_counter()

    if trace.stage_wait_s > 0:
        # Staging from an external resource (batch queue, remote FS).
        time.sleep(trace.stage_wait_s)

    # -- runner-exercise fixtures ---------------------------------------
    if trace.kind == "sleep":
        time.sleep(trace.seconds)
        return {"simulated_time": trace.seconds, "actual_time": None,
                "rel_error": None, "n_actions": 0, "n_ranks": scenario.ranks,
                "replay_wall_seconds": 0.0, "stage_wait_s": trace.stage_wait_s,
                "worker_wall_seconds": time.perf_counter() - t0,
                "calibration": {"kind": "fixture"}, "metrics": None}
    if trace.kind == "fail":
        seen = 0
        if trace.state_path and os.path.exists(trace.state_path):
            with open(trace.state_path) as handle:
                seen = int(handle.read().strip() or 0)
        if trace.state_path:
            with open(trace.state_path, "w") as handle:
                handle.write(str(seen + 1))
        if seen < trace.fail_times:
            raise RuntimeError(
                f"injected failure {seen + 1}/{trace.fail_times}"
            )
        return {"simulated_time": 0.0, "actual_time": None,
                "rel_error": None, "n_actions": 0, "n_ranks": scenario.ranks,
                "replay_wall_seconds": 0.0, "stage_wait_s": trace.stage_wait_s,
                "worker_wall_seconds": time.perf_counter() - t0,
                "calibration": {"kind": "fixture"}, "metrics": None}

    speed, comm_model, calib_info = _resolve_calibration(scenario)
    fault_plan = None
    fault_mode = "abort"
    if scenario.faults is not None:
        fault_plan = scenario.faults.load_plan()
        fault_mode = scenario.faults.mode

    def replay(source, platform):
        replayer = TraceReplayer(
            platform,
            round_robin_deployment(platform, scenario.ranks),
            comm_model=comm_model,
            eager_threshold=scenario.replay.eager_threshold,
            collective_algorithm=scenario.replay.collectives,
            collect_metrics=scenario.replay.collect_metrics,
            lmm_mode=scenario.replay.lmm_mode,
            fault_plan=fault_plan,
            fault_mode=fault_mode,
            compiled=scenario.replay.compiled,
            batch_phases=scenario.replay.batch_phases,
            shards=scenario.replay.shards,
            shard_halo=scenario.replay.shard_halo,
        )
        return replayer.replay(source)

    actual_time: Optional[float] = None
    if trace.kind == "synth":
        platform = _replay_platform(scenario, speed)
        with tempfile.TemporaryDirectory(prefix="repro-campaign-") as tdir:
            if trace.family == "lu":
                from ..core.synth import write_synthetic_lu_trace
                write_synthetic_lu_trace(
                    tdir, scenario.ranks, trace.iterations, cls=trace.cls,
                    inorm=trace.inorm, seed=trace.seed, jitter=trace.jitter,
                    compute_split=trace.compute_split,
                )
            else:
                from ..core.synth_ai import write_synthetic_ai_trace
                write_synthetic_ai_trace(
                    trace.family, tdir, scenario.ranks, trace.iterations,
                    seed=trace.seed, jitter=trace.jitter,
                    **trace.generator_params(),
                )
            result = replay(tdir, platform)
    elif trace.kind == "dir":
        platform = _replay_platform(scenario, speed)
        result = replay(trace.path, platform)
    elif trace.kind == "acquire":
        from ..core.acquisition import AcquisitionMode, acquire
        if scenario.platform.kind != "named":
            raise ValueError(
                "trace kind 'acquire' needs a named (catalog) platform "
                "with a ground-truth flavour"
            )
        ground = _build_named_platform(scenario.platform, ground_truth=True)
        program = _rank_program(trace.app, trace.cls, scenario.ranks,
                                itmax_cap=trace.itmax_cap)
        with tempfile.TemporaryDirectory(prefix="repro-campaign-") as tdir:
            acq = acquire(
                program, ground, scenario.ranks,
                mode=AcquisitionMode.parse(trace.mode), workdir=tdir,
                papi_jitter=trace.papi_jitter, papi_seed=trace.papi_seed,
                measure_application=scenario.measure_actual,
            )
            platform = _replay_platform(scenario, speed)
            result = replay(acq.trace_dir, platform)
        actual_time = acq.application_time
    else:  # pragma: no cover - TraceSpec.__post_init__ guards kinds
        raise ValueError(f"unsupported trace kind {trace.kind!r}")

    rel_error = None
    if actual_time:
        rel_error = (result.simulated_time - actual_time) / actual_time
    return {
        "simulated_time": result.simulated_time,
        "actual_time": actual_time,
        "rel_error": rel_error,
        "n_actions": result.n_actions,
        "n_ranks": result.n_ranks,
        "replay_wall_seconds": result.wall_seconds,
        "stage_wait_s": trace.stage_wait_s,
        "worker_wall_seconds": time.perf_counter() - t0,
        "calibration": calib_info,
        "metrics": _strip_metrics(result.metrics),
        "fault_report": (result.fault_report.to_dict()
                         if result.fault_report is not None else None),
    }


def _scenario_worker(conn, sdict: dict) -> None:
    """Process entry point: run, report through the pipe, exit."""
    try:
        payload = execute_scenario(sdict)
        conn.send(("ok", payload))
    except BaseException as exc:  # noqa: BLE001 - the report IS the point
        conn.send(("error", {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
        }))
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Scheduler side
# ----------------------------------------------------------------------
@dataclass
class _Job:
    scenario: Scenario
    key: str
    attempt: int = 0          # completed attempts so far
    ready_at: float = 0.0     # monotonic instant the job may launch
    #: Why each failed attempt failed: {attempt, status, error_type,
    #: message, backoff_s}.  Lands on the RunRecord as retry_history.
    history: List[dict] = field(default_factory=list)


@dataclass
class _Live:
    job: _Job
    process: multiprocessing.Process
    conn: object
    started: float
    deadline: float


@dataclass
class CampaignResult:
    """What ``run_campaign`` hands back (everything is also on disk)."""

    out_dir: str
    records: Dict[str, RunRecord] = field(default_factory=dict)
    metrics: Optional[CampaignMetrics] = None
    #: True when a SIGTERM drained the campaign early: in-flight
    #: scenarios were finished and recorded, the rest never launched.
    #: The manifest then carries ``interrupted: true`` and the campaign
    #: is resumable (``--resume`` re-runs exactly the missing records).
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.records.values())

    @property
    def failed_names(self) -> List[str]:
        return [name for name, r in self.records.items() if not r.ok]


def run_campaign(
    spec: CampaignSpec,
    out_dir: str,
    jobs: Optional[int] = None,
    use_cache: bool = True,
    resume: bool = False,
    cache_dir: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
    on_record: Optional[Callable[[RunRecord], None]] = None,
) -> CampaignResult:
    """Execute a campaign: cache lookups, then the bounded worker fleet.

    ``out_dir`` receives ``runs/`` + ``manifest.json`` (+ the cache,
    unless ``cache_dir`` points elsewhere).  ``resume`` additionally
    serves scenarios whose stored run record already succeeded with the
    same cache key.  ``use_cache=False`` forces every scenario to
    execute (records are still written to the cache for next time).

    ``on_record`` is called with every finalised :class:`RunRecord` the
    moment it is stored — cache-served and executed alike — which is how
    a supervisor (the replay service) streams per-scenario completion
    events to polling clients without waiting for the campaign to end.

    **Graceful shutdown**: when the calling thread is the main thread, a
    ``SIGTERM`` received mid-campaign drains the fleet instead of
    killing it — nothing new launches, in-flight scenarios run to their
    natural end (timeouts still enforced) and are recorded, and the
    manifest is written with ``interrupted: true`` plus the names never
    launched.  A later ``--resume`` run re-executes exactly the missing
    records; everything drained is served from the store.
    """
    jobs = jobs if jobs is not None else spec.jobs
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    emit = log if log is not None else (lambda _msg: None)
    notify = on_record if on_record is not None else (lambda _rec: None)
    store = CampaignStore(out_dir)
    cache = ResultCache(cache_dir or os.path.join(out_dir, "cache"))
    metrics = CampaignMetrics(jobs)
    metrics.scenarios_total = len(spec.scenarios)
    records: Dict[str, RunRecord] = {}
    pending: deque = deque()
    t_start = time.perf_counter()

    # -- graceful-drain plumbing ----------------------------------------
    draining = {"flag": False}

    def _on_sigterm(_signum, _frame):
        if not draining["flag"]:
            draining["flag"] = True
            emit(f"[{spec.name}] SIGTERM: draining — finishing in-flight "
                 f"scenarios, launching nothing new")

    # -- phase 1: serve what is already known ---------------------------
    for scenario in spec.scenarios:
        key = scenario_cache_key(scenario)
        served: Optional[dict] = None
        source = ""
        prior_history: List[dict] = []
        if resume:
            prior = store.read_run(scenario.name)
            if prior is not None and prior.cache_key == key:
                # The store already knows this exact experiment.  Its
                # attempt history is provenance worth keeping whatever
                # happens next — carry it forward (into the served
                # record, or into the re-run that supersedes a stale
                # failure), tagging carried entries as resumed.  The
                # re-run overwrites runs/<name>.json and the manifest
                # entry; records are never duplicated.
                prior_history = [
                    dict(entry, resumed=True)
                    if not entry.get("resumed") else dict(entry)
                    for entry in prior.retry_history
                ]
                if prior.ok:
                    served, source = prior.result, "store"
        if served is None and use_cache:
            cached = cache.get(key)
            if cached is not None and cached.get("status") == STATUS_OK:
                served, source = cached.get("result", {}), "cache"
        if served is not None:
            record = RunRecord(
                name=scenario.name, cache_key=key, status=STATUS_OK,
                attempts=0, cache_hit=True, cache_source=source,
                scenario=scenario.to_dict(), result=served,
                retry_history=prior_history,
            )
            store.write_run(record)
            records[scenario.name] = record
            notify(record)
            metrics.completed += 1
            metrics.cached_hits += 1
            if source == "store":
                metrics.cached_from_store += 1
            emit(f"[{spec.name}] {scenario.name}: served from {source} "
                 f"(key {key[:12]})")
        else:
            pending.append(_Job(scenario, key, history=prior_history))

    # -- phase 2: the fleet ---------------------------------------------
    # The drain handler goes in only around the fleet (phase 1 is quick,
    # pure bookkeeping) and only on the main thread — a campaign driven
    # from a worker thread keeps the process's own SIGTERM semantics.
    prev_handler = None
    handler_installed = False
    if threading.current_thread() is threading.main_thread():
        try:
            prev_handler = signal.signal(signal.SIGTERM, _on_sigterm)
            handler_installed = True
        except ValueError:  # pragma: no cover - embedded interpreters
            pass

    ctx = multiprocessing.get_context(_START_METHOD)
    live: Dict[object, _Live] = {}

    def launch(job: _Job) -> None:
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_scenario_worker,
            args=(send_conn, job.scenario.to_dict()),
            name=f"campaign-{job.scenario.name}",
            daemon=True,
        )
        process.start()
        send_conn.close()
        now = time.monotonic()
        live[recv_conn] = _Live(job, process, recv_conn, now,
                                now + job.scenario.timeout_s)
        metrics.replays_executed += 1
        emit(f"[{spec.name}] {job.scenario.name}: attempt "
             f"{job.attempt} started")

    def record_outcome(job: _Job, status: str, payload: dict,
                       error: Optional[dict], busy: float) -> None:
        metrics.worker_busy_seconds += busy
        scenario = job.scenario
        if status == STATUS_OK:
            cache.put(job.key, {
                "format": CACHE_FORMAT_VERSION,
                "status": STATUS_OK,
                "cache_key": job.key,
                "scenario_name": scenario.name,
                "result": payload,
                "created_at": time.time(),
            })
            record = RunRecord(
                name=scenario.name, cache_key=job.key, status=STATUS_OK,
                attempts=job.attempt, cache_hit=False,
                wall_seconds=busy, scenario=scenario.to_dict(),
                result=payload, retry_history=list(job.history),
            )
            metrics.completed += 1
            emit(f"[{spec.name}] {scenario.name}: ok "
                 f"(simulated {payload.get('simulated_time', 0.0):.4g}s, "
                 f"{busy:.2f}s wall)")
        else:
            # Every failed attempt is remembered — *why* it failed
            # (timeout vs exception) and the backoff it triggered.
            job.history.append({
                "attempt": job.attempt,
                "status": status,
                "error_type": (error or {}).get("type", ""),
                "message": (error or {}).get("message", ""),
                "backoff_s": 0.0,
            })
            # Failed attempt: retry with backoff while budget remains —
            # unless the campaign is draining, in which case a retry
            # would never launch and the failure is recorded as final.
            if job.attempt <= scenario.max_retries and not draining["flag"]:
                delay = spec.retry_backoff * (2 ** (job.attempt - 1))
                job.history[-1]["backoff_s"] = delay
                job.ready_at = time.monotonic() + delay
                pending.append(job)
                metrics.retries += 1
                emit(f"[{spec.name}] {scenario.name}: attempt "
                     f"{job.attempt} {status}; retrying in {delay:.2f}s "
                     f"({scenario.max_retries - job.attempt + 1} left)")
                return
            record = RunRecord(
                name=scenario.name, cache_key=job.key, status=status,
                attempts=job.attempt, cache_hit=False,
                wall_seconds=busy, scenario=scenario.to_dict(),
                error=error, retry_history=list(job.history),
            )
            metrics.failed += 1
            emit(f"[{spec.name}] {scenario.name}: {status} after "
                 f"{job.attempt} attempt(s): "
                 f"{(error or {}).get('message', '')}")
        store.write_run(record)
        records[scenario.name] = record
        notify(record)

    try:
        while pending or live:
            now = time.monotonic()
            # Launch every ready job a free worker slot can take.
            if not draining["flag"] and len(live) < jobs and pending:
                deferred: List[_Job] = []
                while pending and len(live) < jobs:
                    job = pending.popleft()
                    if job.ready_at <= now:
                        job.attempt += 1
                        launch(job)
                    else:
                        deferred.append(job)
                pending.extendleft(reversed(deferred))
            if not live:
                if draining["flag"]:
                    break   # drained: whatever is pending never launches
                # Everything pending is backing off; sleep to the earliest.
                wake = min(job.ready_at for job in pending)
                time.sleep(max(0.0, wake - time.monotonic()))
                continue

            # Wait for the next completion, timeout, or backoff expiry.
            next_deadline = min(entry.deadline for entry in live.values())
            horizon = next_deadline
            ready_jobs = [job.ready_at for job in pending
                          if job.ready_at > now]
            if not draining["flag"] and len(live) < jobs and ready_jobs:
                horizon = min(horizon, min(ready_jobs))
            ready = conn_wait(list(live.keys()),
                              timeout=max(0.0, horizon - time.monotonic()))

            now = time.monotonic()
            for conn in ready:
                entry = live.pop(conn)
                busy = now - entry.started
                try:
                    status, payload = conn.recv()
                except (EOFError, OSError):
                    status, payload = "error", {
                        "type": "WorkerDied",
                        "message": (f"worker exited without a result "
                                    f"(exitcode {entry.process.exitcode})"),
                        "traceback": "",
                    }
                conn.close()
                entry.process.join()
                metrics.attempts += 1
                if status == "ok":
                    record_outcome(entry.job, STATUS_OK, payload, None, busy)
                else:
                    record_outcome(entry.job, STATUS_FAILED, {}, payload,
                                   busy)

            # Enforce timeouts on whoever is still running.
            for conn in [c for c, e in live.items() if now >= e.deadline]:
                entry = live.pop(conn)
                entry.process.terminate()
                entry.process.join()
                conn.close()
                busy = now - entry.started
                metrics.attempts += 1
                metrics.timeouts += 1
                record_outcome(entry.job, STATUS_TIMEOUT, {}, {
                    "type": "Timeout",
                    "message": (f"attempt exceeded timeout_s="
                                f"{entry.job.scenario.timeout_s:g}"),
                    "traceback": "",
                }, busy)
    finally:
        if handler_installed:
            signal.signal(signal.SIGTERM, prev_handler)

    interrupted = draining["flag"]
    metrics.wall_seconds = time.perf_counter() - t_start
    # Manifest in spec order, whatever order scenarios finished in.
    ordered = [records[s.name] for s in spec.scenarios if s.name in records]
    extra = None
    if interrupted:
        unlaunched = [s.name for s in spec.scenarios
                      if s.name not in records]
        extra = {"interrupted": True, "unlaunched": unlaunched}
    store.write_manifest(spec.to_dict(), metrics.as_dict(), ordered,
                         extra=extra)
    if interrupted:
        emit(f"[{spec.name}] drained: {metrics.completed} recorded, "
             f"{len(spec.scenarios) - len(records)} never launched; "
             f"manifest is resumable")
    else:
        emit(f"[{spec.name}] done: "
             f"{metrics.completed}/{metrics.scenarios_total} "
             f"ok ({metrics.cached_hits} cached, {metrics.failed} failed) "
             f"in {metrics.wall_seconds:.2f}s, utilization "
             f"{100 * metrics.utilization:.0f}%")
    return CampaignResult(out_dir=out_dir, records=records, metrics=metrics,
                          interrupted=interrupted)
