"""repro.campaign — parallel experiment campaigns with result caching.

The paper's evaluation is not one replay but a *sweep*: the same
acquire → calibrate → replay pipeline over a grid of (application,
class, rank count, platform, options) points, compared side by side
(Table 2, Figs. 7-9).  This package runs such sweeps as first-class
objects:

* :mod:`~repro.campaign.spec` — declarative scenario/campaign
  descriptions with cross-product grid expansion;
* :mod:`~repro.campaign.runner` — a bounded worker-process fleet with
  per-scenario timeouts, bounded retries, and graceful degradation;
* :mod:`~repro.campaign.cache` — content-addressed result caching, so a
  re-run only replays what actually changed;
* :mod:`~repro.campaign.store` / :mod:`~repro.campaign.report` — JSON
  run records, the campaign manifest, and the Table-2/Fig-8-style
  comparison rendering;
* :mod:`~repro.campaign.cli` — the ``repro-campaign`` tool.
"""

from .cache import ResultCache, scenario_cache_key
from .runner import CampaignResult, execute_scenario, run_campaign
from .spec import (
    CalibrationSpec, CampaignSpec, FaultSpec, PlatformSpec, ReplaySpec,
    Scenario, TraceSpec, expand_grid, load_campaign_spec,
)
from .store import CampaignStore, RunRecord
from .telemetry import CampaignMetrics

__all__ = [
    "TraceSpec", "PlatformSpec", "CalibrationSpec", "ReplaySpec",
    "FaultSpec", "Scenario", "CampaignSpec", "expand_grid",
    "load_campaign_spec",
    "scenario_cache_key", "ResultCache", "CampaignMetrics",
    "RunRecord", "CampaignStore",
    "execute_scenario", "run_campaign", "CampaignResult",
]
