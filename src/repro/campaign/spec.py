"""Declarative experiment-campaign specifications.

The paper's evaluation (§6) is a *sweep*: the same acquire → calibrate →
replay pipeline executed over a grid of (application, class, rank count,
platform, acquisition mode, replay options) points whose results are
compared side by side.  This module gives that grid a first-class,
serialisable shape:

* :class:`Scenario` — one point of the sweep: what trace to replay
  (:class:`TraceSpec`), on which platform (:class:`PlatformSpec`),
  calibrated how (:class:`CalibrationSpec`), with which replay options
  (:class:`ReplaySpec`), plus the execution policy (timeout, retries).
* :class:`CampaignSpec` — a named, ordered set of scenarios with the
  runner defaults (worker count, retry backoff).
* :func:`expand_grid` — the cross-product helper that turns a base
  scenario plus ``{"trace.cls": ["B", "C"], "ranks": [8, 16]}`` into the
  scenario list, with stable auto-generated names.

Everything is plain dataclasses over JSON-primitive fields: a spec
round-trips through ``to_dict``/``from_dict`` (the ``repro-campaign``
file format), pickles cleanly into worker processes, and digests
deterministically for the content-addressed result cache
(:mod:`repro.campaign.cache`).
"""

from __future__ import annotations

import itertools
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = [
    "TraceSpec", "PlatformSpec", "CalibrationSpec", "ReplaySpec",
    "FaultSpec", "Scenario", "CampaignSpec", "expand_grid",
    "load_campaign_spec",
]


def _from_mapping(cls, data: Mapping[str, Any]):
    """Build a dataclass from a mapping, rejecting unknown keys loudly
    (a typo in a spec file must not silently become a default)."""
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"{cls.__name__}: unknown field(s) {sorted(unknown)}; "
            f"known: {sorted(known)}"
        )
    return cls(**dict(data))


@dataclass(frozen=True)
class TraceSpec:
    """Where the time-independent trace of a scenario comes from.

    ``kind`` selects the source; only the fields of that kind matter
    (the cache digests kind-relevant fields only, see
    :meth:`digest_fields`):

    * ``synth`` — a synthetic generator, selected by ``family``:

      - ``lu`` (default) — the :mod:`repro.core.synth` LU-mix generator:
        ``cls``, ``iterations``, ``inorm``, ``seed``, ``jitter``,
        ``compute_split`` (compute records per sweep; > 1 models
        function-level instrumentation).
      - ``dp`` / ``pp`` / ``moe`` — the :mod:`repro.core.synth_ai`
        AI-workload generators; ``iterations`` is the training-step
        count and ``params`` carries the family's keyword arguments
        (e.g. ``{"bucket_bytes": 1048576}``) as an inline JSON object,
        canonicalised so equal parameter sets digest identically.
    * ``acquire`` — the full §4 pipeline on the scenario's (ground-truth)
      platform: ``app``, ``cls``, ``mode``, ``papi_jitter``,
      ``papi_seed``, ``itmax_cap`` (0 = the class's full ``itmax``).
    * ``dir`` — an existing trace directory at ``path``; its *content*
      (file bytes) is the cache address, so editing any trace file busts
      the key.
    * ``sleep`` / ``fail`` — deterministic fixtures for exercising the
      runner itself (scheduling, timeouts, retries); ``sleep`` blocks
      ``seconds`` of wall time and reports it as the simulated time,
      ``fail`` raises until ``state_path`` has seen ``fail_times``
      attempts.

    ``stage_wait_s`` applies to every kind: the wall-clock cost of
    staging the trace from an external resource (a batch queue, a remote
    filesystem) before the replay can start.  It is part of the content
    address — a scenario staged differently is a different experiment —
    and it is the component of a campaign the runner's workers overlap.
    """

    kind: str = "synth"
    # synth
    family: str = "lu"
    cls: str = "B"
    iterations: int = 4
    inorm: int = 2
    seed: int = 0
    jitter: float = 0.0
    compute_split: int = 1
    #: Extra generator kwargs for the AI families, as canonical JSON
    #: (spec files may write an inline object; it is canonicalised).
    params: str = ""
    # acquire
    app: str = "lu"
    mode: str = "R"
    papi_jitter: float = 0.0
    papi_seed: int = 0
    itmax_cap: int = 0
    # dir
    path: str = ""
    # fixtures
    seconds: float = 0.0
    fail_times: int = 0
    state_path: str = ""
    # all kinds
    stage_wait_s: float = 0.0

    _KINDS = ("synth", "acquire", "dir", "sleep", "fail")
    _FAMILIES = ("lu", "dp", "pp", "moe")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown trace kind {self.kind!r}; use one of {self._KINDS}"
            )
        if self.kind == "dir" and not self.path:
            raise ValueError("trace kind 'dir' needs a path")
        if self.kind == "synth" and self.family not in self._FAMILIES:
            raise ValueError(
                f"unknown synth family {self.family!r}; "
                f"use one of {self._FAMILIES}"
            )
        if self.params and not isinstance(self.params, str):
            # Spec files naturally write the kwargs inline as an object;
            # canonicalise so equal parameter sets compare and digest
            # equal.
            object.__setattr__(
                self, "params",
                json.dumps(self.params, sort_keys=True,
                           separators=(",", ":")),
            )
        if self.params:
            decoded = json.loads(self.params)
            if not isinstance(decoded, dict):
                raise ValueError(
                    "trace params must be a JSON object of generator "
                    f"keyword arguments, got {type(decoded).__name__}"
                )

    def generator_params(self) -> Dict[str, Any]:
        """The decoded ``params`` object (empty dict when unset)."""
        return json.loads(self.params) if self.params else {}

    def digest_fields(self) -> Dict[str, Any]:
        """The kind-relevant parameters (what the cache key digests for
        this source — content digests for ``dir`` are added by the cache
        layer, which reads the files)."""
        base: Dict[str, Any] = {"kind": self.kind,
                                "stage_wait_s": self.stage_wait_s}
        if self.kind == "synth":
            base["family"] = self.family
            if self.family == "lu":
                base.update(cls=self.cls, iterations=self.iterations,
                            inorm=self.inorm, seed=self.seed,
                            jitter=self.jitter,
                            compute_split=self.compute_split)
            else:
                # AI families: iterations is the step count; the rest of
                # the generator surface travels in the canonical params
                # JSON (decoded so the digest sees values, not spelling).
                base.update(iterations=self.iterations, seed=self.seed,
                            jitter=self.jitter,
                            params=self.generator_params())
        elif self.kind == "acquire":
            base.update(app=self.app, cls=self.cls, mode=self.mode,
                        papi_jitter=self.papi_jitter,
                        papi_seed=self.papi_seed, itmax_cap=self.itmax_cap)
        elif self.kind == "sleep":
            base.update(seconds=self.seconds)
        elif self.kind == "fail":
            base.update(fail_times=self.fail_times)
        return base


@dataclass(frozen=True)
class PlatformSpec:
    """The platform a scenario replays on (and acquires from).

    * ``named`` — a catalog factory (``bordereau``/``gdx``/``grid5000``)
      instantiated with ``hosts``/``cores``; acquisition uses its
      ground-truth flavour, replay its calibrated flavour.
    * ``xml`` — a SimGrid v3 platform file at ``xml_path``; the file
      *bytes* are the cache address, so editing the XML busts the key.
    """

    kind: str = "named"
    name: str = "bordereau"
    hosts: int = 0             # 0 = the catalog's full cluster
    cores: int = 1
    xml_path: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("named", "xml"):
            raise ValueError(f"unknown platform kind {self.kind!r}")
        if self.kind == "xml" and not self.xml_path:
            raise ValueError("platform kind 'xml' needs xml_path")

    def digest_fields(self) -> Dict[str, Any]:
        if self.kind == "xml":
            return {"kind": "xml"}  # + file digest, added by the cache layer
        return {"kind": "named", "name": self.name, "hosts": self.hosts,
                "cores": self.cores}


@dataclass(frozen=True)
class CalibrationSpec:
    """How the replay platform gets its *pertinent values* (§5).

    * ``nominal`` — no calibration: the platform's nominal rates and the
      default piece-wise-linear MPI model.
    * ``fixed`` — explicit values: ``speed`` (flop/s, 0 = keep nominal)
      and optionally ``segments`` (``[lower, upper, lat_factor,
      bw_factor]`` rows of a fitted network model).  This is how a
      campaign shares one up-front calibration across scenarios.
    * ``auto`` — each worker runs the paper's procedure itself
      (:func:`~repro.core.calibration.calibrate_flop_rate` +
      ``calibrate_network``) on the scenario's ground-truth platform,
      with ``calib_cls``/``calib_ranks``/``runs``/``calib_jitter``/
      ``calib_seed`` — deterministic per seed, hence cacheable.
    """

    kind: str = "nominal"
    speed: float = 0.0
    segments: tuple = ()       # ((lower, upper, lat_factor, bw_factor), ...)
    calib_app: str = "lu"
    calib_cls: str = "W"
    calib_ranks: int = 4
    runs: int = 5
    calib_jitter: float = 0.002
    calib_seed: int = 42

    def __post_init__(self) -> None:
        if self.kind not in ("nominal", "fixed", "auto"):
            raise ValueError(f"unknown calibration kind {self.kind!r}")
        # JSON round-trips tuples as lists; normalise for equality and
        # digest stability.
        object.__setattr__(
            self, "segments",
            tuple(tuple(float(x) for x in row) for row in self.segments),
        )

    def digest_fields(self) -> Dict[str, Any]:
        if self.kind == "fixed":
            # Canonical JSON refuses non-finite floats; the last network
            # segment's upper bound is +inf, so spell it out.
            rows = [[("inf" if x == float("inf") else x) for x in row]
                    for row in self.segments]
            return {"kind": "fixed", "speed": self.speed, "segments": rows}
        if self.kind == "auto":
            return {"kind": "auto", "calib_app": self.calib_app,
                    "calib_cls": self.calib_cls,
                    "calib_ranks": self.calib_ranks, "runs": self.runs,
                    "calib_jitter": self.calib_jitter,
                    "calib_seed": self.calib_seed}
        return {"kind": "nominal"}


@dataclass(frozen=True)
class ReplaySpec:
    """The :class:`~repro.core.replay.TraceReplayer` options."""

    collectives: str = "binomial"
    eager_threshold: float = 65536.0
    lmm_mode: str = "auto"
    collect_metrics: bool = True
    # Replay driver: "auto" (compile path sources), "always", "never".
    # Part of the cache address even though compiled and token replays
    # agree to 1e-9: a cached record must say which driver produced it.
    compiled: str = "auto"
    # Event-loop batching and sharded parallel replay (exact, validated
    # at run time); cache-addressed for the same provenance reason.
    batch_phases: bool = False
    shards: int = 0
    shard_halo: int = 0

    def __post_init__(self) -> None:
        # Accepts every engine solver mode, including "native" (the
        # optional Numba kernel) — availability of the extra is checked
        # at replay construction, not here, so a campaign authored on a
        # native-capable host still *parses* everywhere.  Deliberately
        # no new spec field for the incremental toggle: the incremental
        # patch is certified-identical to the full solve, so it is not
        # part of a result's address.
        from ..simkernel.lmm import LMM_MODES

        if self.lmm_mode not in LMM_MODES:
            raise ValueError(
                f"unknown lmm_mode {self.lmm_mode!r}; use one of "
                f"{LMM_MODES}"
            )
        if self.compiled not in ("auto", "always", "never"):
            raise ValueError(
                f"unknown compiled mode {self.compiled!r}; use 'auto', "
                "'always', or 'never'"
            )
        if self.shards < 0 or self.shard_halo < 0:
            raise ValueError("shards and shard_halo must be >= 0")

    def digest_fields(self) -> Dict[str, Any]:
        # collect_metrics changes what is *recorded*, not the simulated
        # outcome (telemetry is arithmetic-neutral by design), but a
        # cached record without metrics should not satisfy a request
        # that wants them — so it is part of the address.
        return asdict(self)


@dataclass(frozen=True)
class FaultSpec:
    """Fault injection for a scenario (:mod:`repro.faults`).

    Exactly one plan source:

    * ``plan_json`` — the plan document inline (a dict in the spec file;
      stored canonicalised so equal plans digest identically);
    * ``plan_path`` — a plan file; its *bytes* are the cache address, so
      editing the plan busts the key.

    ``mode`` selects the failure-aware replay semantics — ``abort``
    (default) or ``checkpoint-restart`` (the plan then needs a
    ``checkpoint`` block).
    """

    mode: str = "abort"
    plan_path: str = ""
    plan_json: str = ""

    def __post_init__(self) -> None:
        if self.mode not in ("abort", "checkpoint-restart"):
            raise ValueError(
                f"unknown fault mode {self.mode!r}; use 'abort' or "
                "'checkpoint-restart'"
            )
        if bool(self.plan_path) == bool(self.plan_json):
            raise ValueError(
                "FaultSpec needs exactly one of plan_path / plan_json"
            )
        if self.plan_json and not isinstance(self.plan_json, str):
            # Spec files naturally write the plan inline as an object;
            # canonicalise so equal plans compare and digest equal.
            object.__setattr__(
                self, "plan_json",
                json.dumps(self.plan_json, sort_keys=True,
                           separators=(",", ":")),
            )
        if self.plan_json:
            # Validate the document shape eagerly — a typo'd plan must
            # fail at spec-load time, not inside a worker.
            from ..faults.plan import FaultPlan
            FaultPlan.loads(self.plan_json)

    def load_plan(self):
        """Materialise the :class:`~repro.faults.plan.FaultPlan`."""
        from ..faults.plan import FaultPlan, load_fault_plan
        if self.plan_path:
            return load_fault_plan(self.plan_path)
        return FaultPlan.loads(self.plan_json)

    def digest_fields(self) -> Dict[str, Any]:
        # plan_path content digest is added by the cache layer.
        base: Dict[str, Any] = {"mode": self.mode}
        if self.plan_json:
            base["plan_json"] = self.plan_json
        return base


@dataclass(frozen=True)
class Scenario:
    """One experiment of a campaign: a trace replayed on a platform."""

    name: str
    ranks: int
    trace: TraceSpec = field(default_factory=TraceSpec)
    platform: PlatformSpec = field(default_factory=PlatformSpec)
    calibration: CalibrationSpec = field(default_factory=CalibrationSpec)
    replay: ReplaySpec = field(default_factory=ReplaySpec)
    #: Optional fault injection (host crashes, link outages) during the
    #: replay; the report payload then carries a ``fault_report`` block.
    faults: Optional[FaultSpec] = None
    #: Also measure the "actual" execution time on the ground-truth
    #: platform (the Fig. 8 comparison baseline); only meaningful for
    #: ``acquire`` traces.
    measure_actual: bool = False
    #: Wall-clock budget of one attempt; exceeded -> the worker is
    #: terminated and the attempt counts as a failure.
    timeout_s: float = 300.0
    #: Re-executions after a failed attempt (0 = single attempt).
    max_retries: int = 1

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name or self.name.startswith("."):
            raise ValueError(f"bad scenario name {self.name!r} (it names "
                             "files; no slashes, not dot-led)")
        if self.ranks < 1:
            raise ValueError("ranks must be >= 1")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be > 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    # -- serialisation ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        doc = asdict(self)
        doc["calibration"]["segments"] = [
            list(row) for row in self.calibration.segments
        ]
        return doc

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        data = dict(data)
        for key, sub in (("trace", TraceSpec), ("platform", PlatformSpec),
                         ("calibration", CalibrationSpec),
                         ("replay", ReplaySpec), ("faults", FaultSpec)):
            if key in data and isinstance(data[key], Mapping):
                data[key] = _from_mapping(sub, data[key])
        return _from_mapping(cls, data)


@dataclass
class CampaignSpec:
    """A named fleet of scenarios plus the runner policy defaults."""

    name: str
    scenarios: List[Scenario] = field(default_factory=list)
    jobs: int = 4
    #: Base delay before retry k is ``retry_backoff * 2**(k-1)`` seconds.
    retry_backoff: float = 0.5
    notes: str = ""

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        seen = set()
        for scenario in self.scenarios:
            if scenario.name in seen:
                raise ValueError(
                    f"duplicate scenario name {scenario.name!r}; names key "
                    "run records and must be unique"
                )
            seen.add(scenario.name)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "jobs": self.jobs,
            "retry_backoff": self.retry_backoff,
            "notes": self.notes,
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        data = dict(data)
        base = data.pop("base", None)
        vary = data.pop("vary", None)
        scenarios = [Scenario.from_dict(s)
                     for s in data.pop("scenarios", [])]
        if vary:
            scenarios = list(scenarios) + expand_grid(
                data.get("name", "campaign"), base or {}, vary
            )
        spec = cls(scenarios=scenarios,
                   **{k: v for k, v in data.items()
                      if k in ("name", "jobs", "retry_backoff", "notes")})
        return spec


# ----------------------------------------------------------------------
# Grid expansion
# ----------------------------------------------------------------------
def _set_dotted(doc: Dict[str, Any], dotted: str, value: Any) -> None:
    parts = dotted.split(".")
    node = doc
    for part in parts[:-1]:
        node = node.setdefault(part, {})
        if not isinstance(node, dict):
            raise ValueError(f"cannot descend into {dotted!r}")
    node[parts[-1]] = value


def _name_token(value: Any) -> str:
    text = str(value)
    return "".join(ch if (ch.isalnum() or ch in "-.") else "-"
                   for ch in text)


def expand_grid(
    name: str,
    base: Mapping[str, Any],
    vary: Mapping[str, Sequence[Any]],
) -> List[Scenario]:
    """Cross-product scenario expansion.

    ``base`` is a (possibly partial) scenario dict; ``vary`` maps dotted
    field paths to value lists, e.g.::

        expand_grid("lu", {"trace": {"kind": "synth"}},
                    {"trace.cls": ["B", "C"], "ranks": [8, 16]})

    yields 4 scenarios named ``lu-B-8`` ... ``lu-C-16`` (name tokens
    follow ``vary``'s key order).  An explicit ``base["name"]`` becomes
    the prefix instead of ``name``.
    """
    if not vary:
        raise ValueError("vary must name at least one axis")
    keys = list(vary.keys())
    prefix = str(base.get("name", name))
    scenarios: List[Scenario] = []
    for combo in itertools.product(*(vary[k] for k in keys)):
        doc = json.loads(json.dumps(dict(base)))  # deep copy, JSON-clean
        for key, value in zip(keys, combo):
            _set_dotted(doc, key, value)
        doc["name"] = "-".join([prefix] + [_name_token(v) for v in combo])
        scenarios.append(Scenario.from_dict(doc))
    return scenarios


def load_campaign_spec(path: str) -> CampaignSpec:
    """Load a campaign spec JSON file (the ``repro-campaign run`` input).

    The document is :meth:`CampaignSpec.to_dict`'s shape, optionally with
    ``base``/``vary`` keys that :func:`expand_grid` turns into scenarios
    (explicit ``scenarios`` entries are kept and run first).
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if "name" not in data:
        raise ValueError(f"{path}: campaign spec needs a 'name'")
    return CampaignSpec.from_dict(data)
