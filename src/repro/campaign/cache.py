"""Content-addressed result cache for campaign scenarios.

A scenario's *cache key* is a SHA-256 digest over everything that
determines its outcome:

* the trace content address — for ``synth`` traces the generator
  parameter tuple (seed included; :func:`repro.core.synth.synth_metadata`
  guarantees the tuple ↔ bytes bijection), for ``acquire`` traces the
  acquisition parameters (the pipeline is deterministic per PAPI seed),
  for ``dir`` traces the *bytes* of the trace files themselves;
* the platform — catalog parameters for named platforms, the file bytes
  for platform XML (editing the XML busts the key);
* the calibration parameters (a changed flop rate or network segment
  busts the key);
* the replay options and rank count.

Keys are computed from canonical JSON (sorted keys, fixed separators) —
never from Python's randomised ``hash()`` — so the same scenario hashes
identically in every process and on every run, which is what lets a
re-run campaign skip every unchanged scenario.

The cache itself is a plain directory of JSON records,
``<root>/<key[:2]>/<key>.json``, safe to share between campaigns and to
prune with ``rm``.  Writes go through a same-directory temp file +
``os.replace`` so concurrent writers (campaign workers finishing
together) can never leave a torn record.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

from .spec import Scenario

__all__ = ["CACHE_FORMAT_VERSION", "canonical_json", "digest_of",
           "digest_file", "digest_tree", "scenario_cache_key",
           "ResultCache"]

#: Bump when the record schema or key composition changes; part of every
#: key, so stale-format records can never be served.
#: v2: fault-injection specs joined the key composition.
#: v3: ReplaySpec grew the ``compiled`` driver field.
#: v4: ReplaySpec grew batch_phases/shards/shard_halo, and synthetic
#: trace addresses normalise the seed to 0 when jitter is 0 (the seed
#: cannot influence a jitter-free trace, so it must not split the key).
#: v5: TraceSpec grew family/params (AI-workload generators) and the
#: opcode space grew the allToAll/allGather/reduceScatter/allToAllv
#: collectives.
CACHE_FORMAT_VERSION = 5


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN surprises."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def digest_of(obj: Any) -> str:
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def digest_file(path: str) -> str:
    """SHA-256 of a file's bytes (streamed)."""
    h = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def digest_tree(directory: str) -> str:
    """SHA-256 over a directory's (relative name, bytes) pairs, walked in
    sorted order — byte-identical trees digest identically regardless of
    mtime or inode churn."""
    h = hashlib.sha256()
    for root, dirs, files in sorted(os.walk(directory)):
        dirs.sort()
        for name in sorted(files):
            if name.endswith(".tic"):
                # Compiled-program sidecars are derived artifacts keyed
                # to their source's bytes (repro.core.compile): hashing
                # them would make a warm compile cache change the trace's
                # content address.
                continue
            path = os.path.join(root, name)
            rel = os.path.relpath(path, directory)
            h.update(rel.encode("utf-8"))
            h.update(b"\0")
            with open(path, "rb") as handle:
                for chunk in iter(lambda: handle.read(1 << 20), b""):
                    h.update(chunk)
            h.update(b"\0")
    return h.hexdigest()


def _trace_address(scenario: Scenario) -> Dict[str, Any]:
    trace = scenario.trace
    address = trace.digest_fields()
    if trace.kind == "dir":
        address["content"] = digest_tree(trace.path)
    if trace.kind == "synth":
        # The synth generator needs the rank count too.
        address["n_ranks"] = scenario.ranks
        # A jitter-free trace never draws from its RNG, so the seed
        # cannot influence a single byte of it; leaving it in the
        # address would split identical traces across cache keys
        # (spurious misses when a sweep varies the seed with jitter 0).
        # synth_metadata applies the same normalisation.  The moe family
        # is the exception: its expert-routing splits are a function of
        # the seed even at jitter 0, so its seed always addresses.
        if address.get("jitter") == 0.0 and trace.family != "moe":
            address["seed"] = 0
    return address


def _platform_address(scenario: Scenario) -> Dict[str, Any]:
    platform = scenario.platform
    address = platform.digest_fields()
    if platform.kind == "xml":
        address["content"] = digest_file(platform.xml_path)
    return address


def _faults_address(scenario: Scenario) -> Optional[Dict[str, Any]]:
    if scenario.faults is None:
        return None
    address = scenario.faults.digest_fields()
    if scenario.faults.plan_path:
        address["content"] = digest_file(scenario.faults.plan_path)
    return address


def scenario_cache_key(scenario: Scenario) -> str:
    """The content address of one scenario's result."""
    return digest_of({
        "format": CACHE_FORMAT_VERSION,
        "ranks": scenario.ranks,
        "measure_actual": scenario.measure_actual,
        "trace": _trace_address(scenario),
        "platform": _platform_address(scenario),
        "calibration": scenario.calibration.digest_fields(),
        "replay": scenario.replay.digest_fields(),
        "faults": _faults_address(scenario),
    })


class ResultCache:
    """Directory-backed map from cache key to result record (a dict)."""

    def __init__(self, root: str) -> None:
        self.root = root

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except (ValueError, OSError):
            # A torn/corrupt record is a miss, not a crash.
            return None
        try:
            # Recency signal for size-bounded shared caches (the service
            # artifact store evicts least-recently-*used*, not least-
            # recently-written).  Best-effort: a read-only cache still
            # serves hits.
            os.utime(path, None)
        except OSError:
            pass
        return record

    def put(self, key: str, record: Dict[str, Any]) -> str:
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        count = 0
        if not os.path.isdir(self.root):
            return 0
        for _root, _dirs, files in os.walk(self.root):
            count += sum(1 for f in files if f.endswith(".json"))
        return count
