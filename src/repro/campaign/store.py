"""On-disk campaign state: one JSON record per run plus a manifest.

Layout of a campaign directory (the ``--out`` of ``repro-campaign``)::

    <out>/
      manifest.json          # spec echo + campaign metrics + status map
      runs/<scenario>.json   # one RunRecord per scenario (latest attempt)
      cache/...              # the content-addressed ResultCache (default)

Records are plain JSON documents so downstream tooling (the report
module, notebooks, `jq`) never needs this package to read them.  Writes
use temp-file + ``os.replace`` — a campaign killed mid-write leaves the
previous consistent record, never a torn one.  Should a manifest still
end up truncated (a pre-atomic writer, a torn copy, disk trouble), it is
*derived* state: :meth:`CampaignStore.rebuild_manifest` reconstructs it
from the run records, and :meth:`CampaignStore.load_or_rebuild_manifest`
does so automatically whenever the file is missing or unparsable while
run records exist.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["RunRecord", "CampaignStore"]

#: RunRecord.status values.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"


@dataclass
class RunRecord:
    """Everything one scenario run produced (or how it failed)."""

    name: str
    cache_key: str
    status: str                     # ok | failed | timeout
    attempts: int = 0               # worker executions this campaign
    cache_hit: bool = False
    cache_source: str = ""          # "" | "cache" | "store"
    wall_seconds: float = 0.0       # scheduling wall of this scenario
    scenario: Dict[str, Any] = field(default_factory=dict)   # spec echo
    #: Worker payload: simulated_time, actual_time, rel_error, n_actions,
    #: n_ranks, replay_wall_seconds, stage_wait_s, metrics (telemetry
    #: document sans per_rank), calibration {speed, ...}.
    result: Dict[str, Any] = field(default_factory=dict)
    #: On failure: {type, message, traceback} of the last attempt.
    error: Optional[Dict[str, str]] = None
    #: One entry per *failed* attempt (even when a later attempt
    #: succeeded): {attempt, status, error_type, message, backoff_s}.
    retry_history: List[Dict[str, Any]] = field(default_factory=list)
    finished_at: float = 0.0        # unix time

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        known = {f for f in cls.__dataclass_fields__}  # tolerate extras
        return cls(**{k: v for k, v in data.items() if k in known})


def _write_json(path: str, document: Any) -> None:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class CampaignStore:
    """Reader/writer of a campaign directory."""

    def __init__(self, out_dir: str) -> None:
        self.out_dir = out_dir
        self.runs_dir = os.path.join(out_dir, "runs")
        self.manifest_path = os.path.join(out_dir, "manifest.json")

    # -- runs ------------------------------------------------------------
    def run_path(self, name: str) -> str:
        return os.path.join(self.runs_dir, f"{name}.json")

    def write_run(self, record: RunRecord) -> str:
        if not record.finished_at:
            record.finished_at = time.time()
        path = self.run_path(record.name)
        _write_json(path, record.to_dict())
        return path

    def read_run(self, name: str) -> Optional[RunRecord]:
        try:
            with open(self.run_path(name), "r", encoding="utf-8") as handle:
                return RunRecord.from_dict(json.load(handle))
        except (FileNotFoundError, ValueError):
            return None

    def read_runs(self) -> List[RunRecord]:
        if not os.path.isdir(self.runs_dir):
            return []
        records = []
        for fname in sorted(os.listdir(self.runs_dir)):
            if fname.endswith(".json"):
                record = self.read_run(fname[:-len(".json")])
                if record is not None:
                    records.append(record)
        return records

    # -- manifest --------------------------------------------------------
    def write_manifest(self, spec_doc: Dict[str, Any],
                       metrics_doc: Dict[str, Any],
                       records: List[RunRecord],
                       extra: Optional[Dict[str, Any]] = None) -> str:
        document = {
            "campaign": spec_doc.get("name", ""),
            "spec": spec_doc,
            "metrics": metrics_doc,
            "scenarios": {
                r.name: {
                    "status": r.status,
                    "cache_key": r.cache_key,
                    "cache_hit": r.cache_hit,
                    "attempts": r.attempts,
                    "simulated_time": r.result.get("simulated_time"),
                }
                for r in records
            },
            "generated_at": time.time(),
        }
        if extra:
            document.update(extra)
        _write_json(self.manifest_path, document)
        return self.manifest_path

    def read_manifest(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, ValueError):
            return None

    def rebuild_manifest(self) -> Optional[Dict[str, Any]]:
        """Reconstruct the manifest from ``runs/*.json``.

        The manifest is a *view* over the run records — everything in it
        except the spec echo and the fleet metrics can be derived from
        them.  A rebuilt manifest says so (``"rebuilt": true``) and
        carries empty ``spec``/``metrics`` blocks rather than inventing
        numbers it cannot know.  Returns the document (also written to
        ``manifest.json``), or ``None`` when there are no run records to
        rebuild from.
        """
        records = self.read_runs()
        if not records:
            return None
        self.write_manifest({}, {}, records, extra={"rebuilt": True})
        return self.read_manifest()

    def load_or_rebuild_manifest(self) -> Optional[Dict[str, Any]]:
        """The manifest, rebuilt from run records when the file is
        missing or torn.  Detection is by parse: ``manifest.json`` either
        loads as JSON or it is treated as lost and re-derived."""
        manifest = self.read_manifest()
        if manifest is not None:
            return manifest
        return self.rebuild_manifest()
