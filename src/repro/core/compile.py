"""Trace compilation: time-independent traces as columnar op programs.

The replay hot path used to re-tokenize one text line and make one dict
dispatch per action.  This module compiles a trace — text, binary, or
in-memory — *once* into parallel NumPy columns::

    ops   uint8    the action opcode (the binfmt opcode space)
    arg   int32    peer rank (p2p) / communicator size (comm_size) / 0
    vol   float64  flops (compute) or bytes (p2p, bcast, reduce vcomm)
    vol2  float64  reduce/allReduce vcomp; 0 otherwise

plus an optional ``nsrc`` (uint32) column counting how many *source*
actions each compiled op stands for — 1 everywhere except fused compute
runs (see :func:`fuse_computes`).  No strings survive compilation, so
the replayer's compiled driver allocates zero token lists per action.

Compiled programs are cached on disk as ``.tic`` sidecars next to the
trace files (``SG_process3.trace.tic``; a merged file gets one container
sidecar).  A sidecar embeds the SHA-256 of the source file's bytes and
is rebuilt automatically whenever the source changes — a ``.tic`` can
never go stale.  Sidecars are *derived* artifacts: the campaign cache's
tree digest skips them, so warming the compile cache does not change any
scenario's content address.

Compute fusion (:func:`fuse_computes`) collapses each run of consecutive
``compute`` ops into a single op whose volume is the run's sum.  This is
exact whenever per-flop work inflation does not depend on the burst size
(every replay host has ``efficiency_model is None``): no observable
event can interleave within a rank's own compute run, and the engine's
max-min share is insensitive to splitting one burst into back-to-back
pieces.  The replayer only enables fusion under that condition (and
never under fault plans or timed-trace recording, which need per-action
granularity).
"""

from __future__ import annotations

import gzip
import hashlib
import logging
import math
import os
import struct
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .actions import format_volume
from .binfmt import NAME_OF_OPCODE, OPCODE_OF, OPCODE_SPACE_VERSION

__all__ = [
    "CompiledProgram", "CompileReport", "compile_source", "fuse_computes",
    "op_tokens", "tic_path_for", "TIC_SUFFIX",
    "OP_COMPUTE", "OP_SEND", "OP_ISEND", "OP_RECV", "OP_IRECV", "OP_BCAST",
    "OP_REDUCE", "OP_ALLREDUCE", "OP_BARRIER", "OP_COMM_SIZE", "OP_WAIT",
    "OP_ALLTOALL", "OP_ALLGATHER", "OP_REDUCESCATTER", "OP_ALLTOALLV",
]

OP_COMPUTE = OPCODE_OF["compute"]
OP_SEND = OPCODE_OF["send"]
OP_ISEND = OPCODE_OF["Isend"]
OP_RECV = OPCODE_OF["recv"]
OP_IRECV = OPCODE_OF["Irecv"]
OP_BCAST = OPCODE_OF["bcast"]
OP_REDUCE = OPCODE_OF["reduce"]
OP_ALLREDUCE = OPCODE_OF["allReduce"]
OP_BARRIER = OPCODE_OF["barrier"]
OP_COMM_SIZE = OPCODE_OF["comm_size"]
OP_WAIT = OPCODE_OF["wait"]
OP_ALLTOALL = OPCODE_OF["allToAll"]
OP_ALLGATHER = OPCODE_OF["allGather"]
OP_REDUCESCATTER = OPCODE_OF["reduceScatter"]
OP_ALLTOALLV = OPCODE_OF["allToAllv"]

#: Compiled-program sidecar suffix, appended to the source file name.
TIC_SUFFIX = ".tic"

_TIC_MAGIC = b"TICP0001"
#: v2: per-rank aux blocks (allToAllv split tables) joined the layout,
#: and the header's flags field now carries the opcode-space version —
#: a sidecar compiled under an older opcode space is a cache miss, so
#: pre-existing ``.tic`` files recompile instead of being decoded with
#: opcodes they never knew.
_TIC_VERSION = 2
_TIC_HEADER = struct.Struct("<8sHHI")   # magic, version, opcode space, n_ranks
_TIC_BLOCK = struct.Struct("<IQQI")     # rank, n_ops, n_src, n_aux
_TIC_AUX = struct.Struct("<QI")         # op index, split count


class CompiledProgram:
    """One rank's compiled op program (see the module docstring)."""

    __slots__ = ("rank", "ops", "arg", "vol", "vol2", "nsrc", "n_src",
                 "fused", "aux")

    def __init__(self, rank: int, ops: np.ndarray, arg: np.ndarray,
                 vol: np.ndarray, vol2: np.ndarray,
                 nsrc: Optional[np.ndarray] = None,
                 n_src: Optional[int] = None, fused: bool = False,
                 aux: Optional[Dict[int, np.ndarray]] = None) -> None:
        self.rank = rank
        self.ops = ops
        self.arg = arg
        self.vol = vol
        self.vol2 = vol2
        # Source-action multiplicity per op; None means all-ones (the
        # unfused program, where ops map 1:1 onto trace actions).
        self.nsrc = nsrc
        self.n_src = len(ops) if n_src is None else int(n_src)
        self.fused = fused
        # Variable-length payloads the fixed columns cannot hold: op
        # index -> float64 split table (allToAllv per-destination bytes;
        # ``arg`` holds the split count, ``vol`` the total).  None when
        # the program has no such ops — the common case costs nothing.
        self.aux = aux

    @property
    def n_ops(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "fused" if self.fused else "unfused"
        return (f"CompiledProgram(p{self.rank}, {self.n_ops} ops / "
                f"{self.n_src} actions, {tag})")


@dataclass
class CompileReport:
    """What one :func:`compile_source` call did (cold vs warm cache)."""

    n_ranks: int = 0
    n_ops: int = 0            # compiled ops across all ranks (unfused)
    n_src: int = 0            # source actions across all ranks
    cache_hits: int = 0       # ranks served from a fresh .tic sidecar
    cache_misses: int = 0     # ranks (re)compiled from source bytes
    wall_seconds: float = 0.0
    artifacts: List[str] = field(default_factory=list)  # sidecars touched


class _Builder:
    """Columnar accumulator for one rank's ops."""

    __slots__ = ("ops", "arg", "vol", "vol2", "aux")

    def __init__(self) -> None:
        self.ops: List[int] = []
        self.arg: List[int] = []
        self.vol: List[float] = []
        self.vol2: List[float] = []
        self.aux: Dict[int, List[float]] = {}

    def finish(self, rank: int) -> CompiledProgram:
        return CompiledProgram(
            rank,
            np.asarray(self.ops, dtype=np.uint8),
            np.asarray(self.arg, dtype=np.int32),
            np.asarray(self.vol, dtype=np.float64),
            np.asarray(self.vol2, dtype=np.float64),
            aux={i: np.asarray(v, dtype=np.float64)
                 for i, v in self.aux.items()} or None,
        )


def _compile_tokens(builder: _Builder, tokens: List[str], rank: int) -> None:
    """Append one trace line's op; mirrors the token-stream handlers'
    parsing (and their error wording) exactly."""
    try:
        name = tokens[1]
        code = OPCODE_OF.get(name)
        if code is None:
            raise ValueError(
                f"p{rank}: unregistered action {name!r}"
            )
        if (code == OP_COMPUTE or code == OP_BCAST
                or code == OP_ALLTOALL or code == OP_ALLGATHER):
            builder.arg.append(0)
            builder.vol.append(float(tokens[2]))
            builder.vol2.append(0.0)
        elif OP_SEND <= code <= OP_IRECV:
            builder.arg.append(int(tokens[2][1:]))
            builder.vol.append(float(tokens[3]))
            builder.vol2.append(0.0)
        elif (code == OP_REDUCE or code == OP_ALLREDUCE
                or code == OP_REDUCESCATTER):
            builder.arg.append(0)
            builder.vol.append(float(tokens[2]))
            builder.vol2.append(float(tokens[3]))
        elif code == OP_ALLTOALLV:
            total = float(tokens[2])
            splits = [float(t) for t in tokens[3:]]
            _check_splits(total, splits, rank)
            builder.aux[len(builder.ops)] = splits
            builder.arg.append(len(splits))
            builder.vol.append(total)
            builder.vol2.append(0.0)
        elif code == OP_COMM_SIZE:
            builder.arg.append(int(tokens[2]))
            builder.vol.append(0.0)
            builder.vol2.append(0.0)
        else:  # barrier / wait
            builder.arg.append(0)
            builder.vol.append(0.0)
            builder.vol2.append(0.0)
        builder.ops.append(code)
    except (IndexError, ValueError) as exc:
        if isinstance(exc, ValueError) and (
                "unregistered action" in str(exc)
                or "allToAllv" in str(exc)):
            raise
        raise ValueError(
            f"p{rank}: malformed trace line {' '.join(tokens)!r}"
        ) from None


def _check_splits(total: float, splits: List[float], rank: int) -> None:
    """The allToAllv consistency contract, worded like the token
    handlers': split sizes finite, non-negative, and summing to the
    declared total."""
    from .actions import SPLIT_SUM_ATOL, SPLIT_SUM_RTOL

    if not splits:
        raise ValueError(
            f"p{rank}: allToAllv needs at least one split size")
    for s in splits:
        if not math.isfinite(s) or s < 0:
            raise ValueError(
                f"p{rank}: allToAllv split sizes must be >= 0 and "
                f"finite, got {s}")
    s = math.fsum(splits)
    if abs(s - total) > SPLIT_SUM_ATOL + SPLIT_SUM_RTOL * abs(total):
        raise ValueError(
            f"p{rank}: allToAllv split sizes sum to {s:g} but the "
            f"total says {total:g} — inconsistent record")


def _compile_actions(actions, rank: int) -> CompiledProgram:
    """Compile a stream of :class:`~repro.core.actions.Action` objects."""
    builder = _Builder()
    ops = builder.ops
    arg = builder.arg
    vol = builder.vol
    vol2 = builder.vol2
    for action in actions:
        code = OPCODE_OF[action.name]
        if OP_SEND <= code <= OP_IRECV:
            arg.append(action.peer)
            vol.append(action.volume)
            vol2.append(0.0)
        elif (code == OP_COMPUTE or code == OP_BCAST
                or code == OP_ALLTOALL or code == OP_ALLGATHER):
            arg.append(0)
            vol.append(action.volume)
            vol2.append(0.0)
        elif (code == OP_REDUCE or code == OP_ALLREDUCE
                or code == OP_REDUCESCATTER):
            arg.append(0)
            vol.append(action.vcomm)
            vol2.append(action.vcomp)
        elif code == OP_ALLTOALLV:
            builder.aux[len(ops)] = list(action.splits)
            arg.append(len(action.splits))
            vol.append(action.total)
            vol2.append(0.0)
        elif code == OP_COMM_SIZE:
            arg.append(action.size)
            vol.append(0.0)
            vol2.append(0.0)
        else:
            arg.append(0)
            vol.append(0.0)
            vol2.append(0.0)
        ops.append(code)
    return builder.finish(rank)


def _compile_text_file(path: str, rank: int) -> CompiledProgram:
    builder = _Builder()
    opener = gzip.open if path.endswith(".gz") else open
    prefix = f"p{rank}"
    with opener(path, "rt", encoding="ascii") as handle:
        for line in handle:
            tokens = line.split()
            if not tokens or tokens[0].startswith("#"):
                continue
            if tokens[0] != prefix:
                raise ValueError(
                    f"{path}: line for {tokens[0]} in trace of p{rank}"
                )
            _compile_tokens(builder, tokens, rank)
    return builder.finish(rank)


def _compile_rank_file(path: str, rank: int) -> CompiledProgram:
    if path.endswith(".btrace"):
        from .binfmt import read_binary_trace
        return _compile_actions(read_binary_trace(path), rank)
    return _compile_text_file(path, rank)


# ---------------------------------------------------------------------------
# Compute fusion
# ---------------------------------------------------------------------------
def fuse_computes(prog: CompiledProgram) -> CompiledProgram:
    """Collapse runs of consecutive ``compute`` ops into single ops.

    The fused op's volume is the run's sum and its ``nsrc`` the run
    length, so per-action-type telemetry totals are preserved exactly.
    Returns a program with an ``nsrc`` column even when nothing fused
    (all-ones), so the driver's accounting is uniform.
    """
    if prog.fused:
        return prog
    ops = prog.ops
    n = len(ops)
    if n == 0:
        return CompiledProgram(prog.rank, ops, prog.arg, prog.vol,
                               prog.vol2,
                               nsrc=np.zeros(0, dtype=np.uint32),
                               n_src=0, fused=True, aux=prog.aux)
    is_comp = ops == OP_COMPUTE
    prev_comp = np.empty(n, dtype=bool)
    prev_comp[0] = False
    prev_comp[1:] = is_comp[:-1]
    keep = np.nonzero(~(is_comp & prev_comp))[0]
    if len(keep) == n:
        nsrc = np.ones(n, dtype=np.uint32)
        return CompiledProgram(prog.rank, ops, prog.arg, prog.vol,
                               prog.vol2, nsrc=nsrc, n_src=n, fused=True,
                               aux=prog.aux)
    nsrc = np.diff(np.append(keep, n)).astype(np.uint32)
    # Aux keys index ops; re-address them through the keep map.  Every
    # aux op is a collective, never a compute, so each key survives in
    # keep and searchsorted (keep is sorted) finds its new position.
    aux = prog.aux
    if aux:
        aux = {int(np.searchsorted(keep, k)): v for k, v in aux.items()}
    return CompiledProgram(
        prog.rank,
        ops[keep],
        prog.arg[keep],
        np.add.reduceat(prog.vol, keep),
        prog.vol2[keep],
        nsrc=nsrc,
        n_src=n,
        fused=True,
        aux=aux,
    )


# ---------------------------------------------------------------------------
# Diagnostics: format one op back into trace-line tokens
# ---------------------------------------------------------------------------
def op_tokens(prog: CompiledProgram, index: int) -> List[str]:
    """The trace-line token list of op ``index`` — built lazily for
    deadlock/fault diagnostics only, never on the replay hot path.  A
    fused compute renders as the summed compute it executes as."""
    code = int(prog.ops[index])
    name = NAME_OF_OPCODE[code]
    head = [f"p{prog.rank}", name]
    if (code == OP_COMPUTE or code == OP_BCAST
            or code == OP_ALLTOALL or code == OP_ALLGATHER):
        return head + [format_volume(float(prog.vol[index]))]
    if OP_SEND <= code <= OP_IRECV:
        return head + [f"p{int(prog.arg[index])}",
                       format_volume(float(prog.vol[index]))]
    if (code == OP_REDUCE or code == OP_ALLREDUCE
            or code == OP_REDUCESCATTER):
        return head + [format_volume(float(prog.vol[index])),
                       format_volume(float(prog.vol2[index]))]
    if code == OP_ALLTOALLV:
        splits = (prog.aux or {}).get(index)
        tail = ([format_volume(float(s)) for s in splits]
                if splits is not None else [])
        return head + [format_volume(float(prog.vol[index]))] + tail
    if code == OP_COMM_SIZE:
        return head + [str(int(prog.arg[index]))]
    return head  # barrier / wait


# ---------------------------------------------------------------------------
# .tic sidecar I/O
# ---------------------------------------------------------------------------
def tic_path_for(source_path: str) -> str:
    """Sidecar path of a trace file (``SG_process3.trace`` ->
    ``SG_process3.trace.tic``)."""
    return source_path + TIC_SUFFIX


def _digest_file(path: str) -> bytes:
    h = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            h.update(chunk)
    return h.digest()


#: Directories whose sidecar writes already failed once: the first
#: failure gets a debug-level note, the rest stay silent.  A read-only
#: 1024-rank trace directory would otherwise be 1024 chances to spam.
_TIC_WRITE_FAILED_DIRS: set = set()


def _write_tic(path: str, programs: List[CompiledProgram],
               source_digest: bytes) -> bool:
    """Write a sidecar (best-effort: a read-only trace directory just
    means no disk cache, never a failed replay — and never a fallback
    to the token driver; the compiled programs live in memory)."""
    try:
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(_TIC_HEADER.pack(_TIC_MAGIC, _TIC_VERSION,
                                          OPCODE_SPACE_VERSION,
                                          len(programs)))
            handle.write(source_digest)
            for prog in programs:
                aux = prog.aux or {}
                handle.write(_TIC_BLOCK.pack(prog.rank, prog.n_ops,
                                             prog.n_src, len(aux)))
                handle.write(np.ascontiguousarray(prog.ops).tobytes())
                handle.write(np.ascontiguousarray(
                    prog.arg, dtype="<i4").tobytes())
                handle.write(np.ascontiguousarray(
                    prog.vol, dtype="<f8").tobytes())
                handle.write(np.ascontiguousarray(
                    prog.vol2, dtype="<f8").tobytes())
                for index in sorted(aux):
                    splits = np.ascontiguousarray(aux[index], dtype="<f8")
                    handle.write(_TIC_AUX.pack(index, len(splits)))
                    handle.write(splits.tobytes())
        os.replace(tmp, path)
        return True
    except OSError as exc:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        directory = os.path.dirname(os.path.abspath(path))
        if directory not in _TIC_WRITE_FAILED_DIRS:
            _TIC_WRITE_FAILED_DIRS.add(directory)
            logging.getLogger(__name__).debug(
                "cannot cache compiled programs under %s (%s); replay "
                "proceeds compiled, recompiling on every run",
                directory, exc,
            )
        return False


def _load_tic(path: str,
              source_digest: bytes) -> Optional[List[CompiledProgram]]:
    """Load a sidecar if it exists and matches the source bytes; any
    mismatch or corruption is a cache miss, never an error."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError:
        return None
    try:
        if len(data) < _TIC_HEADER.size + 32:
            return None
        magic, version, opspace, n_ranks = _TIC_HEADER.unpack_from(data, 0)
        if (magic != _TIC_MAGIC or version != _TIC_VERSION
                or opspace != OPCODE_SPACE_VERSION):
            # A sidecar from an older layout *or* an older opcode space
            # (pre-v2 files wrote 0 here) is a silent miss: recompile
            # rather than decode opcodes the writer never knew about.
            return None
        pos = _TIC_HEADER.size
        if data[pos:pos + 32] != source_digest:
            return None  # source bytes changed: rebuild
        pos += 32
        programs = []
        for _ in range(n_ranks):
            rank, n_ops, n_src, n_aux = _TIC_BLOCK.unpack_from(data, pos)
            pos += _TIC_BLOCK.size
            ops = np.frombuffer(data, dtype=np.uint8, count=n_ops,
                                offset=pos).copy()
            pos += n_ops
            arg = np.frombuffer(data, dtype="<i4", count=n_ops,
                                offset=pos).astype(np.int32, copy=False)
            pos += 4 * n_ops
            vol = np.frombuffer(data, dtype="<f8", count=n_ops,
                                offset=pos).astype(np.float64, copy=False)
            pos += 8 * n_ops
            vol2 = np.frombuffer(data, dtype="<f8", count=n_ops,
                                 offset=pos).astype(np.float64, copy=False)
            pos += 8 * n_ops
            aux: Optional[Dict[int, np.ndarray]] = None
            for _a in range(n_aux):
                index, count = _TIC_AUX.unpack_from(data, pos)
                pos += _TIC_AUX.size
                splits = np.frombuffer(data, dtype="<f8", count=count,
                                       offset=pos).astype(np.float64,
                                                          copy=False)
                if len(splits) != count:
                    return None
                pos += 8 * count
                if aux is None:
                    aux = {}
                aux[int(index)] = splits
            programs.append(CompiledProgram(rank, ops, arg, vol, vol2,
                                            n_src=n_src, aux=aux))
        return programs
    except (struct.error, ValueError):
        return None


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------
def compile_source(source, cache: bool = True,
                   force: bool = False
                   ) -> Tuple[List[CompiledProgram], CompileReport]:
    """Compile a trace source into per-rank programs.

    ``source`` is an :class:`~repro.core.trace.InMemoryTrace`, a trace
    directory, or a merged trace file — the same sources
    :meth:`TraceReplayer.replay` accepts.  Path sources use the ``.tic``
    sidecar cache (unless ``cache`` is False); ``force`` recompiles even
    when a fresh sidecar exists (and refreshes it).
    """
    from .trace import InMemoryTrace

    t0 = time.perf_counter()
    report = CompileReport()
    if isinstance(source, InMemoryTrace):
        ranks = source.ranks()
        if ranks != list(range(len(ranks))):
            raise ValueError(
                f"trace ranks are not contiguous: {ranks[:10]}"
            )
        programs = [_compile_actions(source.actions_of(rank), rank)
                    for rank in ranks]
        report.cache_misses = len(programs)
    elif isinstance(source, (str, os.PathLike)):
        path = os.fspath(source)
        if os.path.isdir(path):
            programs = _compile_dir(path, cache, force, report)
        else:
            programs = _compile_merged(path, cache, force, report)
    else:
        raise TypeError(
            f"unsupported trace source {type(source).__name__}; pass an "
            "InMemoryTrace, a trace directory, or a merged trace file"
        )
    report.n_ranks = len(programs)
    report.n_ops = sum(p.n_ops for p in programs)
    report.n_src = sum(p.n_src for p in programs)
    report.wall_seconds = time.perf_counter() - t0
    return programs, report


def _compile_dir(directory: str, cache: bool, force: bool,
                 report: CompileReport) -> List[CompiledProgram]:
    from .trace import discover_trace_paths

    programs = []
    for rank, path in enumerate(discover_trace_paths(directory)):
        sidecar = tic_path_for(path)
        digest = _digest_file(path) if cache else b""
        loaded = None
        if cache and not force:
            loaded = _load_tic(sidecar, digest)
        if loaded is not None and len(loaded) == 1:
            report.cache_hits += 1
            prog = loaded[0]
            prog.rank = rank
        else:
            report.cache_misses += 1
            prog = _compile_rank_file(path, rank)
            if cache and _write_tic(sidecar, [prog], digest):
                report.artifacts.append(sidecar)
        programs.append(prog)
    return programs


def _compile_merged(path: str, cache: bool, force: bool,
                    report: CompileReport) -> List[CompiledProgram]:
    sidecar = tic_path_for(path)
    digest = _digest_file(path) if cache else b""
    if cache and not force:
        loaded = _load_tic(sidecar, digest)
        if loaded is not None:
            report.cache_hits += len(loaded)
            return loaded
    opener = gzip.open if path.endswith(".gz") else open
    builders: Dict[int, _Builder] = {}
    with opener(path, "rt", encoding="ascii") as handle:
        for line in handle:
            tokens = line.split()
            if not tokens or tokens[0].startswith("#"):
                continue
            rank = int(tokens[0][1:])
            builder = builders.get(rank)
            if builder is None:
                builder = builders[rank] = _Builder()
            _compile_tokens(builder, tokens, rank)
    rank_list = sorted(builders)
    if rank_list != list(range(len(rank_list))):
        raise ValueError(
            f"{path}: ranks are not contiguous: {rank_list[:10]}"
        )
    programs = [builders[rank].finish(rank) for rank in rank_list]
    report.cache_misses += len(programs)
    if cache and _write_tic(sidecar, programs, digest):
        report.artifacts.append(sidecar)
    return programs
