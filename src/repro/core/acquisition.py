"""The four-step acquisition process (§4, Fig. 2) and its modes (§4.2).

Steps: instrument the application (attach a Tracer), execute it under a
deployment chosen by the *acquisition mode*, extract time-independent
traces with tau2simgrid, and gather them on one node.

Modes (Table 2's columns):

* ``R`` — Regular: one rank per CPU, the only mode timed traces allow.
* ``F-x`` — Folding: ``x`` ranks per CPU; fewer nodes, ~x-times slower.
* ``S-y`` — Scattering: ranks spread over ``y`` sites (clusters).
* ``SF-(u,v)`` — Scattering and Folding combined.

Because the traces are time-independent, every mode yields (modulo the
<1 % hardware-counter wobble) *the same* trace — the invariance the last
paragraph of §6.2 demonstrates, covered by an integration test here.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..extract import ExtractionReport, tau2simgrid
from ..simkernel import Host, Platform
from ..simkernel.pwl import DEFAULT_MPI_MODEL, PiecewiseLinearModel
from ..smpi import MpiRuntime
from ..tracer import TauArchive, Tracer, VirtualCounterBank
from .gather import GatherResult, simulate_gather

__all__ = ["AcquisitionMode", "AcquisitionResult", "build_deployment",
           "acquire"]

_MODE_RE = re.compile(
    r"^(?:R|F-(?P<f>\d+)|S-(?P<s>\d+)|SF-\((?P<u>\d+),(?P<v>\d+)\))$"
)


@dataclass(frozen=True)
class AcquisitionMode:
    """folding = ranks per CPU, sites = clusters used (1 each for Regular)."""

    folding: int = 1
    sites: int = 1

    def __post_init__(self) -> None:
        if self.folding < 1 or self.sites < 1:
            raise ValueError("folding and sites must be >= 1")

    @property
    def label(self) -> str:
        """Table 2's naming: R, F-x, S-y, SF-(u,v)."""
        if self.folding == 1 and self.sites == 1:
            return "R"
        if self.sites == 1:
            return f"F-{self.folding}"
        if self.folding == 1:
            return f"S-{self.sites}"
        return f"SF-({self.sites},{self.folding})"

    @classmethod
    def parse(cls, label: str) -> "AcquisitionMode":
        match = _MODE_RE.match(label.strip())
        if match is None:
            raise ValueError(
                f"bad acquisition mode {label!r}; expected R, F-<x>, "
                "S-<y>, or SF-(<u>,<v>)"
            )
        groups = match.groupdict()
        if groups["f"]:
            return cls(folding=int(groups["f"]))
        if groups["s"]:
            return cls(sites=int(groups["s"]))
        if groups["u"]:
            return cls(sites=int(groups["u"]), folding=int(groups["v"]))
        return cls()


def build_deployment(
    platform: Platform,
    n_ranks: int,
    mode: AcquisitionMode = AcquisitionMode(),
    clusters: Optional[Sequence[str]] = None,
) -> List[Host]:
    """Map ranks to hosts per the acquisition mode.

    Scattering splits the rank range into contiguous blocks across the
    first ``mode.sites`` clusters (``clusters`` overrides the order);
    folding packs ``mode.folding`` consecutive ranks per host.
    """
    names = list(clusters) if clusters is not None else list(platform.clusters)
    if mode.sites > len(names):
        raise ValueError(
            f"mode {mode.label} needs {mode.sites} clusters, platform has "
            f"{len(names)}"
        )
    site_names = names[: mode.sites]
    base, extra = divmod(n_ranks, mode.sites)
    deployment: List[Host] = []
    for idx, cname in enumerate(site_names):
        block = base + (1 if idx < extra else 0)
        hosts = platform.clusters[cname].hosts
        needed = (block + mode.folding - 1) // mode.folding
        if needed > len(hosts):
            raise ValueError(
                f"cluster {cname!r} has {len(hosts)} hosts; mode "
                f"{mode.label} needs {needed} for {block} ranks"
            )
        deployment.extend(hosts[r // mode.folding] for r in range(block))
    return deployment


@dataclass
class AcquisitionResult:
    """Everything the four steps produced, with their costs."""

    mode_label: str
    n_ranks: int
    application_time: Optional[float]    # uninstrumented simulated run
    execution_time: float                # instrumented simulated run
    tau_archive: TauArchive              # timed-trace sizes
    extraction: Optional[ExtractionReport]  # None when files were not written
    gather: Optional[GatherResult]
    trace_dir: Optional[str]             # where SG_process*.trace landed

    @property
    def tracing_overhead(self) -> Optional[float]:
        if self.application_time is None:
            return None
        return self.execution_time - self.application_time


def acquire(
    program,
    platform: Platform,
    n_ranks: int,
    mode: AcquisitionMode = AcquisitionMode(),
    workdir: Optional[str] = None,
    measure_application: bool = True,
    gather_arity: int = 4,
    papi_jitter: float = 0.0,
    papi_seed: int = 0,
    comm_model: PiecewiseLinearModel = DEFAULT_MPI_MODEL,
    extraction_processes: int = 1,
    tracer_factory: Optional[Callable[[Optional[str]], Tracer]] = None,
) -> AcquisitionResult:
    """Run the full acquisition pipeline for ``program`` on ``platform``.

    With ``workdir`` set, TAU trace files are really written under
    ``<workdir>/tau`` and time-independent traces extracted into
    ``<workdir>/ti`` (ready for :class:`~repro.core.replay.TraceReplayer`).
    With ``workdir=None`` the tracer runs in size-accounting mode:
    execution times and timed-trace sizes are produced, but no extraction
    happens (the paper-scale mode used for Table 2's timings).
    """
    deployment = build_deployment(platform, n_ranks, mode)

    application_time = None
    if measure_application:
        bare = MpiRuntime(platform, deployment, comm_model=comm_model,
                          papi=VirtualCounterBank(n_ranks))
        application_time = bare.run(program).time

    tau_dir = os.path.join(workdir, "tau") if workdir is not None else None
    tracer = (tracer_factory(tau_dir) if tracer_factory is not None
              else Tracer(tau_dir))
    papi = VirtualCounterBank(n_ranks, jitter=papi_jitter, seed=papi_seed)
    runtime = MpiRuntime(platform, deployment, comm_model=comm_model,
                         hooks=tracer, papi=papi)
    execution_time = runtime.run(program).time
    archive = tracer.archive

    extraction = None
    gather = None
    trace_dir = None
    if workdir is not None:
        trace_dir = os.path.join(workdir, "ti")
        extraction = tau2simgrid(tau_dir, n_ranks, trace_dir,
                                 processes=extraction_processes)
        # Gathering: the per-*node* TI trace volumes funnel to the first
        # node of the deployment over a K-nomial tree.
        node_hosts: List[Host] = []
        node_bytes: Dict[int, float] = {}
        host_index: Dict[int, int] = {}
        per_rank_bytes = _per_rank_ti_bytes(extraction)
        for rank, host in enumerate(deployment):
            idx = host_index.get(id(host))
            if idx is None:
                idx = len(node_hosts)
                host_index[id(host)] = idx
                node_hosts.append(host)
                node_bytes[idx] = 0.0
            node_bytes[idx] += per_rank_bytes[rank]
        gather = simulate_gather(
            platform, node_hosts,
            [node_bytes[i] for i in range(len(node_hosts))],
            arity=gather_arity,
        )
    return AcquisitionResult(
        mode_label=mode.label,
        n_ranks=n_ranks,
        application_time=application_time,
        execution_time=execution_time,
        tau_archive=archive,
        extraction=extraction,
        gather=gather,
        trace_dir=trace_dir,
    )


def _per_rank_ti_bytes(extraction: ExtractionReport) -> List[float]:
    """Approximate per-rank TI bytes from per-rank action counts (exact
    totals are known; the split only feeds the gather simulation)."""
    total_actions = max(1, extraction.n_actions)
    return [
        extraction.n_bytes * (count / total_actions)
        for count in extraction.per_rank_actions
    ]
