"""Phase-batched collective replay: one dependency graph per collective.

The per-rank generator protocol prices a binomial collective with ~4
generator resumptions, two mailbox matches and one request object per
tree edge.  When every rank of the communicator reaches the *same*
synchronizing collective (``allReduce``/``barrier``), none of that
machinery affects the outcome: the flows a binomial reduce+bcast starts,
their start instants and the constraints they cross are fully determined
by the ranks' entry times and the tree plans.  This module builds that
structure directly — a dependency graph of kernel activities wired with
completion callbacks — and parks each rank on a single waitable until
its final protocol step fires.

Exactness is by construction, not approximation: the graph starts the
same :class:`~repro.simkernel.activity.CommActivity`/``ExecActivity``
set at the same simulated instants as the generator protocol would
(§"replay-performance" docs walk the argument), so the fluid model
evolves identically and results agree with the sequential driver to
float rounding.  The flows bypass the mailbox, which is also why the
batched path is restricted to *synchronizing* collectives: their tag
namespace is private per collective, so no FIFO-matching interleaving
with surrounding point-to-point traffic exists to preserve.

Protocol semantics mirrored from :mod:`repro.simkernel.mailbox` and
:mod:`repro.smpi.collectives`:

* eager send (size <= eager threshold): the flow starts at the sender's
  protocol instant and the sender continues immediately (buffered send);
* rendezvous send: the flow starts when both sides have reached the
  edge (max of sender instant and receiver posting instant) and the
  sender continues at arrival;
* a recv completes at max(posting instant, flow arrival);
* reduce receives are sequential per rank, each followed by the
  operator's flop burst; bcast child sends are waited one at a time
  (instantaneous chaining under eager, arrival-chained under
  rendezvous) — exactly :func:`repro.smpi.collectives.binomial_reduce`
  / ``binomial_bcast`` rooted at rank 0.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..simkernel.activity import CommActivity, ExecActivity, Waitable
from ..smpi.collectives import bcast_plan, reduce_plan

__all__ = ["CollectiveBatcher", "batch_eligible"]


def batch_eligible(replayer, n_ranks: int) -> bool:
    """Static gate: can this replay batch its synchronizing collectives?

    The graph reproduces the one-rank-per-host, inflation-free protocol;
    anything else (folded ranks sharing a CPU, efficiency/sharing
    models, flat collectives, fault plans) stays on the generator path.
    The gate failing silently disables batching — it never fails a
    replay that the sequential driver would run.
    """
    if replayer.collective_algorithm != "binomial":
        return False
    if replayer.fault_plan is not None:
        return False
    hosts = replayer.deployment[:n_ranks]
    if len({id(h) for h in hosts}) != len(hosts):
        return False
    return all(h.efficiency_model is None and h.sharing_model is None
               for h in hosts)


class _Node(Waitable):
    """A graph node: completes when ``need`` dependencies have fired,
    then runs its action (start a flow, start a flop burst) and notifies
    dependents.  Completion goes through the engine so parked processes
    wake like any other waitable."""

    __slots__ = ("engine", "need", "action")

    def __init__(self, engine, need: int,
                 action: Optional[Callable[[], None]] = None) -> None:
        super().__init__()
        self.engine = engine
        self.need = need
        self.action = action

    def satisfy(self, _source=None) -> None:
        self.need -= 1
        if self.need == 0:
            if self.action is not None:
                self.action()
            self.engine.complete_waitable(self)


class _Flow:
    """One directed tree edge's data flow, started lazily by the graph."""

    __slots__ = ("graph", "src", "dst", "nbytes", "eager", "done", "pending")

    def __init__(self, graph: "_CollectiveGraph", src: int, dst: int,
                 nbytes: float) -> None:
        self.graph = graph
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.eager = nbytes <= graph.batcher.eager_threshold
        # Rendezvous only: sides (sender reached, receiver posted) still
        # outstanding before the flow may start.
        self.pending = 2
        # Fires at flow arrival; recv completion and (under rendezvous)
        # the sender's continuation hang off it.
        self.done = _Node(graph.batcher.engine, 1)

    def side_ready(self, _source=None) -> None:
        self.pending -= 1
        if self.pending == 0:
            self.start()

    def start(self, _source=None) -> None:
        batcher = self.graph.batcher
        links, latency, bw_factor = batcher.transfer_params(
            self.src, self.dst, self.nbytes)
        act = CommActivity(
            links, self.nbytes, latency=latency, rate_factor=bw_factor,
            name=f"coll{self.graph.seq}:{self.src}->{self.dst}",
        )
        act.on_complete(self._arrived)
        batcher.engine.start_activity(act)

    def _arrived(self, _act) -> None:
        observer = self.graph.batcher.flow_observer
        if observer is not None:
            observer(self.src, self.dst)
        self.done.satisfy()


class _CollectiveGraph:
    """The batched execution of one collective instance."""

    __slots__ = ("batcher", "seq", "kind", "nbytes", "flops", "size",
                 "entries", "exits", "remaining")

    def __init__(self, batcher: "CollectiveBatcher", seq: int, kind: str,
                 nbytes: float, flops: float, size: int) -> None:
        self.batcher = batcher
        self.seq = seq
        self.kind = kind
        self.nbytes = nbytes
        self.flops = flops
        self.size = size
        self.remaining = size
        engine = batcher.engine
        self.entries: List[_Node] = [_Node(engine, 1) for _ in range(size)]
        self.exits: List[_Node] = []
        self._build()

    def check(self, kind: str, nbytes: float, flops: float,
              size: int) -> None:
        if (kind, nbytes, flops, size) != (self.kind, self.nbytes,
                                           self.flops, self.size):
            raise ValueError(
                f"collective #{self.seq} mismatch across ranks: "
                f"({self.kind}, {self.nbytes}, {self.flops}, "
                f"size={self.size}) vs ({kind}, {nbytes}, {flops}, "
                f"size={size}) — the trace is inconsistent"
            )

    def enter(self, rank: int) -> _Node:
        """Rank ``rank`` reached the collective *now*: release its entry
        node and hand back the exit node it must park on."""
        self.entries[rank].satisfy()
        return self.exits[rank]

    # -- graph construction -------------------------------------------
    def _build(self) -> None:
        engine = self.batcher.engine
        nbytes = self.nbytes
        flops = self.flops
        size = self.size
        # Directed tree edges, one flow each: reduce edges r->parent(r),
        # bcast edges parent(r)->r (the trees mirror, so indexing both
        # by the non-root endpoint covers every edge exactly once).
        redge: Dict[int, _Flow] = {}
        bedge: Dict[int, _Flow] = {}
        plans = []
        for rank in range(size):
            children, parent = reduce_plan(rank, size, 0)
            _, bchildren = bcast_plan(rank, size, 0)
            plans.append((children, parent, bchildren))
            if parent is not None:
                redge[rank] = _Flow(self, rank, parent, nbytes)
                bedge[rank] = _Flow(self, parent, rank, nbytes)
        for rank in range(size):
            children, parent, bchildren = plans[rank]
            cur: _Node = self.entries[rank]
            # Reduce phase: recv each child in order, then the operator.
            for child in children:
                flow = redge[child]
                cur = self._recv_step(cur, flow)
                if flops > 0.0:
                    cur = self._exec_step(cur, rank, flops)
            if parent is not None:
                cur = self._send_step(cur, redge[rank])
                # Bcast phase, non-root: recv the result from the parent.
                cur = self._recv_step(cur, bedge[rank])
            for child in bchildren:
                cur = self._send_step(cur, bedge[child])
            exit_node = _Node(engine, 1, action=self._retire)
            cur.on_complete(exit_node.satisfy)
            self.exits.append(exit_node)

    def _recv_step(self, cur: _Node, flow: _Flow) -> _Node:
        """Post a recv at ``cur``; completes at max(post, arrival)."""
        if not flow.eager:
            # Rendezvous: the flow needs the receiver posted too.
            cur.on_complete(flow.side_ready)
        recv_done = _Node(self.batcher.engine, 2)
        cur.on_complete(recv_done.satisfy)
        flow.done.on_complete(recv_done.satisfy)
        return recv_done

    def _send_step(self, cur: _Node, flow: _Flow) -> _Node:
        """Post isend+wait at ``cur``: eager continues instantly with the
        flow launched in the background; rendezvous continues at
        arrival."""
        if flow.eager:
            cur.on_complete(flow.start)
            return cur
        cur.on_complete(flow.side_ready)
        return flow.done

    def _exec_step(self, cur: _Node, rank: int, flops: float) -> _Node:
        engine = self.batcher.engine
        host = self.batcher.hosts[rank]
        exec_done = _Node(engine, 1)

        def start_exec(_source=None, host=host, exec_done=exec_done):
            amount = flops * host.work_inflation("reduce_op", flops)
            act = ExecActivity(host.cpu, amount, bound=host.speed)
            act.on_complete(exec_done.satisfy)
            engine.start_activity(act)

        cur.on_complete(start_exec)
        return exec_done

    def _retire(self) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            self.batcher._finished(self.seq)


class CollectiveBatcher:
    """Per-replay orchestrator for phase-batched collectives.

    One instance serves a whole replay; collective instances are keyed
    by the per-rank collective sequence number (all ranks of a
    consistent trace execute the same collective sequence — the first
    mismatch raises).  ``phase_advances`` counts retired batched
    collectives; the replayer publishes it through
    :class:`~repro.simkernel.telemetry.ReplayMetrics`.
    """

    def __init__(self, engine, transfer_params, hosts,
                 eager_threshold: float,
                 flow_observer=None) -> None:
        self.engine = engine
        #: ``(src_rank, dst_rank, size) -> (links, latency, rate_factor)``
        #: — the live mailbox's cached params in-process, a shadow-route
        #: resolver on the shard coordinator's throwaway engines.
        self.transfer_params = transfer_params
        self.hosts = hosts
        self.eager_threshold = eager_threshold
        #: Optional ``(src, dst)`` callback fired at each flow arrival;
        #: the shard coordinator records per-rank link-quiet times here.
        self.flow_observer = flow_observer
        self.phase_advances = 0
        self._graphs: Dict[int, _CollectiveGraph] = {}

    def arrive(self, rank: int, seq: int, kind: str, nbytes: float,
               flops: float, size: int) -> Waitable:
        """Rank ``rank`` reached collective ``seq`` at the current
        simulated instant.  Returns the waitable to park on."""
        if kind not in ("allReduce", "barrier"):
            # The batcher's dependency graphs encode exactly the binomial
            # reduce+bcast trees; any other collective (bcast, reduce,
            # allToAll(v), allGather, reduceScatter) must stay on the
            # generator protocols.  The drivers never route them here —
            # this guard turns a future mis-wiring into a loud error
            # instead of a silently wrong makespan.
            raise ValueError(
                f"phase batching cannot batch {kind!r} — only "
                "allReduce/barrier have batched trees; replay this "
                "collective through the generator protocols"
            )
        graph = self._graphs.get(seq)
        if graph is None:
            graph = _CollectiveGraph(self, seq, kind, nbytes, flops, size)
            self._graphs[seq] = graph
        else:
            graph.check(kind, nbytes, flops, size)
        return graph.enter(rank)

    def open_graph(self, seq: int, kind: str, nbytes: float, flops: float,
                   size: int) -> _CollectiveGraph:
        """Coordinator entry point: build (or fetch) a graph without an
        arriving rank; entries are then released by timers."""
        graph = self._graphs.get(seq)
        if graph is None:
            graph = _CollectiveGraph(self, seq, kind, nbytes, flops, size)
            self._graphs[seq] = graph
        return graph

    def _finished(self, seq: int) -> None:
        self.phase_advances += 1
        self._graphs.pop(seq, None)
