"""Binary time-independent trace format (the paper's §7 future work).

The paper closes with "we also aim at exploring techniques to reduce the
size of the traces, e.g., using a binary format".  This module is that
extension: a compact per-process encoding of the Table 1 action set.

Layout: a 16-byte header (magic ``TIBIN001``, version u16, reserved u16,
rank u32), then one record per action:

* one opcode byte — the action type, with the high bit set when a volume
  is not integral;
* integral volumes and ranks as LEB128 varints (most LU volumes fit in
  2-4 bytes);
* non-integral volumes as IEEE-754 doubles (the escape hatch).

Typical LU traces shrink ~4x vs the text format before gzip, and the
format round-trips exactly (including float volumes), so the replayer
accepts either representation.
"""

from __future__ import annotations

import os
import struct
from typing import Iterable, Iterator

from .actions import (
    Action,
    AllGather,
    AllReduce,
    AllToAll,
    AllToAllv,
    Barrier,
    Bcast,
    CommSize,
    Compute,
    Irecv,
    Isend,
    Recv,
    Reduce,
    ReduceScatter,
    Send,
    Wait,
)

__all__ = [
    "binary_trace_file_name",
    "write_binary_trace",
    "read_binary_trace",
    "encode_actions",
    "decode_actions",
    "OPCODE_OF",
    "NAME_OF_OPCODE",
    "OPCODE_SPACE_VERSION",
]

_MAGIC = b"TIBIN001"
_HEADER = struct.Struct("<8sHHI")  # magic, version, reserved, rank
_VERSION = 1
_FLOAT_FLAG = 0x80

# Opcode per action type (low 7 bits).
_OP_COMPUTE = 1
_OP_SEND = 2
_OP_ISEND = 3
_OP_RECV = 4
_OP_IRECV = 5
_OP_BCAST = 6
_OP_REDUCE = 7
_OP_ALLREDUCE = 8
_OP_BARRIER = 9
_OP_COMM_SIZE = 10
_OP_WAIT = 11
_OP_ALLTOALL = 12
_OP_ALLGATHER = 13
_OP_REDUCESCATTER = 14
_OP_ALLTOALLV = 15

#: Version of the opcode *space* (which opcodes exist and what their
#: payloads mean), independent of the container formats that embed it.
#: v1: the original Table 1 set (opcodes 1-11).
#: v2: the AI-workload collectives allToAll/allGather/reduceScatter/
#: allToAllv (opcodes 12-15).  Derived caches (the ``.tic`` sidecars of
#: :mod:`repro.core.compile`) key on this so programs compiled under an
#: older space recompile instead of mis-decoding new opcodes.
OPCODE_SPACE_VERSION = 2

#: Public opcode table: trace action keyword -> opcode.  Shared with the
#: trace compiler (:mod:`repro.core.compile`), whose columnar programs
#: use the same opcode space as the binary trace records, so the two
#: encodings can never drift apart.
OPCODE_OF = {
    "compute": _OP_COMPUTE,
    "send": _OP_SEND,
    "Isend": _OP_ISEND,
    "recv": _OP_RECV,
    "Irecv": _OP_IRECV,
    "bcast": _OP_BCAST,
    "reduce": _OP_REDUCE,
    "allReduce": _OP_ALLREDUCE,
    "barrier": _OP_BARRIER,
    "comm_size": _OP_COMM_SIZE,
    "wait": _OP_WAIT,
    "allToAll": _OP_ALLTOALL,
    "allGather": _OP_ALLGATHER,
    "reduceScatter": _OP_REDUCESCATTER,
    "allToAllv": _OP_ALLTOALLV,
}

#: Inverse table, opcode -> keyword (list-indexable: opcodes are dense
#: from 1; slot 0 is unused).
NAME_OF_OPCODE = [""] * (max(OPCODE_OF.values()) + 1)
for _name, _code in OPCODE_OF.items():
    NAME_OF_OPCODE[_code] = _name

_P2P_OPS = {
    _OP_SEND: Send, _OP_ISEND: Isend, _OP_RECV: Recv, _OP_IRECV: Irecv,
}
_P2P_CODES = {Send: _OP_SEND, Isend: _OP_ISEND, Recv: _OP_RECV,
              Irecv: _OP_IRECV}
_RED_OPS = {_OP_REDUCE: Reduce, _OP_ALLREDUCE: AllReduce,
            _OP_REDUCESCATTER: ReduceScatter}
_RED_CODES = {Reduce: _OP_REDUCE, AllReduce: _OP_ALLREDUCE,
              ReduceScatter: _OP_REDUCESCATTER}
_VOL_OPS = {_OP_BCAST: Bcast, _OP_ALLTOALL: AllToAll,
            _OP_ALLGATHER: AllGather}
_VOL_CODES = {Bcast: _OP_BCAST, AllToAll: _OP_ALLTOALL,
              AllGather: _OP_ALLGATHER}

#: Guard against absurd split counts in corrupt allToAllv records: no
#: real communicator approaches this, and each split needs at least one
#: payload byte anyway, so a larger count is corruption by construction.
_MAX_SPLITS = 1 << 22


def binary_trace_file_name(rank: int) -> str:
    return f"SG_process{rank}.btrace"


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError(f"varints are unsigned, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(buf: bytes, pos: int) -> tuple:
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise ValueError("truncated varint in binary trace")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise ValueError("varint overflow in binary trace")


def _write_volume(out: bytearray, opcode: int, volume: float) -> None:
    if volume == int(volume) and 0 <= volume < 2 ** 63:
        out.append(opcode)
        _write_varint(out, int(volume))
    else:
        out.append(opcode | _FLOAT_FLAG)
        out += struct.pack("<d", volume)


def _read_volume(buf: bytes, pos: int, is_float: bool) -> tuple:
    if is_float:
        if pos + 8 > len(buf):
            raise ValueError("truncated float volume in binary trace")
        (value,) = struct.unpack_from("<d", buf, pos)
        return value, pos + 8
    value, pos = _read_varint(buf, pos)
    return float(value), pos


def encode_actions(actions: Iterable[Action]) -> bytes:
    """Encode one rank's actions (header excluded)."""
    out = bytearray()
    for action in actions:
        cls = type(action)
        if cls is Compute:
            _write_volume(out, _OP_COMPUTE, action.volume)
        elif cls in _P2P_CODES:
            opcode = _P2P_CODES[cls]
            # Peer first (always integral), then the volume.
            if action.volume == int(action.volume) and \
                    0 <= action.volume < 2 ** 63:
                out.append(opcode)
                _write_varint(out, action.peer)
                _write_varint(out, int(action.volume))
            else:
                out.append(opcode | _FLOAT_FLAG)
                _write_varint(out, action.peer)
                out += struct.pack("<d", action.volume)
        elif cls in _VOL_CODES:
            _write_volume(out, _VOL_CODES[cls], action.volume)
        elif cls is AllToAllv:
            # Varint split count, then total + splits — all varints when
            # integral, all doubles behind the float flag otherwise.
            values = (action.total,) + action.splits
            integral = all(v == int(v) and 0 <= v < 2 ** 63 for v in values)
            if integral:
                out.append(_OP_ALLTOALLV)
                _write_varint(out, len(action.splits))
                for v in values:
                    _write_varint(out, int(v))
            else:
                out.append(_OP_ALLTOALLV | _FLOAT_FLAG)
                _write_varint(out, len(action.splits))
                out += struct.pack(f"<{len(values)}d", *values)
        elif cls in _RED_CODES:
            opcode = _RED_CODES[cls]
            integral = (action.vcomm == int(action.vcomm)
                        and action.vcomp == int(action.vcomp)
                        and 0 <= action.vcomm < 2 ** 63
                        and 0 <= action.vcomp < 2 ** 63)
            if integral:
                out.append(opcode)
                _write_varint(out, int(action.vcomm))
                _write_varint(out, int(action.vcomp))
            else:
                out.append(opcode | _FLOAT_FLAG)
                out += struct.pack("<dd", action.vcomm, action.vcomp)
        elif cls is Barrier:
            out.append(_OP_BARRIER)
        elif cls is CommSize:
            out.append(_OP_COMM_SIZE)
            _write_varint(out, action.size)
        elif cls is Wait:
            out.append(_OP_WAIT)
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot encode {cls.__name__}")
    return bytes(out)


def _decode_record(buf: bytes, pos: int, rank: int) -> tuple:
    """Decode one record at ``pos``; returns ``(action, new_pos)``.

    Raises :class:`ValueError` when the buffer ends mid-record — the
    chunked reader catches that, refills, and retries, so a record split
    across read boundaries costs one retry, not a copy of the file.
    """
    byte = buf[pos]
    pos += 1
    opcode = byte & 0x7F
    is_float = bool(byte & _FLOAT_FLAG)
    if opcode == _OP_COMPUTE:
        volume, pos = _read_volume(buf, pos, is_float)
        return Compute(rank, volume), pos
    if opcode in _P2P_OPS:
        peer, pos = _read_varint(buf, pos)
        volume, pos = _read_volume(buf, pos, is_float)
        return _P2P_OPS[opcode](rank, peer, volume), pos
    if opcode in _VOL_OPS:
        volume, pos = _read_volume(buf, pos, is_float)
        return _VOL_OPS[opcode](rank, volume), pos
    if opcode == _OP_ALLTOALLV:
        count, pos = _read_varint(buf, pos)
        if count < 1 or count > _MAX_SPLITS:
            raise ValueError(
                f"allToAllv record declares {count} split sizes — "
                "inconsistent binary trace")
        if is_float:
            need = 8 * (count + 1)
            if pos + need > len(buf):
                raise ValueError("truncated allToAllv volumes")
            values = struct.unpack_from(f"<{count + 1}d", buf, pos)
            pos += need
            total, splits = values[0], values[1:]
        else:
            total, pos = _read_varint(buf, pos)
            splits = []
            for _ in range(count):
                s, pos = _read_varint(buf, pos)
                splits.append(float(s))
        # The constructor enforces the split-sum consistency contract
        # (ValueError, never a silently wrong volume).
        return AllToAllv(rank, float(total), tuple(splits)), pos
    if opcode in _RED_OPS:
        if is_float:
            if pos + 16 > len(buf):
                raise ValueError("truncated reduce volumes")
            vcomm, vcomp = struct.unpack_from("<dd", buf, pos)
            pos += 16
        else:
            vcomm, pos = _read_varint(buf, pos)
            vcomp, pos = _read_varint(buf, pos)
        return _RED_OPS[opcode](rank, float(vcomm), float(vcomp)), pos
    if opcode == _OP_BARRIER:
        return Barrier(rank), pos
    if opcode == _OP_COMM_SIZE:
        size, pos = _read_varint(buf, pos)
        return CommSize(rank, size), pos
    if opcode == _OP_WAIT:
        return Wait(rank), pos
    raise ValueError(f"unknown opcode {opcode} in binary trace")


def decode_actions(buf: bytes, rank: int) -> Iterator[Action]:
    """Decode one rank's action payload."""
    pos = 0
    while pos < len(buf):
        action, pos = _decode_record(buf, pos, rank)
        yield action


def write_binary_trace(actions: Iterable[Action], rank: int,
                       path: str) -> int:
    """Write one rank's binary trace; returns the byte count."""
    payload = encode_actions(actions)
    with open(path, "wb") as handle:
        handle.write(_HEADER.pack(_MAGIC, _VERSION, 0, rank))
        handle.write(payload)
    return _HEADER.size + len(payload)


#: Read granularity of :func:`read_binary_trace`.  64 KiB holds tens of
#: thousands of records (LU actions average 3-5 bytes), so the decoder's
#: working set is a constant regardless of trace size.
_CHUNK_SIZE = 1 << 16


def read_binary_trace(path: str,
                      chunk_size: int = _CHUNK_SIZE) -> Iterator[Action]:
    """Stream one rank's binary trace back as actions.

    The file is decoded in ``chunk_size`` slices: peak memory is one
    chunk (plus at most one partial record carried across the boundary),
    never the whole payload — this is what keeps a 1024-rank replay's
    ingestion at O(ranks) resident bytes.
    """
    with open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise ValueError(f"{path}: truncated header")
        magic, version, _, rank = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise ValueError(f"{path}: bad magic {magic!r}")
        if version != _VERSION:
            raise ValueError(f"{path}: unsupported version {version}")
        buf = b""
        pos = 0
        while True:
            if pos >= len(buf):
                buf = handle.read(chunk_size)
                pos = 0
                if not buf:
                    return
            try:
                action, pos = _decode_record(buf, pos, rank)
            except ValueError:
                # Record split across the chunk boundary (or genuinely
                # corrupt).  Refill and retry; only at end-of-file is the
                # error real.
                chunk = handle.read(chunk_size)
                if not chunk:
                    raise
                buf = buf[pos:] + chunk
                pos = 0
                continue
            yield action
