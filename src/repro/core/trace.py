"""Time-independent trace containers and I/O.

A *trace set* is the complete time-independent trace of one application
run: one action stream per MPI rank.  The paper stores either one file per
process (``SG_process<rank>.trace``, Fig. 2 — the layout produced by the
gathering step) or a single merged file (the Fig. 1 layout, handy for
small instances).  Both layouts are supported here, for reading and
writing.

Because trace size is itself an evaluation metric (Table 3, §6.5), writing
is routed through pluggable *sinks*; :class:`SizeAccountant` computes the
exact on-disk byte count and action count of a trace without writing it —
the byte layout is deterministic (see :func:`format_action`) — and tests
assert the accountant agrees with ``os.stat`` on really-written files.
"""

from __future__ import annotations

import gzip
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from .actions import Action, format_action, parse_action

__all__ = [
    "TraceSink",
    "InMemoryTrace",
    "FileTraceWriter",
    "SizeAccountant",
    "TeeSink",
    "SizeReport",
    "trace_file_name",
    "discover_trace_paths",
    "read_trace_file",
    "read_trace_dir",
    "stream_trace_dir",
    "read_merged_trace",
    "write_merged_trace",
    "estimate_gzip_ratio",
]


def trace_file_name(rank: int) -> str:
    """Per-process trace file name used throughout (paper Fig. 2)."""
    return f"SG_process{rank}.trace"


class TraceSink:
    """Receives the action stream of an application run."""

    def emit(self, action: Action) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class InMemoryTrace(TraceSink):
    """Keeps every action per rank; the workhorse for tests and replay."""

    def __init__(self) -> None:
        self.by_rank: Dict[int, List[Action]] = {}

    def emit(self, action: Action) -> None:
        self.by_rank.setdefault(action.rank, []).append(action)

    def ranks(self) -> List[int]:
        return sorted(self.by_rank)

    def actions_of(self, rank: int) -> List[Action]:
        return self.by_rank.get(rank, [])

    def n_actions(self) -> int:
        return sum(len(v) for v in self.by_rank.values())

    def lines_of(self, rank: int) -> List[str]:
        return [format_action(a) for a in self.actions_of(rank)]


@dataclass
class SizeReport:
    """Exact size/count of a time-independent trace set."""

    n_actions: int = 0
    n_bytes: int = 0
    per_rank_actions: Dict[int, int] = field(default_factory=dict)
    per_rank_bytes: Dict[int, int] = field(default_factory=dict)

    @property
    def mib(self) -> float:
        return self.n_bytes / (1024.0 * 1024.0)

    @property
    def gib(self) -> float:
        return self.n_bytes / (1024.0 ** 3)


class SizeAccountant(TraceSink):
    """Counts exactly what :class:`FileTraceWriter` would write.

    Each action costs ``len(format_action(a)) + 1`` bytes (the newline).
    """

    def __init__(self) -> None:
        self.report = SizeReport()

    def emit(self, action: Action) -> None:
        nbytes = len(format_action(action)) + 1
        rep = self.report
        rep.n_actions += 1
        rep.n_bytes += nbytes
        rep.per_rank_actions[action.rank] = (
            rep.per_rank_actions.get(action.rank, 0) + 1
        )
        rep.per_rank_bytes[action.rank] = (
            rep.per_rank_bytes.get(action.rank, 0) + nbytes
        )


class FileTraceWriter(TraceSink):
    """Writes one ``SG_process<rank>.trace`` per rank under ``directory``.

    With ``compress=True`` the files are gzip-compressed (the paper's
    future-work item on trace size; §6.5 reports the gzip ratio).
    """

    def __init__(self, directory: str, compress: bool = False) -> None:
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.compress = compress
        self._handles: Dict[int, object] = {}
        self.accountant = SizeAccountant()

    def path_of(self, rank: int) -> str:
        name = trace_file_name(rank) + (".gz" if self.compress else "")
        return os.path.join(self.directory, name)

    def _handle(self, rank: int):
        handle = self._handles.get(rank)
        if handle is None:
            path = self.path_of(rank)
            if self.compress:
                handle = gzip.open(path, "wt", encoding="ascii")
            else:
                handle = open(path, "w", encoding="ascii", buffering=1 << 16)
            self._handles[rank] = handle
        return handle

    def emit(self, action: Action) -> None:
        self._handle(action.rank).write(format_action(action) + "\n")
        self.accountant.emit(action)

    def close(self) -> None:
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()

    @property
    def report(self) -> SizeReport:
        """Uncompressed size report (bytes as written without gzip)."""
        return self.accountant.report


class TeeSink(TraceSink):
    """Duplicates the action stream to several sinks."""

    def __init__(self, *sinks: TraceSink) -> None:
        self.sinks = list(sinks)

    def emit(self, action: Action) -> None:
        for sink in self.sinks:
            sink.emit(action)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------

def _open_maybe_gzip(path: str):
    if path.endswith(".gz"):
        return gzip.open(path, "rt", encoding="ascii")
    return open(path, "r", encoding="ascii")


def read_trace_file(path: str, expect_rank: Optional[int] = None
                    ) -> Iterator[Action]:
    """Stream the actions of one per-process trace file."""
    with _open_maybe_gzip(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            action = parse_action(line)
            if expect_rank is not None and action.rank != expect_rank:
                raise ValueError(
                    f"{path}: found action of p{action.rank}, expected "
                    f"p{expect_rank}"
                )
            yield action


def discover_trace_paths(directory: str,
                         binary: bool = True) -> List[str]:
    """Per-rank trace paths in ``directory``, indexed by rank.

    Ranks are discovered densely from 0 (the Fig. 2 layout); each rank
    may be stored as ``SG_process<rank>.trace``, its ``.gz`` variant, or
    (with ``binary=True``) the ``.btrace`` binary format.  This is the
    single path-discovery used by both the eager readers here and the
    replayer's streaming ingestion, so the two can never disagree on
    which files make up a trace set.
    """
    from .binfmt import binary_trace_file_name

    paths: List[str] = []
    rank = 0
    while True:
        plain = os.path.join(directory, trace_file_name(rank))
        candidates = [plain, plain + ".gz"]
        if binary:
            candidates.append(
                os.path.join(directory, binary_trace_file_name(rank))
            )
        for path in candidates:
            if os.path.exists(path):
                paths.append(path)
                break
        else:
            break
        rank += 1
    if not paths:
        kinds = "[.gz|.btrace]" if binary else "[.gz]"
        raise FileNotFoundError(
            f"no {trace_file_name(0)}{kinds} found in {directory!r}"
        )
    return paths


def stream_trace_dir(directory: str) -> List[Iterator[Action]]:
    """One lazy action iterator per rank over a trace directory.

    Nothing is materialized: each iterator holds one open file (text or
    binary) and decodes on demand, so walking a 1024-rank trace set
    keeps O(ranks) state however many events the files hold.  Use
    :func:`read_trace_dir` when an indexable :class:`InMemoryTrace` is
    actually needed.
    """
    from .binfmt import read_binary_trace

    def stream(path: str, rank: int) -> Iterator[Action]:
        if path.endswith(".btrace"):
            return read_binary_trace(path)
        return read_trace_file(path, expect_rank=rank)

    return [stream(path, rank)
            for rank, path in enumerate(discover_trace_paths(directory))]


def read_trace_dir(directory: str) -> InMemoryTrace:
    """Load a directory of ``SG_process<rank>.trace[.gz]`` files."""
    trace = InMemoryTrace()
    for rank, path in enumerate(discover_trace_paths(directory,
                                                     binary=False)):
        for action in read_trace_file(path, expect_rank=rank):
            trace.emit(action)
    return trace


def read_merged_trace(path: str) -> InMemoryTrace:
    """Load a single merged trace file (the Fig. 1 layout)."""
    trace = InMemoryTrace()
    for action in read_trace_file(path):
        trace.emit(action)
    return trace


def write_merged_trace(trace: InMemoryTrace, path: str) -> int:
    """Write all ranks into one file, rank-major; returns bytes written."""
    nbytes = 0
    with open(path, "w", encoding="ascii") as handle:
        for rank in trace.ranks():
            for action in trace.actions_of(rank):
                line = format_action(action) + "\n"
                handle.write(line)
                nbytes += len(line)
    return nbytes


def estimate_gzip_ratio(
    lines: Iterable[str],
    sample_limit: int = 200_000,
    level: int = 6,
) -> float:
    """Compression ratio (plain/compressed) of a trace, from a sample.

    §6.5 reports the class-D trace compressing from 32.5 GiB to 1.2 GiB
    (ratio ~27).  Compressing tens of GiB to measure that is pointless:
    trace text is locally self-similar, so gzip's ratio on a large sample
    of lines converges to the full-file ratio.
    """
    sampled = []
    nbytes = 0
    for line in lines:
        sampled.append(line)
        nbytes += len(line) + 1
        if len(sampled) >= sample_limit:
            break
    if not sampled:
        raise ValueError("cannot estimate compression of an empty trace")
    blob = ("\n".join(sampled) + "\n").encode("ascii")
    compressed = gzip.compress(blob, compresslevel=level)
    return len(blob) / len(compressed)
