"""The time-independent trace replay tool (§5).

Inputs, as in the paper's Fig. 4: the time-independent trace(s), a
platform description, and a deployment (rank -> host).  Output: the
simulated execution time (and optionally a *timed trace* with the
simulated start/end instant of every action).

The replayer registers one handler per action keyword — the analogue of
``MSG_action_register`` — and drives one simulated process per rank over
its action stream — the analogue of ``MSG_action_trace_run``.  Handlers
receive the raw token list of the trace line (MSG passes an
``xbt_dynar_t`` of strings, §5), so user-defined actions can be plugged
in with :meth:`TraceReplayer.register_action`.

Replay semantics:

* ``compute v`` — execute ``v`` flops on the rank's host.
* ``send/recv`` — blocking point-to-point, matched by source rank through
  the kernel's eager/rendezvous protocol (the paper's MPI_Send mode
  switch).
* ``Isend`` — detached send: the flow is injected, nothing is awaited.
* ``Irecv``/``wait`` — Irecv posts a receive into the rank's pending
  queue; ``wait`` completes the *oldest* pending one (SimGrid's replay
  does the same, and the extractor mirrors it).
* ``bcast/reduce/allReduce/barrier`` — decomposed into point-to-point
  messages over binomial trees rooted at process 0 (§3), or flat trees
  with ``collective_algorithm="flat"`` (the ablation of the monolithic-
  collective simplification discussed in §2).
* ``comm_size`` — declares the communicator; required before the first
  collective (§3).
"""

from __future__ import annotations

import gzip
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from ..faults.plan import FaultPlan, LinkDegrade, LinkDown
from ..faults.report import FaultReport, RankFailure, build_fault_report
from ..simkernel import CommSystem, DeadlockError, Engine, Host, Platform, Telemetry
from ..simkernel.pwl import DEFAULT_MPI_MODEL, PiecewiseLinearModel
from ..smpi import collectives
from .batch import CollectiveBatcher, batch_eligible
from .binfmt import NAME_OF_OPCODE
from .compile import (
    OP_ALLGATHER,
    OP_ALLREDUCE,
    OP_ALLTOALL,
    OP_ALLTOALLV,
    OP_BARRIER,
    OP_BCAST,
    OP_COMM_SIZE,
    OP_COMPUTE,
    OP_IRECV,
    OP_ISEND,
    OP_RECV,
    OP_REDUCE,
    OP_REDUCESCATTER,
    OP_SEND,
    OP_WAIT,
    CompiledProgram,
    _check_splits,
    compile_source,
    fuse_computes,
    op_tokens,
)
from .trace import InMemoryTrace

__all__ = ["TraceReplayer", "ReplayResult"]


@dataclass
class ReplayResult:
    """Outcome of one replay: the paper's 'simulated execution time'."""

    simulated_time: float
    per_rank_time: List[float]
    n_ranks: int
    n_actions: int
    wall_seconds: float          # how long the replay itself took (Fig. 9)
    timed_trace: List[tuple] = field(default_factory=list)
    # Telemetry document (engine / comm / replay / per_rank sections);
    # None unless the replayer was built with collect_metrics=True.
    metrics: Optional[Dict] = None
    # Failure provenance (who died, who it blocked, lost progress);
    # None unless the replayer was built with a fault plan.
    fault_report: Optional[FaultReport] = None

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (f"ReplayResult(simulated={self.simulated_time:.4f}s, "
                f"ranks={self.n_ranks}, actions={self.n_actions}, "
                f"replay_wall={self.wall_seconds:.2f}s)")


class _RankContext:
    """Per-rank replay state handed to action handlers."""

    __slots__ = ("rank", "host", "pending_irecvs", "declared_size",
                 "coll_seq", "n_actions", "current_action")

    def __init__(self, rank: int, host: Host) -> None:
        self.rank = rank
        self.host = host
        self.pending_irecvs = deque()
        self.declared_size: Optional[int] = None
        self.coll_seq = 0
        self.n_actions = 0
        # Raw token list of the action being replayed; what the deadlock
        # report names when this rank is stuck.
        self.current_action: Optional[List[str]] = None

    def action_tokens(self) -> Optional[List[str]]:
        """Token list of the in-flight action (diagnostics only)."""
        return self.current_action

    # Adapter protocol for the collective algorithms ---------------------
    @property
    def size(self) -> int:
        return self.declared_size


class _CompiledRankContext(_RankContext):
    """Rank state for the compiled driver: instead of carrying the live
    token list (which the compiled path never materializes), it carries
    the op index and formats tokens back lazily — only when a deadlock
    or fault report actually needs to name the stuck action."""

    __slots__ = ("prog", "op_index")

    def __init__(self, rank: int, host: Host, prog: CompiledProgram) -> None:
        super().__init__(rank, host)
        self.prog = prog
        self.op_index: Optional[int] = None

    def action_tokens(self) -> Optional[List[str]]:
        if self.op_index is None:
            return None
        return op_tokens(self.prog, self.op_index)


class TraceReplayer:
    """Replays time-independent traces on a simulated platform."""

    #: Maximum lines the merged-file demux will buffer for any single
    #: rank before refusing (see :meth:`_merged_stream`).  Class-level so
    #: callers with genuinely skewed-but-small traces can raise it.
    merged_spill_limit = 1_000_000

    def __init__(
        self,
        platform: Platform,
        deployment: Sequence[Host],
        comm_model: PiecewiseLinearModel = DEFAULT_MPI_MODEL,
        eager_threshold: float = 65536,
        collective_algorithm: str = "binomial",
        record_timed_trace: bool = False,
        collect_metrics: bool = False,
        lmm_mode: str = "auto",
        fault_plan: Optional[FaultPlan] = None,
        fault_mode: str = "abort",
        compiled: str = "auto",
        batch_phases: bool = False,
        shards: int = 0,
        shard_halo: int = 0,
        lmm_incremental: bool = True,
    ) -> None:
        if not deployment:
            raise ValueError("deployment must map at least one rank")
        if shards < 0 or shard_halo < 0:
            raise ValueError("shards and shard_halo must be >= 0")
        if shards > 1:
            if record_timed_trace:
                raise ValueError(
                    "sharded replay does not record timed traces (the "
                    "compiled driver it builds on refuses them); use "
                    "shards=0 with record_timed_trace"
                )
            if compiled == "never":
                raise ValueError(
                    "sharded replay runs on the compiled driver; "
                    "shards>1 is incompatible with compiled='never'"
                )
            if collective_algorithm != "binomial":
                raise ValueError(
                    "sharded replay synchronizes shards at binomial "
                    "collectives; use collective_algorithm='binomial'"
                )
        if compiled not in ("auto", "always", "never"):
            raise ValueError(
                f"unknown compiled mode {compiled!r}; use 'auto', "
                "'always', or 'never'"
            )
        if collective_algorithm not in ("binomial", "flat"):
            raise ValueError(
                f"unknown collective algorithm {collective_algorithm!r}; "
                "use 'binomial' or 'flat'"
            )
        if fault_mode not in ("abort", "checkpoint-restart"):
            raise ValueError(
                f"unknown fault mode {fault_mode!r}; use 'abort' or "
                "'checkpoint-restart'"
            )
        if fault_plan is not None and fault_mode == "checkpoint-restart":
            if fault_plan.checkpoint is None:
                raise ValueError(
                    "checkpoint-restart mode needs a 'checkpoint' block "
                    "(interval/cost/restart) in the fault plan"
                )
            if any(isinstance(e, LinkDown) for e in fault_plan.events):
                raise ValueError(
                    "checkpoint-restart mode models host crashes "
                    "analytically and cannot model link_down events; use "
                    "abort mode (or link_degrade) for link outages"
                )
        self.fault_plan = fault_plan
        self.fault_mode = fault_mode
        self.platform = platform
        self.deployment = list(deployment)
        self.telemetry = Telemetry() if collect_metrics else None
        # ``lmm_mode`` selects the engine's max-min implementation:
        # "auto" (vectorized above the component-size cutoff),
        # "reference" (the pure-Python oracle), "vectorized" (always
        # NumPy), "native" (the optional Numba kernel; raises here when
        # the repro[native] extra is missing).  Exposed as
        # ``repro-replay --lmm``.  ``lmm_incremental`` gates the
        # certified incremental patch re-solve of large sharing groups
        # (on by default; the off switch exists for A/B benchmarking —
        # results are 1e-9-identical either way by construction).
        self.lmm_incremental = bool(lmm_incremental)
        self.engine = Engine(
            metrics=self.telemetry.engine if collect_metrics else None,
            lmm_mode=lmm_mode,
            incremental=lmm_incremental,
        )
        self.comms = CommSystem(
            self.engine,
            platform,
            dict(enumerate(self.deployment)),
            comm_model=comm_model,
            eager_threshold=eager_threshold,
            metrics=self.telemetry.comm if collect_metrics else None,
        )
        self.collective_algorithm = collective_algorithm
        self.record_timed_trace = record_timed_trace
        self.timed_trace: List[tuple] = []
        # ``compiled`` selects the replay driver: "auto" compiles path
        # sources (directories, merged files) into columnar op programs
        # and keeps in-memory traces on the token path; "always" forces
        # compilation; "never" forces the token path.  Exposed as
        # ``repro-replay --compiled/--no-compiled``.
        self.compiled = compiled
        # Phase batching: advance synchronizing collectives with one
        # dependency graph instead of per-rank protocol generators (see
        # repro.core.batch).  Silently inert when the replay is not
        # eligible (token path, flat collectives, fault plans, folded or
        # modeled hosts) — eligibility is checked per replay.
        self.batch_phases = batch_phases
        # Sharded replay: partition ranks into contiguous bands replayed
        # in forked worker processes, synchronized at collectives (see
        # repro.core.shard).  0/1 means in-process replay.  Fault plans
        # take the sequential path regardless — fault reports are then
        # byte-identical to unsharded runs by construction.
        self.shards = shards
        self.shard_halo = shard_halo
        self._custom_actions = False
        # CompileReport of the most recent compiled replay (None when the
        # token path ran).
        self.last_compile_report = None
        self._handlers: Dict[str, Callable] = {
            "compute": self._do_compute,
            "send": self._do_send,
            "Isend": self._do_isend,
            "recv": self._do_recv,
            "Irecv": self._do_irecv,
            "wait": self._do_wait,
            "bcast": self._do_bcast,
            "reduce": self._do_reduce,
            "allReduce": self._do_allreduce,
            "barrier": self._do_barrier,
            "comm_size": self._do_comm_size,
            "allToAll": self._do_alltoall,
            "allToAllv": self._do_alltoallv,
            "allGather": self._do_allgather,
            "reduceScatter": self._do_reducescatter,
        }

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def register_action(self, name: str,
                        handler: Callable[["_RankContext", List[str]],
                                          Iterator]) -> None:
        """The MSG_action_register analogue: bind a trace keyword to a
        generator handler ``handler(ctx, tokens)``.

        Custom actions only exist on the token path, so registering one
        pins this replayer to it (``compiled="always"`` then fails
        loudly rather than silently skipping the custom handler).
        """
        self._handlers[name] = handler
        self._custom_actions = True

    def replay(self, source) -> ReplayResult:
        """The MSG_action_trace_run analogue.

        ``source`` may be an :class:`InMemoryTrace`, a directory of
        ``SG_process<rank>.trace`` files, or a single merged trace file.
        With a fault plan, the result carries a
        :class:`~repro.faults.report.FaultReport`; without one, this is
        byte-for-byte the fault-free replay (no hooks, no extra state).
        """
        plan = self.fault_plan
        if plan is None:
            if self.shards > 1:
                from .shard import replay_sharded
                return replay_sharded(self, source)
            return self._replay_core(source, None)[0]
        if self.fault_mode == "checkpoint-restart":
            return self._replay_checkpoint_restart(source, plan)
        return self._replay_abort(source, plan)

    def _replay_abort(self, source, plan: FaultPlan) -> ReplayResult:
        """Fault mode 'abort': stop at quiescence after the first rank
        death and report provenance + per-rank lost progress."""
        result, state = self._replay_core(source, plan.sorted_events())
        failures = state["failures"]
        dead = {f.rank: f for f in failures}
        blocked = state["blocked"]
        progress = {}
        for ctx in state["contexts"]:
            if ctx.rank in dead:
                status, t = "failed", dead[ctx.rank].t
            elif ctx.rank in blocked:
                status, t = "blocked", None
            else:
                status, t = "finished", result.per_rank_time[ctx.rank]
            progress[ctx.rank] = {"actions_completed": ctx.n_actions,
                                  "time": t, "state": status}
        result.fault_report = build_fault_report(
            mode="abort",
            n_ranks=result.n_ranks,
            makespan=result.simulated_time,
            events_applied=state["injector"].applied,
            failures=failures,
            progress=progress,
            blocked=blocked,
        )
        return result

    def _replay_checkpoint_restart(self, source,
                                   plan: FaultPlan) -> ReplayResult:
        """Fault mode 'checkpoint-restart': one fault-free-progress sim
        pass (link degradations still apply in-sim), then the analytic
        coordinated checkpoint/restart timeline absorbs the host crashes.
        """
        from ..faults.checkpoint import simulate_checkpoint_restart

        crashes = plan.host_crashes()
        for crash in crashes:
            if crash.host not in self.platform.hosts:
                raise ValueError(
                    f"fault plan: unknown host {crash.host!r}"
                )
        degrades = [e for e in plan.sorted_events()
                    if isinstance(e, LinkDegrade)]
        result, state = self._replay_core(source, degrades)
        outcome = simulate_checkpoint_restart(
            result.simulated_time, result.per_rank_time,
            [crash.t for crash in crashes], plan.checkpoint,
        )
        applied = list(state["injector"].applied) if state else []
        applied += [{"t": crash.t, "action": "modeled",
                     "event": crash.to_dict()} for crash in crashes]
        model = plan.checkpoint
        result.fault_report = FaultReport(
            mode="checkpoint-restart",
            n_ranks=result.n_ranks,
            makespan=outcome.makespan,
            events_applied=applied,
            fault_free_makespan=outcome.fault_free_makespan,
            checkpoint={
                "interval": model.interval,
                "cost": model.cost,
                "restart": model.restart,
                "n_restarts": outcome.n_restarts,
                "n_checkpoints": outcome.n_checkpoints,
                "total_rework": outcome.total_rework,
                "checkpoint_overhead": outcome.checkpoint_overhead,
                "crashes": outcome.crashes,
            },
        )
        result.simulated_time = outcome.makespan
        result.per_rank_time = list(outcome.per_rank)
        return result

    def _replay_core(self, source, fault_events):
        """One simulation pass; returns ``(result, fault state or None)``.

        Fault-free runs (``fault_events`` falsy) execute exactly the
        pre-fault-injection pipeline: no injector daemon, no hooks, no
        deadlock interception.
        """
        programs = self._compiled_programs(source, fault_events)
        if programs is None:
            streams = self._token_streams(source)
            n_ranks = len(streams)
        else:
            streams = None
            n_ranks = len(programs)
        if n_ranks > len(self.deployment):
            raise ValueError(
                f"trace has {n_ranks} ranks but deployment covers only "
                f"{len(self.deployment)}"
            )
        if programs is None:
            contexts = [
                _RankContext(rank, self.deployment[rank])
                for rank in range(n_ranks)
            ]
        else:
            contexts = [
                _CompiledRankContext(rank, self.deployment[rank],
                                     programs[rank])
                for rank in range(n_ranks)
            ]
        finish = [0.0] * n_ranks
        # Fresh output per call: a second replay() on the same instance
        # must not return the first run's tuples.
        self.timed_trace = []
        telemetry = self.telemetry
        replay_metrics = telemetry.replay if telemetry is not None else None
        if telemetry is not None:
            # Per-replay counters: zero the engine/replay groups and open
            # the comm layer's snapshot window.
            telemetry.engine.reset()
            telemetry.comm.begin(self.comms.cache_stats())
            replay_metrics.reset(n_ranks)
            if programs is not None:
                replay_metrics.ops_compiled = sum(p.n_ops for p in programs)
                replay_metrics.computes_fused = sum(
                    p.n_src - p.n_ops for p in programs)
        self.engine.deadlock_hook = lambda blocked: self._deadlock_report(
            contexts, blocked
        )
        # Phase batching only exists on the compiled fault-free path and
        # only when the batched graph is provably the exact protocol
        # (see batch_eligible).  Ineligible replays silently run the
        # per-rank generators — same results, fewer assumptions.
        batcher = None
        if (self.batch_phases and programs is not None
                and fault_events is None and batch_eligible(self, n_ranks)):
            batcher = CollectiveBatcher(
                self.engine, self.comms.transfer_params, self.deployment,
                self.comms.eager_threshold,
            )

        procs: List = []
        fault_state = None
        if fault_events is not None:
            from ..faults.injector import FaultInjector

            injector = FaultInjector(
                self.engine, self.platform, fault_events,
                comms=self.comms,
                metrics=telemetry.faults if telemetry is not None else None,
            )
            rank_failures: List[RankFailure] = []
            fault_state = {"injector": injector, "failures": rank_failures,
                           "blocked": {}, "contexts": contexts}
            host_ranks: Dict[str, List[int]] = {}
            for rank in range(n_ranks):
                host_ranks.setdefault(self.deployment[rank].name,
                                      []).append(rank)
            fmetrics = injector.metrics

            def on_host_crash(host, event):
                # The ranks resident on the dead host die with it; their
                # never-started messages leave the match queues (eager
                # flows already in the network drain harmlessly).
                reason = event.describe()
                for rank in host_ranks.get(host.name, ()):
                    if self.engine.kill_process(procs[rank], reason):
                        fmetrics.processes_killed += 1
                    fmetrics.queue_entries_purged += \
                        self.comms.purge_rank(rank)

            injector.host_crash_hooks.append(on_host_crash)

            def on_proc_failed(proc, exc):
                name = proc.name
                if name.startswith("p") and name[1:].isdigit():
                    rank = int(name[1:])
                    rank_failures.append(RankFailure(
                        rank, self.engine.now,
                        exc.reason or "resource failure",
                        host=self.deployment[rank].name,
                    ))

            self.engine.process_failed_hook = on_proc_failed
            injector.attach()

        def rank_process(ctx: _RankContext, stream):
            handlers = self._handlers
            engine = self.engine
            record = self.record_timed_trace
            timed_trace = self.timed_trace
            # The clock never advances between the end of one action and
            # the start of the next within a rank (this generator only
            # yields inside handlers), so one clock read per action covers
            # both boundaries.
            start = engine.now
            if replay_metrics is not None:
                # Metering path.  The baseline already performs one dict
                # lookup per action (the handler dispatch); the counting
                # cell IS the dispatch entry — ``[handler, count, volume,
                # time, vol_idx]`` — so metering adds no lookup and
                # touches a single extra object per action (see
                # ReplayMetrics).
                new_cell = replay_metrics.new_cell
                cells_get = replay_metrics.rank_cells[ctx.rank].get
                for tokens in stream:
                    ctx.n_actions += 1
                    ctx.current_action = tokens
                    try:
                        cell = cells_get(tokens[1])
                    except IndexError:
                        raise ValueError(
                            f"p{ctx.rank}: malformed trace line "
                            f"{' '.join(tokens)!r}"
                        ) from None
                    if cell is None:
                        name = tokens[1]
                        try:
                            handler = handlers[name]
                        except KeyError:
                            raise ValueError(
                                f"p{ctx.rank}: unregistered action {name!r}"
                            ) from None
                        cell = new_cell(ctx.rank, name)
                        cell[0] = handler
                    handler = cell[0]
                    # Handlers return the volume they parsed anyway (or
                    # None), carried for free by the StopIteration that
                    # ends the delegation — no token re-parse here.
                    # Missing argument tokens (a truncated line) surface
                    # as IndexError inside the handler; retype them so
                    # corrupt input never escapes as a bare IndexError.
                    try:
                        volume = yield from handler(ctx, tokens)
                    except IndexError:
                        raise ValueError(
                            f"p{ctx.rank}: malformed trace line "
                            f"{' '.join(tokens)!r}"
                        ) from None
                    end = engine.now
                    cell[1] += 1
                    if volume is not None:
                        cell[2] += volume
                    elif cell[4] >= 0:
                        # Fallback for handlers that do not report a
                        # volume (Irecv posts, custom actions): parse
                        # the trace token.  try/except is free until it
                        # fires (and a malformed or truncated volume
                        # token just contributes nothing).
                        try:
                            cell[2] += float(tokens[cell[4]])
                        except (ValueError, IndexError):
                            pass
                    if end is not start:
                        # The clock only ever advances by rebinding
                        # ``now``, so identity == "no time passed":
                        # skip the float work for instantaneous actions
                        # (Isend/Irecv posts and the like).
                        cell[3] += end - start
                    if record:
                        timed_trace.append((ctx.rank, tokens[1], start, end))
                    start = end
            else:
                for tokens in stream:
                    try:
                        handler = handlers[tokens[1]]
                    except KeyError:
                        raise ValueError(
                            f"p{ctx.rank}: unregistered action {tokens[1]!r}"
                        ) from None
                    except IndexError:
                        raise ValueError(
                            f"p{ctx.rank}: malformed trace line "
                            f"{' '.join(tokens)!r}"
                        ) from None
                    ctx.n_actions += 1
                    ctx.current_action = tokens
                    try:
                        if record:
                            yield from handler(ctx, tokens)
                            end = engine.now
                            timed_trace.append((ctx.rank, tokens[1],
                                                start, end))
                            start = end
                        else:
                            yield from handler(ctx, tokens)
                    except IndexError:
                        raise ValueError(
                            f"p{ctx.rank}: malformed trace line "
                            f"{' '.join(tokens)!r}"
                        ) from None
            ctx.current_action = None
            finish[ctx.rank] = self.engine.now

        wall_start = time.perf_counter()
        if programs is None:
            for ctx, stream in zip(contexts, streams):
                procs.append(self.engine.add_process(
                    f"p{ctx.rank}", rank_process(ctx, stream)))
        else:
            # Under a fault plan the driver counts actions as they start
            # (the report's lost-progress walk needs per-rank counts for
            # ranks that die mid-trace); fault-free runs skip the
            # per-action increment and stamp the total at stream end.
            count = fault_events is not None
            for ctx, prog in zip(contexts, programs):
                procs.append(self.engine.add_process(
                    f"p{ctx.rank}",
                    self._compiled_rank_process(ctx, prog, finish,
                                                replay_metrics, count,
                                                batcher)))
        try:
            simulated = self.engine.run()
        except DeadlockError as exc:
            if fault_state is None or not fault_state["failures"]:
                raise
            # Survivors blocked forever on a dead rank: the expected end
            # state of a fatal fault, not a trace bug.  Capture who is
            # stuck in what for the report's provenance walk.
            simulated = self.engine.now
            dead = {f.rank for f in fault_state["failures"]}
            blocked_names = set(exc.blocked)
            for ctx in contexts:
                if f"p{ctx.rank}" in blocked_names and ctx.rank not in dead:
                    tokens = ctx.action_tokens()
                    fault_state["blocked"][ctx.rank] = {
                        "action": list(tokens) if tokens else None,
                        "pending_irecv_srcs": [req.src for req
                                               in ctx.pending_irecvs],
                    }
        wall = time.perf_counter() - wall_start
        if telemetry is not None:
            telemetry.comm.finish(self.comms.cache_stats())
            if batcher is not None:
                replay_metrics.phase_advances = batcher.phase_advances
        return ReplayResult(
            simulated_time=simulated,
            per_rank_time=finish,
            n_ranks=n_ranks,
            n_actions=sum(c.n_actions for c in contexts),
            wall_seconds=wall,
            timed_trace=self.timed_trace,
            metrics=telemetry.as_dict() if telemetry is not None else None,
        ), fault_state

    # ------------------------------------------------------------------
    # Compiled driver
    # ------------------------------------------------------------------
    def _compiled_programs(self, source, fault_events):
        """Decide whether this replay runs compiled, and compile if so.

        Returns per-rank :class:`CompiledProgram` lists or ``None`` (run
        the token path).  "auto" compiles path sources — where the win is
        the skipped tokenize/dispatch work — and leaves already-resident
        :class:`InMemoryTrace` sources on the token path; "always" forces
        compilation for any source and refuses configurations the
        compiled driver cannot honor.
        """
        mode = self.compiled
        if mode == "never":
            return None
        if self._custom_actions:
            if mode == "always":
                raise ValueError(
                    "compiled replay cannot drive actions registered via "
                    "register_action(); use compiled='never'"
                )
            return None
        if self.record_timed_trace:
            # Timed traces need one (start, end) tuple per *source*
            # action; the compiled driver's whole point is not doing
            # per-action bookkeeping, so recording stays on the token
            # path.
            if mode == "always":
                raise ValueError(
                    "compiled replay does not record timed traces; use "
                    "compiled='never' with record_timed_trace"
                )
            return None
        if mode == "auto" and isinstance(source, InMemoryTrace):
            return None
        programs, report = compile_source(source)
        self.last_compile_report = report
        # Fusion gate.  Collapsing a compute run into one exec is exact
        # only when per-flop inflation is volume-independent (no
        # efficiency model on any replay host) and nothing needs
        # per-action granularity: fault runs count per-action progress
        # for the report's provenance walk, so they run unfused.
        if fault_events is None and all(
            host.efficiency_model is None
            for host in self.deployment[:len(programs)]
        ):
            programs = [fuse_computes(prog) for prog in programs]
        return programs

    def _compiled_rank_process(self, ctx: "_CompiledRankContext",
                               prog: CompiledProgram, finish,
                               replay_metrics, count: bool,
                               batcher: Optional[CollectiveBatcher] = None):
        """One rank's replay over its compiled op program.

        The hot loop is a frequency-ordered if/elif over opcode ints on
        plain Python lists (``.tolist()`` once per column): no string
        tokenization, no dict dispatch, no per-action token list, and no
        sub-generator delegation for the four hottest ops.
        """
        engine = self.engine
        comms = self.comms
        host = ctx.host
        cpu = host.cpu
        speed = host.speed
        work = host.work_inflation
        pending = ctx.pending_irecvs
        rank = ctx.rank
        binomial = self.collective_algorithm == "binomial"
        # One C-level conversion per column; list indexing beats NumPy
        # scalar extraction ~3x in a per-op loop.
        ops = prog.ops.tolist()
        arg = prog.arg.tolist()
        vol = prog.vol.tolist()
        vol2 = prog.vol2.tolist()
        nsrc = prog.nsrc.tolist() if prog.nsrc is not None else None
        aux = ({k: a.tolist() for k, a in prog.aux.items()}
               if prog.aux else None)
        n = len(ops)
        metered = replay_metrics is not None
        if metered:
            new_cell = replay_metrics.new_cell
            cells: List = [None] * len(NAME_OF_OPCODE)
            start = engine.now
        i = 0
        while i < n:
            op = ops[i]
            ctx.op_index = i
            if count:
                ctx.n_actions += 1
            volume = None
            if op == OP_COMPUTE:
                v = vol[i]
                volume = v
                if v > 0.0:
                    yield engine.exec_activity(
                        cpu, v * work("compute", v), bound=speed)
            elif op == OP_ISEND:
                v = vol[i]
                volume = v
                comms.isend(rank, arg[i], v)
            elif op == OP_IRECV:
                volume = vol[i]
                pending.append(comms.irecv(rank, src=arg[i]))
            elif op == OP_WAIT:
                if not pending:
                    raise ValueError(
                        f"p{rank}: 'wait' with no pending Irecv (trace "
                        "is inconsistent)"
                    )
                yield pending.popleft()
            elif op == OP_SEND:
                v = vol[i]
                volume = v
                yield comms.isend(rank, arg[i], v)
            elif op == OP_RECV:
                req = comms.irecv(rank, src=arg[i])
                yield req
                volume = req.size
            elif op == OP_ALLREDUCE:
                self._require_comm_size(ctx, "allReduce")
                v = vol[i]
                volume = v
                if batcher is not None:
                    # Phase-batched: one dependency graph replaces the
                    # whole per-rank protocol; this rank parks on its
                    # exit node.  coll_seq still advances so batched and
                    # generator replays number collectives identically.
                    ctx.coll_seq += 1
                    yield batcher.arrive(rank, ctx.coll_seq, "allReduce",
                                         v, vol2[i], ctx.declared_size)
                else:
                    coll = self._coll_ops(ctx)
                    if binomial:
                        yield from collectives.reduce_then_bcast_allreduce(
                            coll, v, flops=vol2[i], tag=coll.tag)
                    else:
                        yield from _flat_reduce(coll, v, vol2[i])
                        yield from _flat_bcast(coll, v)
            elif op == OP_BCAST:
                self._require_comm_size(ctx, "bcast")
                v = vol[i]
                volume = v
                coll = self._coll_ops(ctx)
                if binomial:
                    yield from collectives.binomial_bcast(
                        coll, v, root=0, tag=coll.tag)
                else:
                    yield from _flat_bcast(coll, v)
            elif op == OP_REDUCE:
                self._require_comm_size(ctx, "reduce")
                v = vol[i]
                volume = v
                coll = self._coll_ops(ctx)
                if binomial:
                    yield from collectives.binomial_reduce(
                        coll, v, flops=vol2[i], root=0, tag=coll.tag)
                else:
                    yield from _flat_reduce(coll, v, vol2[i])
            elif op == OP_BARRIER:
                self._require_comm_size(ctx, "barrier")
                if batcher is not None:
                    ctx.coll_seq += 1
                    yield batcher.arrive(
                        rank, ctx.coll_seq, "barrier",
                        float(collectives.BARRIER_TOKEN_BYTES), 0.0,
                        ctx.declared_size)
                else:
                    coll = self._coll_ops(ctx)
                    yield from collectives.barrier(coll, tag=coll.tag)
            elif op == OP_COMM_SIZE:
                size = arg[i]
                if size != comms.size and size > len(self.deployment):
                    raise ValueError(
                        f"p{rank}: comm_size {size} exceeds the "
                        f"deployment ({len(self.deployment)} hosts)"
                    )
                ctx.declared_size = size
            elif op == OP_ALLTOALL:
                self._require_comm_size(ctx, "allToAll")
                v = vol[i]
                volume = v
                coll = self._coll_ops(ctx)
                yield from collectives.pairwise_alltoall(
                    coll, v, tag=coll.tag)
            elif op == OP_ALLTOALLV:
                self._require_comm_size(ctx, "allToAllv")
                v = vol[i]
                volume = v
                splits = None if aux is None else aux.get(i)
                if splits is None or len(splits) != arg[i]:
                    raise ValueError(
                        f"p{rank}: compiled allToAllv op {i} lost its "
                        "split table (corrupt program)"
                    )
                coll = self._coll_ops(ctx)
                yield from collectives.pairwise_alltoallv(
                    coll, splits, tag=coll.tag)
            elif op == OP_ALLGATHER:
                self._require_comm_size(ctx, "allGather")
                v = vol[i]
                volume = v
                coll = self._coll_ops(ctx)
                if binomial:
                    yield from collectives.gather_then_bcast_allgather(
                        coll, v, tag=coll.tag)
                else:
                    yield from _flat_allgather(coll, v)
            elif op == OP_REDUCESCATTER:
                self._require_comm_size(ctx, "reduceScatter")
                v = vol[i]
                volume = v
                coll = self._coll_ops(ctx)
                if binomial:
                    yield from collectives.reduce_then_scatter(
                        coll, v, flops=vol2[i], tag=coll.tag)
                else:
                    yield from _flat_reducescatter(coll, v, vol2[i])
            if metered:
                cell = cells[op]
                if cell is None:
                    cell = cells[op] = new_cell(rank, NAME_OF_OPCODE[op])
                end = engine.now
                cell[1] += nsrc[i] if nsrc is not None else 1
                if volume is not None:
                    cell[2] += volume
                if end is not start:
                    cell[3] += end - start
                start = end
            i += 1
        ctx.op_index = None
        if not count:
            ctx.n_actions = prog.n_src
        finish[rank] = engine.now

    # ------------------------------------------------------------------
    # Failure diagnostics
    # ------------------------------------------------------------------
    def _deadlock_report(self, contexts, blocked_procs):
        """Engine deadlock hook: name each blocked rank's current action
        and pending Irecvs, then list the unmatched communications by
        (src, dst, tag) — enough to pin an inconsistent trace in one read.
        Returns ``(report text, details dict)`` for :class:`DeadlockError`.
        """
        def fmt_end(rank: int) -> str:
            return "any" if rank < 0 else f"p{rank}"

        def fmt_key(key) -> str:
            src, dst, tag = key
            tag_txt = "any" if tag == -1 else str(tag)
            return f"{fmt_end(src)}->{fmt_end(dst)} tag={tag_txt}"

        blocked_names = {proc.name for proc in blocked_procs}
        lines = ["replay deadlock diagnostics:"]
        rank_details = {}
        for ctx in contexts:
            if f"p{ctx.rank}" not in blocked_names:
                continue
            tokens = ctx.action_tokens()
            action = (" ".join(tokens) if tokens
                      else "<before first action>")
            pending = [
                f"{fmt_end(req.src)} tag="
                f"{'any' if req.tag == -1 else req.tag}"
                for req in ctx.pending_irecvs
            ]
            line = f"  p{ctx.rank}: blocked in {action!r}"
            if pending:
                line += f"; pending Irecv from: {', '.join(pending)}"
            lines.append(line)
            rank_details[ctx.rank] = {
                "action": action,
                "pending_irecvs": pending,
            }
        unmatched = self.comms.unmatched_counts(by_key=True)
        unmatched_str = {
            side: {fmt_key(key): count for key, count in keyed.items()}
            for side, keyed in unmatched.items()
        }
        for side, label in (("sends", "send posted, no matching recv"),
                            ("recvs", "recv posted, no matching send")):
            for text, count in sorted(unmatched_str[side].items()):
                lines.append(f"  {label}: {text} x{count}")
        return "\n".join(lines), {
            "ranks": rank_details,
            "unmatched": unmatched_str,
        }

    # ------------------------------------------------------------------
    # Action handlers (each one is the analogue of a registered MSG
    # action function; §5 shows `compute` in C)
    # ------------------------------------------------------------------
    def _do_compute(self, ctx: _RankContext, tokens: List[str]) -> Iterator:
        volume = float(tokens[2])
        if volume > 0:
            amount = volume * ctx.host.work_inflation("compute", volume)
            yield self.engine.exec_activity(
                ctx.host.cpu, amount, bound=ctx.host.speed,
            )
        return volume

    def _do_send(self, ctx: _RankContext, tokens: List[str]) -> Iterator:
        dst = int(tokens[2][1:])
        size = float(tokens[3])
        req = self.comms.isend(ctx.rank, dst, size)
        yield req
        return size

    def _do_isend(self, ctx: _RankContext, tokens: List[str]) -> Iterator:
        dst = int(tokens[2][1:])
        size = float(tokens[3])
        self.comms.isend(ctx.rank, dst, size)
        return size
        yield  # pragma: no cover - makes this a generator

    def _do_recv(self, ctx: _RankContext, tokens: List[str]) -> Iterator:
        src = int(tokens[2][1:])
        req = self.comms.irecv(ctx.rank, src=src)
        yield req
        # The matched sender's size == the trace volume for consistent
        # traces; returning it spares the metering a token re-parse.
        return req.size

    def _do_irecv(self, ctx: _RankContext, tokens: List[str]) -> Iterator:
        src = int(tokens[2][1:])
        ctx.pending_irecvs.append(self.comms.irecv(ctx.rank, src=src))
        return
        yield  # pragma: no cover - makes this a generator

    def _do_wait(self, ctx: _RankContext, tokens: List[str]) -> Iterator:
        if not ctx.pending_irecvs:
            raise ValueError(
                f"p{ctx.rank}: 'wait' with no pending Irecv (trace is "
                "inconsistent)"
            )
        yield ctx.pending_irecvs.popleft()

    # -- collectives ------------------------------------------------------
    def _require_comm_size(self, ctx: _RankContext, what: str) -> None:
        if ctx.declared_size is None:
            raise ValueError(
                f"p{ctx.rank}: {what} before comm_size — the trace format "
                "requires comm_size ahead of any collective (§3)"
            )

    def _coll_ops(self, ctx: _RankContext) -> "_CollOps":
        ctx.coll_seq += 1
        return _CollOps(self, ctx, tag=-2 - ctx.coll_seq)

    def _do_comm_size(self, ctx: _RankContext, tokens: List[str]) -> Iterator:
        size = int(tokens[2])
        if size != self.comms.size and size > len(self.deployment):
            raise ValueError(
                f"p{ctx.rank}: comm_size {size} exceeds the deployment "
                f"({len(self.deployment)} hosts)"
            )
        ctx.declared_size = size
        return
        yield  # pragma: no cover - makes this a generator

    def _do_bcast(self, ctx: _RankContext, tokens: List[str]) -> Iterator:
        self._require_comm_size(ctx, "bcast")
        volume = float(tokens[2])
        ops = self._coll_ops(ctx)
        if self.collective_algorithm == "binomial":
            yield from collectives.binomial_bcast(ops, volume, root=0,
                                                  tag=ops.tag)
        else:
            yield from _flat_bcast(ops, volume)
        return volume

    def _do_reduce(self, ctx: _RankContext, tokens: List[str]) -> Iterator:
        self._require_comm_size(ctx, "reduce")
        vcomm, vcomp = float(tokens[2]), float(tokens[3])
        ops = self._coll_ops(ctx)
        if self.collective_algorithm == "binomial":
            yield from collectives.binomial_reduce(ops, vcomm, flops=vcomp,
                                                   root=0, tag=ops.tag)
        else:
            yield from _flat_reduce(ops, vcomm, vcomp)
        return vcomm

    def _do_allreduce(self, ctx: _RankContext, tokens: List[str]) -> Iterator:
        self._require_comm_size(ctx, "allReduce")
        vcomm, vcomp = float(tokens[2]), float(tokens[3])
        ops = self._coll_ops(ctx)
        if self.collective_algorithm == "binomial":
            yield from collectives.reduce_then_bcast_allreduce(
                ops, vcomm, flops=vcomp, tag=ops.tag
            )
        else:
            yield from _flat_reduce(ops, vcomm, vcomp)
            yield from _flat_bcast(ops, vcomm)
        return vcomm

    def _do_barrier(self, ctx: _RankContext, tokens: List[str]) -> Iterator:
        self._require_comm_size(ctx, "barrier")
        ops = self._coll_ops(ctx)
        yield from collectives.barrier(ops, tag=ops.tag)

    def _do_alltoall(self, ctx: _RankContext, tokens: List[str]) -> Iterator:
        self._require_comm_size(ctx, "allToAll")
        volume = float(tokens[2])
        ops = self._coll_ops(ctx)
        # Pairwise exchange under both algorithm settings: flat-tree has
        # no root to flatten onto — the pairwise schedule *is* the flat
        # decomposition of an all-to-all.
        yield from collectives.pairwise_alltoall(ops, volume, tag=ops.tag)
        return volume

    def _do_alltoallv(self, ctx: _RankContext,
                      tokens: List[str]) -> Iterator:
        self._require_comm_size(ctx, "allToAllv")
        if len(tokens) < 4:
            raise ValueError(
                f"p{ctx.rank}: allToAllv needs a total and at least one "
                "split size")
        # Token streams bypass parse_action, so the consistency contract
        # is enforced here too — same wording as the compiler's.
        total = float(tokens[2])
        splits = [float(t) for t in tokens[3:]]
        _check_splits(total, splits, ctx.rank)
        ops = self._coll_ops(ctx)
        yield from collectives.pairwise_alltoallv(ops, splits, tag=ops.tag)
        return total

    def _do_allgather(self, ctx: _RankContext,
                      tokens: List[str]) -> Iterator:
        self._require_comm_size(ctx, "allGather")
        volume = float(tokens[2])
        ops = self._coll_ops(ctx)
        if self.collective_algorithm == "binomial":
            yield from collectives.gather_then_bcast_allgather(
                ops, volume, tag=ops.tag)
        else:
            yield from _flat_allgather(ops, volume)
        return volume

    def _do_reducescatter(self, ctx: _RankContext,
                          tokens: List[str]) -> Iterator:
        self._require_comm_size(ctx, "reduceScatter")
        vcomm, vcomp = float(tokens[2]), float(tokens[3])
        ops = self._coll_ops(ctx)
        if self.collective_algorithm == "binomial":
            yield from collectives.reduce_then_scatter(
                ops, vcomm, flops=vcomp, tag=ops.tag)
        else:
            yield from _flat_reducescatter(ops, vcomm, vcomp)
        return vcomm

    # ------------------------------------------------------------------
    # Trace sources
    # ------------------------------------------------------------------
    def _token_streams(self, source) -> List[Iterable[List[str]]]:
        if isinstance(source, InMemoryTrace):
            ranks = source.ranks()
            if ranks != list(range(len(ranks))):
                raise ValueError(f"trace ranks are not contiguous: {ranks[:10]}")

            # Lazy per-rank tokenization: the trace is resident anyway,
            # but the token lists (3-4x the Action objects' footprint)
            # need never exist all at once.
            def stream(rank: int) -> Iterator[List[str]]:
                for line in source.lines_of(rank):
                    yield line.split()

            return [stream(rank) for rank in ranks]
        if isinstance(source, (str, os.PathLike)):
            path = os.fspath(source)
            if os.path.isdir(path):
                return self._dir_streams(path)
            return self._merged_stream(path)
        raise TypeError(
            f"unsupported trace source {type(source).__name__}; pass an "
            "InMemoryTrace, a trace directory, or a merged trace file"
        )

    def _dir_streams(self, directory: str) -> List[Iterable[List[str]]]:
        """Streaming ingestion of the Fig. 2 per-process layout.

        Each rank's stream holds one open file and decodes on demand —
        peak resident ingestion state is O(ranks), independent of the
        per-rank event count.  This is the layout to use at scale.
        """
        from .binfmt import read_binary_trace
        from .trace import discover_trace_paths

        def binary_stream(path: str) -> Iterator[List[str]]:
            from .actions import format_action
            for action in read_binary_trace(path):
                yield format_action(action).split()

        def stream(path: str, expect_rank: int) -> Iterator[List[str]]:
            opener = (gzip.open if path.endswith(".gz") else open)
            with opener(path, "rt", encoding="ascii") as handle:
                for line in handle:
                    tokens = line.split()
                    if not tokens or tokens[0].startswith("#"):
                        continue
                    if tokens[0] != f"p{expect_rank}":
                        raise ValueError(
                            f"{path}: line for {tokens[0]} in trace of "
                            f"p{expect_rank}"
                        )
                    yield tokens

        return [
            binary_stream(path) if path.endswith(".btrace")
            else stream(path, rank)
            for rank, path in enumerate(discover_trace_paths(directory))
        ]

    def _merged_stream(self, path: str) -> List[Iterable[List[str]]]:
        """Demultiplex a merged (Fig. 1) file without loading it whole.

        One shared cursor walks the file; each rank's stream drains its
        own buffer and, when empty, advances the cursor — buffering lines
        for *other* ranks as they scroll past.  For interleaved merged
        traces the buffers stay near-empty (O(ranks + interleaving skew)
        resident).  A rank-major merged file is the worst case: rank k's
        first action sits after every line of ranks < k, so buffering
        degrades to O(events) — inherent to the layout, not the reader.
        The per-process directory layout is the scalable representation;
        this path exists for the small-instance convenience format.
        Rather than degrade silently, the demux refuses to buffer more
        than :attr:`merged_spill_limit` lines for any single rank and
        names the offender.
        """
        opener = gzip.open if path.endswith(".gz") else open
        limit = self.merged_spill_limit
        # Pass 1: the rank set (needed up front to build one stream per
        # rank).  Reads prefixes only; retains O(ranks) state.
        ranks = set()
        with opener(path, "rt", encoding="ascii") as handle:
            for line in handle:
                head = line.split(None, 1)
                if not head or head[0].startswith("#"):
                    continue
                ranks.add(int(head[0][1:]))
        rank_list = sorted(ranks)
        if rank_list != list(range(len(rank_list))):
            raise ValueError(
                f"{path}: ranks are not contiguous: {rank_list[:10]}"
            )

        # Pass 2: shared-cursor demux.
        buffers: List[deque] = [deque() for _ in rank_list]
        handle = opener(path, "rt", encoding="ascii")
        exhausted = [False]

        def pump_until(rank: int) -> bool:
            """Advance the shared cursor until a line for ``rank`` lands
            in its buffer; returns False at end of file."""
            if exhausted[0]:
                return False
            for line in handle:
                tokens = line.split()
                if not tokens or tokens[0].startswith("#"):
                    continue
                dest = int(tokens[0][1:])
                buf = buffers[dest]
                buf.append(tokens)
                if buffers[rank]:
                    return True
                if len(buf) > limit:
                    # One rank's lines are heavily skewed ahead of the
                    # rank being pumped (a rank-major merged file is the
                    # canonical trigger): the buffer would otherwise grow
                    # to O(events).  Fail with provenance instead.
                    # Mark the cursor exhausted first so sibling streams
                    # see a clean end-of-file rather than a closed-handle
                    # error that would mask this one.
                    exhausted[0] = True
                    handle.close()
                    raise ValueError(
                        f"{path}: merged-trace demux buffered over "
                        f"{limit} lines for p{dest} while seeking a "
                        f"line for p{rank}; the layout is too skewed "
                        "for streaming demux — convert to the "
                        "per-process directory layout (repro-convert) "
                        "or raise TraceReplayer.merged_spill_limit"
                    )
            exhausted[0] = True
            handle.close()
            return False

        def stream(rank: int) -> Iterator[List[str]]:
            buf = buffers[rank]
            while True:
                if buf:
                    yield buf.popleft()
                elif not pump_until(rank):
                    return

        return [stream(rank) for rank in rank_list]


class _CollOps:
    """Adapter giving the collective algorithms a rank-program interface."""

    __slots__ = ("replayer", "ctx", "tag")

    def __init__(self, replayer: TraceReplayer, ctx: _RankContext,
                 tag: int) -> None:
        self.replayer = replayer
        self.ctx = ctx
        self.tag = tag

    @property
    def rank(self) -> int:
        return self.ctx.rank

    @property
    def size(self) -> int:
        return self.ctx.declared_size

    def isend(self, dst: int, nbytes: float, tag: int = 0, data=None):
        return self.replayer.comms.isend(self.ctx.rank, dst, nbytes,
                                         tag=tag, data=data)

    def send(self, dst: int, nbytes: float, tag: int = 0, data=None):
        req = self.isend(dst, nbytes, tag=tag, data=data)
        yield req
        return req

    def recv(self, src: int = -1, tag: int = -1):
        req = self.replayer.comms.irecv(self.ctx.rank, src=src, tag=tag)
        yield req
        return req

    def wait(self, req):
        yield req
        return req

    def compute(self, flops: float, kind: str = "compute"):
        if flops > 0:
            host = self.ctx.host
            amount = flops * host.work_inflation(kind, flops)
            yield self.replayer.engine.exec_activity(
                host.cpu, amount, bound=host.speed,
            )


def _flat_bcast(ops: _CollOps, volume: float) -> Iterator:
    """Flat-tree broadcast: root sends to every other rank directly."""
    if ops.rank == 0:
        reqs = [ops.isend(dst, volume, tag=ops.tag)
                for dst in range(1, ops.size)]
        for req in reqs:
            yield req
    else:
        yield from ops.recv(src=0, tag=ops.tag)


def _flat_reduce(ops: _CollOps, vcomm: float, vcomp: float) -> Iterator:
    """Flat-tree reduce: everyone sends to the root, which applies the
    operator once per contribution."""
    if ops.rank == 0:
        for _ in range(ops.size - 1):
            yield from ops.recv(tag=ops.tag)
            yield from ops.compute(vcomp)
    else:
        yield from ops.send(0, vcomm, tag=ops.tag)


def _flat_allgather(ops: _CollOps, volume: float) -> Iterator:
    """Flat allgather: gather every contribution to the root, then
    flat-broadcast the concatenated ``size * volume`` buffer."""
    if ops.rank == 0:
        for _ in range(ops.size - 1):
            yield from ops.recv(tag=ops.tag)
    else:
        yield from ops.send(0, volume, tag=ops.tag)
    yield from _flat_bcast(ops, ops.size * volume)


def _flat_reducescatter(ops: _CollOps, vcomm: float,
                        vcomp: float) -> Iterator:
    """Flat reduce-scatter: flat reduce to the root, then the root sends
    each rank its ``vcomm / size`` share directly."""
    yield from _flat_reduce(ops, vcomm, vcomp)
    share = vcomm / ops.size
    if ops.rank == 0:
        reqs = [ops.isend(dst, share, tag=ops.tag)
                for dst in range(1, ops.size)]
        for req in reqs:
            yield req
    else:
        yield from ops.recv(src=0, tag=ops.tag)
