"""Sharded parallel replay: contiguous rank bands in worker processes.

The sequential replayer is single-core by construction — one engine, one
event heap.  For traces whose communication is *local* (each rank talks
to peers within a bounded rank distance) and whose only global coupling
is the synchronizing collectives, the simulation decomposes: between two
collectives, a rank's timing depends only on ranks within the message
reach of that window.  This driver exploits exactly that structure:

* ranks are partitioned into ``--shards`` contiguous **bands**; each band
  is replayed by a forked worker process that also simulates a **halo**
  of neighbouring ranks on each side (``--shard-halo``, default: the
  maximum peer distance found in the trace);
* point-to-point traffic whose peer lies inside the worker's simulated
  set runs through the normal mailbox; traffic crossing the set's edge
  is *fabricated* (sends get an immediately-posted matching receive,
  receives complete instantly) — only halo ranks ever do this, and their
  results are never authoritative;
* at every synchronizing collective (a **window** boundary) the workers
  stop, ship their per-rank entry times to the coordinator, which
  (a) cross-validates every halo rank's entry time against the band
  owner's authoritative value to 1e-9 — the halo-sufficiency check —
  (b) replays the collective's batched dependency graph
  (:mod:`repro.core.batch`) on a throwaway engine over *cloned*
  constraints, and (c) returns each rank's exit time plus its
  *link-quiet* time (when the last collective flow it sourced drained);
  workers release their parked ranks at those exact instants;
* after the last window the workers run their tails out and the
  coordinator merges: per-rank finish times come from band owners only.

Exactness: within a window the band simulation is exact as long as the
halo absorbs the influence radius of the fabricated edge — which the
window validation *checks* rather than assumes (divergence > 1e-9 fails
the replay with advice to widen ``--shard-halo``).  The collective
itself is exact because the coordinator replays the same protocol graph
the in-process driver uses, from authoritative entry times, on an
otherwise-empty network — which is also why sharding requires a
*decoupled* platform (single cluster, fatpipe backbone, no cabinets, no
WAN, one rank per host): cross-band flows must share no constraint, or
the independent worker engines would miss each other's bandwidth
contention.  Residual in-flight flows at a window boundary and sends
posted before the link-quiet instant are refused for the same reason.

Known honest limitations (also in docs/replay-performance.md): the tail
after the final collective is not cross-validated, and engine/comm
telemetry is aggregated across workers (halo ranks included) rather
than deduplicated.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..simkernel.activity import Waitable
from ..simkernel.engine import Engine
from ..smpi.collectives import BARRIER_TOKEN_BYTES
from .batch import CollectiveBatcher
from .compile import (
    OP_ALLGATHER,
    OP_ALLREDUCE,
    OP_ALLTOALL,
    OP_ALLTOALLV,
    OP_BARRIER,
    OP_BCAST,
    OP_COMM_SIZE,
    OP_COMPUTE,
    OP_IRECV,
    OP_ISEND,
    OP_RECV,
    OP_REDUCE,
    OP_REDUCESCATTER,
    OP_SEND,
    OP_WAIT,
    compile_source,
    fuse_computes,
)

__all__ = ["replay_sharded"]

#: Tolerance for halo-entry validation and the in-flight/quiet guards.
TOL = 1e-9


# ----------------------------------------------------------------------
# Upfront gates
# ----------------------------------------------------------------------
def _require_decoupled_platform(replayer, n_ranks: int) -> None:
    platform = replayer.platform
    why = None
    if len(platform.clusters) != 1:
        why = f"{len(platform.clusters)} clusters (need exactly one)"
    elif platform._wan:
        why = "WAN links between clusters"
    else:
        cluster = next(iter(platform.clusters.values()))
        if cluster.has_cabinets:
            why = "cabinet links shared between hosts"
        elif not cluster.backbone.fatpipe:
            why = ("a shared backbone (use backbone_sharing='fatpipe' "
                   "so cross-band flows share no constraint)")
    if why is None:
        hosts = replayer.deployment[:n_ranks]
        if len({id(h) for h in hosts}) != n_ranks:
            why = "several ranks folded onto one host"
        elif any(h.efficiency_model is not None or h.sharing_model is not None
                 for h in hosts):
            why = "hosts with efficiency/sharing models"
    if why is not None:
        raise ValueError(
            f"sharded replay needs a decoupled platform, but this one has "
            f"{why}; worker engines simulate bands independently and "
            "cannot see contention on constraints shared across bands"
        )


def _scan_programs(programs, n_ranks: int):
    """Validate shard-ability and extract the global window structure.

    Returns ``(windows, max_dist, rounds)`` where ``windows`` is the
    common per-rank sequence of synchronizing collectives as ``(kind,
    nbytes, flops)`` tuples, ``max_dist`` is the largest peer distance
    any rank communicates over, and ``rounds`` estimates the
    blocking-step rounds per window (blocking recv/wait count divided
    by distinct receive peers).  The caller sizes the default halo from
    these; window validation enforces sufficiency either way.
    """
    ref = None
    ref_rank = 0
    max_dist = 0
    max_rounds = 1
    for rank, prog in enumerate(programs):
        ops = prog.ops
        if np.any(ops == OP_BCAST) or np.any(ops == OP_REDUCE):
            raise ValueError(
                f"p{rank}: sharded replay cannot run standalone "
                "bcast/reduce actions — their trees span all bands "
                "without a synchronizing exit; only allReduce/barrier "
                "delimit shard windows"
            )
        # Same gate, named per op: the AI-workload collectives all carry
        # cross-band traffic the coordinator's window protocol does not
        # model (pairwise exchange touches every ordered pair; gather/
        # scatter trees span all bands).  Refuse loudly, never mis-batch.
        for bad_op, bad_name in ((OP_ALLTOALL, "allToAll"),
                                 (OP_ALLTOALLV, "allToAllv"),
                                 (OP_ALLGATHER, "allGather"),
                                 (OP_REDUCESCATTER, "reduceScatter")):
            if np.any(ops == bad_op):
                raise ValueError(
                    f"p{rank}: sharded replay cannot run {bad_name} "
                    "actions — their communication spans all bands and "
                    "is not a shard-window collective; run without "
                    "--shards (the sequential drivers replay it exactly)"
                )
        recv_mask = (ops == OP_RECV) | (ops == OP_IRECV)
        if np.any(prog.arg[recv_mask] < 0):
            raise ValueError(
                f"p{rank}: sharded replay cannot honor ANY_SOURCE "
                "receives (the sender may live in another band)"
            )
        declared = prog.arg[ops == OP_COMM_SIZE]
        if declared.size and np.any(declared != n_ranks):
            raise ValueError(
                f"p{rank}: sharded replay needs comm_size == n_ranks "
                f"({n_ranks}); the trace declares "
                f"{int(declared[declared != n_ranks][0])}"
            )
        p2p = (ops == OP_SEND) | (ops == OP_ISEND) | recv_mask
        if np.any(p2p):
            max_dist = max(max_dist,
                           int(np.max(np.abs(prog.arg[p2p] - rank))))
        sync = (ops == OP_ALLREDUCE) | (ops == OP_BARRIER)
        n_windows = int(np.count_nonzero(sync))
        blocking = int(np.count_nonzero((ops == OP_RECV) | (ops == OP_WAIT)))
        peers = np.unique(prog.arg[recv_mask]).size
        if blocking and peers and n_windows:
            rounds = -(-blocking // (n_windows * peers))  # ceil
            max_rounds = max(max_rounds, rounds)
        key = (ops[sync], prog.vol[sync], prog.vol2[sync])
        if ref is None:
            ref, ref_rank = key, rank
        elif (len(key[0]) != len(ref[0])
              or not np.array_equal(key[0], ref[0])
              or not np.allclose(key[1], ref[1], rtol=0.0, atol=0.0)
              or not np.allclose(key[2], ref[2], rtol=0.0, atol=0.0)):
            raise ValueError(
                f"p{rank} and p{ref_rank} disagree on the synchronizing-"
                "collective sequence; sharded replay needs every rank to "
                "run the same allReduce/barrier sequence"
            )
    windows: List[Tuple[str, float, float]] = []
    for op, v, v2 in zip(ref[0].tolist(), ref[1].tolist(), ref[2].tolist()):
        if op == OP_ALLREDUCE:
            windows.append(("allReduce", float(v), float(v2)))
        else:
            windows.append(("barrier", float(BARRIER_TOKEN_BYTES), 0.0))
    if not windows:
        raise ValueError(
            "sharded replay needs at least one synchronizing collective "
            "(allReduce/barrier): windows are where halo fabrication is "
            "validated; without any, cross-band traffic would go "
            "unchecked"
        )
    return windows, max_dist, max_rounds


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _OutsideRecv(Waitable):
    """A fabricated, already-complete receive from a rank outside the
    worker's simulated set.  Only outer-halo ranks ever see one, and
    their results are validated (or discarded) at the next window."""

    __slots__ = ("size", "src", "tag")

    def __init__(self, size: float, src: int) -> None:
        super().__init__()
        self.done = True
        self.size = size
        self.src = src
        self.tag = -1


class _ShardRuntime:
    """Worker-local window state: arrivals, parks, quiet times, and the
    synchronous pipe exchange the last local arriver performs."""

    def __init__(self, engine, comms, conn, sim_lo: int, sim_hi: int,
                 band_lo: int, band_hi: int, halo: int) -> None:
        self.engine = engine
        self.comms = comms
        self.conn = conn
        self.sim_lo = sim_lo
        self.sim_hi = sim_hi
        self.band_lo = band_lo
        self.band_hi = band_hi
        self.halo = halo
        self.n_sim = sim_hi - sim_lo
        self.window = 0
        self.arrivals: Dict[int, float] = {}
        self.parks: Dict[int, Waitable] = {}
        self.quiet: Dict[int, float] = {r: 0.0 for r in range(sim_lo, sim_hi)}
        self.windows_merged = 0

    def check_send_quiet(self, rank: int) -> None:
        if self.engine.now < self.quiet[rank] - TOL:
            raise ValueError(
                f"p{rank} posts a send at t={self.engine.now:.9g} while "
                f"its collective flows from window {self.window - 1} are "
                f"still draining (quiet at t={self.quiet[rank]:.9g}); the "
                "send would contend with flows the band simulation does "
                "not carry — this trace is too communication-dense right "
                "after collectives to shard safely"
            )

    def arrive(self, rank: int) -> Waitable:
        # The coordinator prices the collective on an empty network, so
        # a rank's reduce send must not contend with its own still
        # draining point-to-point flows (buffered eager sends are the
        # one channel that can fly past the sender's entry).
        inflight = self.comms._inflight or ()
        for comm in inflight:
            req = comm.send_req
            if req is not None and req.src == rank:
                raise ValueError(
                    f"p{rank} enters a collective at "
                    f"t={self.engine.now:.9g} with an eager flow to "
                    f"p{req.dst} still in flight; the flow would "
                    "contend with the collective's reduce traffic, "
                    "which the sharded driver prices on an isolated "
                    "network — this trace overlaps point-to-point and "
                    "collective traffic too tightly to shard safely"
                )
        park = Waitable()
        self.arrivals[rank] = self.engine.now
        self.parks[rank] = park
        if len(self.parks) == self.n_sim:
            self._exchange()
        return park

    def _exchange(self) -> None:
        engine = self.engine
        inflight = getattr(self.comms, "_inflight", None)
        if inflight:
            raise ValueError(
                f"{len(inflight)} point-to-point flows still in flight "
                f"when every rank of band [{self.band_lo},{self.band_hi}) "
                f"reached window {self.window}; the coordinator replays "
                "the collective on an empty network, so residual flows "
                "would be mispriced — lower --eager-threshold (so senders "
                "block until arrival) or replay without --shards"
            )
        self.conn.send(("window", self.window, dict(self.arrivals)))
        reply = self.conn.recv()
        if reply[0] == "error":
            raise RuntimeError(f"shard coordinator: {reply[1]}")
        _tag, exits, quiets = reply
        for rank, park in self.parks.items():
            when = exits[rank]
            if (self.band_lo <= rank < self.band_hi
                    and when < engine.now - TOL):
                raise ValueError(
                    f"p{rank} (band-owned) entered window {self.window} "
                    f"later (t={self.arrivals[rank]:.9g}) than its "
                    f"collective exit (t={when:.9g}); the halo did not "
                    "absorb the fabricated edge — increase --shard-halo"
                )
            engine.complete_at(park, when)
        self.quiet = dict(quiets)
        self.window += 1
        self.windows_merged += 1
        self.arrivals = {}
        self.parks = {}


def _shard_rank_process(replayer, ctx, prog, runtime: _ShardRuntime,
                        finish: Dict[int, float]):
    """One rank's replay inside a shard worker: the compiled hot loop
    with edge fabrication and coordinator-driven collectives."""
    engine = replayer.engine
    comms = replayer.comms
    host = ctx.host
    cpu = host.cpu
    speed = host.speed
    work = host.work_inflation
    pending = ctx.pending_irecvs
    rank = ctx.rank
    lo = runtime.sim_lo
    hi = runtime.sim_hi
    ops = prog.ops.tolist()
    arg = prog.arg.tolist()
    vol = prog.vol.tolist()
    n = len(ops)
    i = 0
    while i < n:
        op = ops[i]
        ctx.op_index = i
        if op == OP_COMPUTE:
            v = vol[i]
            if v > 0.0:
                yield engine.exec_activity(
                    cpu, v * work("compute", v), bound=speed)
        elif op == OP_ISEND:
            runtime.check_send_quiet(rank)
            peer = arg[i]
            if not lo <= peer < hi:
                # Fabricated edge: the outside receiver is assumed
                # already posted, so the flow starts now (the eager
                # protocol behaves identically; rendezvous starts at the
                # send post, which only halo ranks can observe).
                comms.irecv(peer, src=rank)
            comms.isend(rank, peer, vol[i])
        elif op == OP_IRECV:
            peer = arg[i]
            if lo <= peer < hi:
                pending.append(comms.irecv(rank, src=peer))
            else:
                pending.append(_OutsideRecv(vol[i], peer))
        elif op == OP_WAIT:
            if not pending:
                raise ValueError(
                    f"p{rank}: 'wait' with no pending Irecv (trace is "
                    "inconsistent)"
                )
            yield pending.popleft()
        elif op == OP_SEND:
            runtime.check_send_quiet(rank)
            peer = arg[i]
            if not lo <= peer < hi:
                comms.irecv(peer, src=rank)
            yield comms.isend(rank, peer, vol[i])
        elif op == OP_RECV:
            peer = arg[i]
            if lo <= peer < hi:
                yield comms.irecv(rank, src=peer)
            else:
                yield _OutsideRecv(vol[i], peer)
        elif op == OP_ALLREDUCE or op == OP_BARRIER:
            ctx.coll_seq += 1
            yield runtime.arrive(rank)
        elif op == OP_COMM_SIZE:
            ctx.declared_size = arg[i]
        else:  # pragma: no cover - _scan_programs refuses these upfront
            raise ValueError(f"p{rank}: opcode {op} cannot run sharded")
        i += 1
    ctx.op_index = None
    ctx.n_actions = prog.n_src
    finish[rank] = engine.now


def _worker_main(replayer, programs, w: int, sim_lo: int, sim_hi: int,
                 band_lo: int, band_hi: int, halo: int, conn) -> None:
    """Entry point of one forked shard worker.

    The fork snapshot carries the parent's pristine platform, engine,
    and compiled programs — nothing is pickled, and the parent never ran
    its engine, so every worker starts from identical clean state.
    """
    try:
        from .replay import _CompiledRankContext

        engine = replayer.engine
        comms = replayer.comms
        # _inflight bookkeeping doubles as the residual-flow gate.
        comms.enable_fault_tracking()
        telemetry = replayer.telemetry
        if telemetry is not None:
            telemetry.engine.reset()
            telemetry.comm.begin(comms.cache_stats())
        runtime = _ShardRuntime(engine, comms, conn, sim_lo, sim_hi,
                                band_lo, band_hi, halo)
        contexts = [
            _CompiledRankContext(rank, replayer.deployment[rank],
                                 programs[rank])
            for rank in range(sim_lo, sim_hi)
        ]
        engine.deadlock_hook = lambda blocked: replayer._deadlock_report(
            contexts, blocked)
        finish: Dict[int, float] = {}
        for ctx in contexts:
            engine.add_process(
                f"p{ctx.rank}",
                _shard_rank_process(replayer, ctx, programs[ctx.rank],
                                    runtime, finish))
        engine.run()
        counters = None
        if telemetry is not None:
            telemetry.comm.finish(comms.cache_stats())
            counters = {"engine": telemetry.engine.as_dict(),
                        "comm": telemetry.comm.as_dict()}
        band_finish = {r: finish[r] for r in range(band_lo, band_hi)}
        conn.send(("done", band_finish, engine.now, counters))
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        import traceback
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}",
                       traceback.format_exc()))
        except OSError:  # parent already gone
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
class _ShadowHost:
    """Host facade for the coordinator's throwaway collective engines:
    same speed and inflation semantics, cloned CPU constraint."""

    __slots__ = ("cpu", "speed", "_host")

    def __init__(self, host, cpu_clone) -> None:
        self.cpu = cpu_clone
        self.speed = host.speed
        self._host = host

    def work_inflation(self, kind: str, flops: float) -> float:
        return self._host.work_inflation(kind, flops)


def _simulate_collective(replayer, n_ranks: int, kind: str, nbytes: float,
                         flops: float, entries: List[float]):
    """Replay one collective on a fresh engine from absolute entry times.

    Returns ``(exits, quiets)``: per-rank collective exit times and
    link-quiet times (the arrival instant of the last collective flow
    the rank sourced — its uplink is busy until then).  Runs on cloned
    constraints so the live platform's engine-owned sharing state is
    never touched.
    """
    engine = Engine()
    clones: Dict[int, object] = {}

    def clone_of(constraint):
        c = clones.get(id(constraint))
        if c is None:
            c = clones[id(constraint)] = constraint.clone()
        return c

    base = replayer.comms.transfer_params

    def transfer_params(src: int, dst: int, size: float):
        links, latency, bw_factor = base(src, dst, size)
        return [clone_of(l) for l in links], latency, bw_factor

    hosts = [_ShadowHost(h, clone_of(h.cpu))
             for h in replayer.deployment[:n_ranks]]
    quiet_arrival = [0.0] * n_ranks

    def observer(src: int, _dst: int) -> None:
        if engine.now > quiet_arrival[src]:
            quiet_arrival[src] = engine.now

    batcher = CollectiveBatcher(engine, transfer_params, hosts,
                                replayer.comms.eager_threshold,
                                flow_observer=observer)
    graph = batcher.open_graph(0, kind, nbytes, flops, n_ranks)
    exits = [0.0] * n_ranks
    for r in range(n_ranks):
        graph.exits[r].on_complete(
            lambda _n, r=r: exits.__setitem__(r, engine.now))
    # Entry times are absolute and the throwaway engine starts at 0, so
    # a timer of that duration releases each entry at the right instant.
    for r in range(n_ranks):
        t = engine.timer(entries[r], name=f"entry{r}")
        t.on_complete(lambda _t, r=r: graph.entries[r].satisfy())

    def waiter():
        for node in graph.exits:
            yield node

    engine.add_process("collective", waiter())
    engine.run()
    quiets = [max(exits[r], quiet_arrival[r]) for r in range(n_ranks)]
    return exits, quiets


def _merge_counters(blobs: List[Optional[Dict]]) -> Dict[str, Dict]:
    """Sum worker engine/comm counters; recompute the derived ratios."""
    merged: Dict[str, Dict] = {}
    for section in ("engine", "comm"):
        total: Dict[str, float] = {}
        for blob in blobs:
            for key, value in blob[section].items():
                if key.endswith(("_mean", "_rate")):
                    continue
                if isinstance(value, dict):
                    # Histogram-valued counter (filling_level_histogram):
                    # merge per-bucket.
                    bucket_total = total.setdefault(key, {})
                    for bucket, count in value.items():
                        bucket_total[bucket] = (
                            bucket_total.get(bucket, 0) + count)
                    continue
                total[key] = total.get(key, 0) + value
        if section == "engine":
            recomputes = total.get("sharing_recomputes", 0)
            total["component_activities_mean"] = (
                total.get("component_activities_total", 0) / recomputes
                if recomputes else 0.0)
        else:
            for what in ("route", "factor"):
                hits = total.get(f"{what}_cache_hits", 0)
                misses = total.get(f"{what}_cache_misses", 0)
                total[f"{what}_cache_hit_rate"] = (
                    hits / (hits + misses) if hits + misses else 0.0)
        merged[section] = total
    return merged


def replay_sharded(replayer, source):
    """Drive one sharded replay; called from ``TraceReplayer.replay``."""
    import multiprocessing

    from .replay import ReplayResult

    wall_start = time.perf_counter()
    programs = replayer._compiled_programs(source, None)
    if programs is None:
        # "auto" leaves in-memory traces on the token path; sharding
        # needs op programs, so compile them anyway (same fusion gate —
        # the decoupled-platform check below implies no efficiency
        # models, hence fusion is exact).
        programs, report = compile_source(source)
        replayer.last_compile_report = report
        programs = [fuse_computes(prog) for prog in programs]
    n_ranks = len(programs)
    if n_ranks > len(replayer.deployment):
        raise ValueError(
            f"trace has {n_ranks} ranks but deployment covers only "
            f"{len(replayer.deployment)}"
        )
    _require_decoupled_platform(replayer, n_ranks)
    windows, max_dist, rounds = _scan_programs(programs, n_ranks)
    # ``halo`` is the guard width.  Contamination from a fabricated edge
    # travels inward roughly one max_dist per blocking step: a fabricated
    # recv removes real traffic from an edge rank's links, which shifts
    # the completion of inbound blocking sends, which shifts the sender's
    # *next* send one max_dist further in, and so on.  The shift
    # attenuates with depth (a shifted arrival that lands before the
    # wait's other binding dependency stops mattering entirely), so the
    # auto default is a heuristic — (4 * rounds + 1) * max_dist,
    # calibrated on LU-style stencil traces — not a proof.  Correctness
    # never rests on it: workers simulate one extra max_dist beyond the
    # guard, and the per-window validation requires the guard's
    # band-adjacent ring to match the band owner to 1e-9 — if the halo
    # is too thin the replay *fails loudly* instead of drifting.  Outer
    # halo ranks are expected to diverge; they are the buffer.
    halo = replayer.shard_halo if replayer.shard_halo > 0 else (
        max_dist * (4 * rounds + 1))
    reach = halo + max_dist
    n_shards = min(replayer.shards, n_ranks)
    if n_shards <= 1:
        return replayer._replay_core(source, None)[0]
    try:
        mp = multiprocessing.get_context("fork")
    except ValueError:
        raise ValueError(
            "sharded replay forks its workers (the compiled programs and "
            "platform are inherited, never pickled) and needs the POSIX "
            "'fork' start method"
        ) from None

    # Contiguous bands, sized as evenly as integer division allows.
    bounds = [round(w * n_ranks / n_shards) for w in range(n_shards + 1)]
    bands = [(bounds[w], bounds[w + 1]) for w in range(n_shards)]
    sims = [(max(0, lo - reach), min(n_ranks, hi + reach))
            for lo, hi in bands]

    workers = []
    conns = []
    try:
        for w, ((lo, hi), (slo, shi)) in enumerate(zip(bands, sims)):
            parent_conn, child_conn = mp.Pipe()
            proc = mp.Process(
                target=_worker_main,
                args=(replayer, programs, w, slo, shi, lo, hi, halo,
                      child_conn),
                name=f"shard{w}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            workers.append(proc)
            conns.append(parent_conn)

        def recv_from(w: int):
            try:
                msg = conns[w].recv()
            except EOFError:
                raise RuntimeError(
                    f"shard worker {w} died without a report "
                    f"(exitcode {workers[w].exitcode})"
                ) from None
            if msg[0] == "error":
                raise RuntimeError(
                    f"shard worker {w} failed: {msg[1]}\n{msg[2]}"
                )
            return msg

        prev_quiet = [0.0] * n_ranks
        for k, (kind, nbytes, flops) in enumerate(windows):
            arrivals_by_worker = []
            for w in range(n_shards):
                msg = recv_from(w)
                if msg[0] != "window" or msg[1] != k:
                    raise RuntimeError(
                        f"shard worker {w} desynchronized: sent {msg[:2]} "
                        f"while the coordinator was at window {k}"
                    )
                arrivals_by_worker.append(msg[2])
            if os.environ.get("SHARD_DEBUG"):
                for w, arrivals in enumerate(arrivals_by_worker):
                    print(f"[dbg] window {k} worker {w} "
                          f"sim={sims[w]} band={bands[w]}:",
                          {r: round(t, 9)
                           for r, t in sorted(arrivals.items())})
            # Band owners are authoritative; halo copies must agree.
            entries = [0.0] * n_ranks
            for w, arrivals in enumerate(arrivals_by_worker):
                lo, hi = bands[w]
                for rank, t in arrivals.items():
                    if lo <= rank < hi:
                        entries[rank] = t
            # Halo-sufficiency check: the guard ring (halo copies within
            # max_dist of the band) feeds the band directly, so it must
            # match the owner exactly; copies beyond it buffer the
            # fabricated edge and legitimately drift.
            for w, arrivals in enumerate(arrivals_by_worker):
                lo, hi = bands[w]
                for rank, t in arrivals.items():
                    if lo <= rank < hi:
                        continue
                    ring = lo - rank if rank < lo else rank - hi + 1
                    if ring <= max_dist and abs(t - entries[rank]) > TOL:
                        raise ValueError(
                            f"window {k}: worker {w}'s guard-ring copy "
                            f"of p{rank} entered at t={t:.9g} but the "
                            f"band owner says t={entries[rank]:.9g} "
                            f"(|Δ|={abs(t - entries[rank]):.3g}); the "
                            f"halo guard ({halo} ranks) does not absorb "
                            "this trace's cross-band influence — "
                            "increase --shard-halo"
                        )
            for rank in range(n_ranks):
                if entries[rank] < prev_quiet[rank] - TOL:
                    raise ValueError(
                        f"p{rank} enters window {k} at "
                        f"t={entries[rank]:.9g} while its window {k - 1} "
                        f"flows drain until t={prev_quiet[rank]:.9g}; "
                        "back-to-back collectives this tight cannot be "
                        "sharded exactly"
                    )
            exits, quiets = _simulate_collective(
                replayer, n_ranks, kind, nbytes, flops, entries)
            prev_quiet = quiets
            for w in range(n_shards):
                slo, shi = sims[w]
                conns[w].send((
                    "release",
                    {r: exits[r] for r in range(slo, shi)},
                    {r: quiets[r] for r in range(slo, shi)},
                ))

        per_rank = [0.0] * n_ranks
        counter_blobs = []
        for w in range(n_shards):
            msg = recv_from(w)
            if msg[0] != "done":
                raise RuntimeError(
                    f"shard worker {w} desynchronized at the final merge: "
                    f"sent {msg[:2]}"
                )
            _tag, band_finish, _worker_now, counters = msg
            for rank, t in band_finish.items():
                per_rank[rank] = t
            counter_blobs.append(counters)
        for proc in workers:
            proc.join(timeout=30)
    finally:
        for proc in workers:
            if proc.is_alive():
                proc.terminate()
        for conn in conns:
            conn.close()

    metrics = None
    if replayer.telemetry is not None:
        n_windows = len(windows)
        replay_metrics = replayer.telemetry.replay
        replay_metrics.reset(n_ranks)
        replay_metrics.ops_compiled = sum(p.n_ops for p in programs)
        replay_metrics.computes_fused = sum(p.n_src - p.n_ops
                                            for p in programs)
        replay_metrics.phase_advances = n_windows
        replay_metrics.shard_merges = n_windows
        replay_section = replay_metrics.as_dict()
        replay_section.pop("per_rank")
        replay_section["n_actions"] = sum(p.n_src for p in programs)
        metrics = _merge_counters([b for b in counter_blobs if b])
        metrics["engine"]["aggregated_over_shards"] = n_shards
        metrics["comm"]["aggregated_over_shards"] = n_shards
        metrics["replay"] = replay_section
        # Workers simulate halo ranks on top of their bands, so per-op
        # attribution is not deduplicatable; sharded runs publish the
        # aggregate sections only.
        metrics["per_rank"] = []
        metrics["faults"] = replayer.telemetry.faults.as_dict()

    return ReplayResult(
        simulated_time=max(per_rank) if per_rank else 0.0,
        per_rank_time=per_rank,
        n_ranks=n_ranks,
        n_actions=sum(p.n_src for p in programs),
        wall_seconds=time.perf_counter() - wall_start,
        timed_trace=[],
        metrics=metrics,
    )
