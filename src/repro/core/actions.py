"""The time-independent trace actions of the paper's Table 1.

Each line of a time-independent trace describes one action of one MPI
process: the id of the acting process, the action type, and volumes in
flops or bytes — never a time-stamp.  The full action set implemented by
the paper's first prototype (Table 1):

=============== ==========================================
MPI call        Trace entry
=============== ==========================================
CPU burst       ``<id> compute <volume>``
MPI_Send        ``<id> send <dst_id> <volume>``
MPI_Isend       ``<id> Isend <dst_id> <volume>``
MPI_Recv        ``<id> recv <src_id> <volume>``
MPI_Irecv       ``<id> Irecv <src_id> <volume>``
MPI_Broadcast   ``<id> bcast <volume>``
MPI_Reduce      ``<id> reduce <vcomm> <vcomp>``
MPI_Allreduce   ``<id> allReduce <vcomm> <vcomp>``
MPI_Barrier     ``<id> barrier``
MPI_Comm_size   ``<id> comm_size <#proc>``
MPI_Wait        ``<id> wait``
=============== ==========================================

The format is workload-agnostic; four additional collectives cover the
communication shapes of AI-training traffic (data-parallel gradient
exchange, expert-parallel token routing) that the original LU-shaped
prototype never needed:

================== ===============================================
MPI call           Trace entry
================== ===============================================
MPI_Alltoall       ``<id> allToAll <volume>``   (bytes per peer)
MPI_Alltoallv      ``<id> allToAllv <total> <s0> ... <s_{n-1}>``
MPI_Allgather      ``<id> allGather <volume>``  (bytes contributed)
MPI_Reduce_scatter ``<id> reduceScatter <vcomm> <vcomp>``
================== ===============================================

``allToAllv`` split sizes are per *destination* rank (``s_i`` bytes to
process i; the own-rank slot stays local) and must sum to ``<total>`` —
an inconsistent line is rejected at parse time, never silently
truncated.

Process ids are written ``p<rank>`` as in the paper's Fig. 1.  Collectives
involve all processes (MPI_Comm_split is not part of the format) and are
rooted at process 0; a ``comm_size`` action must precede the first
collective in every process's trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = [
    "Action", "Compute", "Send", "Isend", "Recv", "Irecv", "Bcast",
    "Reduce", "AllReduce", "Barrier", "CommSize", "Wait",
    "AllToAll", "AllToAllv", "AllGather", "ReduceScatter",
    "format_action", "parse_action", "format_volume", "ACTION_NAMES",
]

#: Tolerance of the allToAllv split-sum consistency check: exact for the
#: integral volumes traces normally carry, forgiving only float rounding
#: for the escape-hatch non-integral ones.
SPLIT_SUM_ATOL = 1e-6
SPLIT_SUM_RTOL = 1e-9


def format_volume(value: float) -> str:
    """Canonical text form of a volume: integral values print as integers
    (``163840``), others in shortest float form.  Deterministic, so trace
    sizes are exactly reproducible."""
    if value == int(value) and abs(value) < 1e16:
        return str(int(value))
    return repr(float(value))


@dataclass(frozen=True)
class Action:
    """Base class: every action belongs to one process ``rank``."""

    rank: int

    name = "?"  # overridden

    def args(self) -> List[str]:
        return []

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")


@dataclass(frozen=True)
class Compute(Action):
    volume: float  # flops
    name = "compute"

    def args(self) -> List[str]:
        return [format_volume(self.volume)]

    def __post_init__(self) -> None:
        super().__post_init__()
        if not math.isfinite(self.volume) or self.volume < 0:
            raise ValueError(f"compute volume must be >= 0, got {self.volume}")


@dataclass(frozen=True)
class _PointToPoint(Action):
    peer: int      # destination (sends) or source (receives)
    volume: float  # bytes

    def args(self) -> List[str]:
        return [f"p{self.peer}", format_volume(self.volume)]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.peer < 0:
            raise ValueError(f"peer rank must be >= 0, got {self.peer}")
        if not math.isfinite(self.volume) or self.volume < 0:
            raise ValueError(f"message volume must be >= 0, got {self.volume}")


@dataclass(frozen=True)
class Send(_PointToPoint):
    name = "send"


@dataclass(frozen=True)
class Isend(_PointToPoint):
    name = "Isend"


@dataclass(frozen=True)
class Recv(_PointToPoint):
    name = "recv"


@dataclass(frozen=True)
class Irecv(_PointToPoint):
    name = "Irecv"


@dataclass(frozen=True)
class Bcast(Action):
    volume: float  # bytes
    name = "bcast"

    def args(self) -> List[str]:
        return [format_volume(self.volume)]

    def __post_init__(self) -> None:
        super().__post_init__()
        if not math.isfinite(self.volume) or self.volume < 0:
            raise ValueError(f"bcast volume must be >= 0, got {self.volume}")


@dataclass(frozen=True)
class _ReduceLike(Action):
    vcomm: float  # bytes moved
    vcomp: float  # flops of the reduction operator

    def args(self) -> List[str]:
        return [format_volume(self.vcomm), format_volume(self.vcomp)]

    def __post_init__(self) -> None:
        super().__post_init__()
        if (not math.isfinite(self.vcomm) or self.vcomm < 0
                or not math.isfinite(self.vcomp) or self.vcomp < 0):
            raise ValueError("reduce volumes must be >= 0 and finite")


@dataclass(frozen=True)
class Reduce(_ReduceLike):
    name = "reduce"


@dataclass(frozen=True)
class AllReduce(_ReduceLike):
    name = "allReduce"


@dataclass(frozen=True)
class AllToAll(Action):
    """Uniform all-to-all: every rank sends ``volume`` bytes to every
    other rank (the own-rank share stays local)."""

    volume: float  # bytes per destination rank
    name = "allToAll"

    def args(self) -> List[str]:
        return [format_volume(self.volume)]

    def __post_init__(self) -> None:
        super().__post_init__()
        if not math.isfinite(self.volume) or self.volume < 0:
            raise ValueError(
                f"allToAll volume must be >= 0, got {self.volume}")


@dataclass(frozen=True)
class AllToAllv(Action):
    """Vector all-to-all: ``splits[i]`` bytes go to process i (the
    own-rank slot stays local); the splits must sum to ``total``.

    Unlike every other collective, the volumes legitimately differ per
    rank — the validator checks split *count* agreement across ranks,
    and the replay's pairwise exchange takes each edge's volume from the
    sender's split, so asymmetric routing matrices replay exactly.
    """

    total: float            # sum of splits, bytes
    splits: Tuple[float, ...]  # per-destination bytes, len == comm size

    name = "allToAllv"

    def args(self) -> List[str]:
        return [format_volume(self.total)] + [format_volume(s)
                                              for s in self.splits]

    def __post_init__(self) -> None:
        super().__post_init__()
        splits = tuple(float(s) for s in self.splits)
        object.__setattr__(self, "splits", splits)
        if not splits:
            raise ValueError("allToAllv needs at least one split size")
        for s in splits:
            if not math.isfinite(s) or s < 0:
                raise ValueError(
                    f"allToAllv split sizes must be >= 0 and finite, got {s}")
        if not math.isfinite(self.total) or self.total < 0:
            raise ValueError(
                f"allToAllv total must be >= 0, got {self.total}")
        s = math.fsum(splits)
        if abs(s - self.total) > SPLIT_SUM_ATOL + SPLIT_SUM_RTOL * abs(self.total):
            raise ValueError(
                f"allToAllv split sizes sum to {s:g} but the total says "
                f"{self.total:g} — inconsistent record")


@dataclass(frozen=True)
class AllGather(Action):
    """All-gather: every rank contributes ``volume`` bytes and ends up
    with all ``size * volume`` bytes."""

    volume: float  # bytes contributed per rank
    name = "allGather"

    def args(self) -> List[str]:
        return [format_volume(self.volume)]

    def __post_init__(self) -> None:
        super().__post_init__()
        if not math.isfinite(self.volume) or self.volume < 0:
            raise ValueError(
                f"allGather volume must be >= 0, got {self.volume}")


@dataclass(frozen=True)
class ReduceScatter(_ReduceLike):
    """Reduce-scatter: ``vcomm`` bytes contributed per rank are reduced
    (``vcomp`` flops per contribution) and each rank keeps a
    ``vcomm / size`` share."""

    name = "reduceScatter"


@dataclass(frozen=True)
class Barrier(Action):
    name = "barrier"


@dataclass(frozen=True)
class CommSize(Action):
    size: int  # number of processes in the communicator
    name = "comm_size"

    def args(self) -> List[str]:
        return [str(self.size)]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.size < 1:
            raise ValueError(f"communicator size must be >= 1, got {self.size}")


@dataclass(frozen=True)
class Wait(Action):
    name = "wait"


ACTION_NAMES = {
    "compute": Compute,
    "send": Send,
    "Isend": Isend,
    "recv": Recv,
    "Irecv": Irecv,
    "bcast": Bcast,
    "reduce": Reduce,
    "allReduce": AllReduce,
    "barrier": Barrier,
    "comm_size": CommSize,
    "wait": Wait,
    "allToAll": AllToAll,
    "allToAllv": AllToAllv,
    "allGather": AllGather,
    "reduceScatter": ReduceScatter,
}


def format_action(action: Action) -> str:
    """One trace line, without the trailing newline: ``p1 send p0 163840``."""
    parts = [f"p{action.rank}", action.name] + action.args()
    return " ".join(parts)


def _parse_rank(token: str, line: str) -> int:
    if not token.startswith("p") or not token[1:].isdigit():
        raise ValueError(f"bad process id {token!r} in trace line {line!r}")
    return int(token[1:])


def parse_action(line: str) -> Action:
    """Parse one trace line back into an :class:`Action`."""
    tokens = line.split()
    if len(tokens) < 2:
        raise ValueError(f"trace line too short: {line!r}")
    rank = _parse_rank(tokens[0], line)
    name = tokens[1]
    args = tokens[2:]
    try:
        if name == "compute":
            (vol,) = args
            return Compute(rank, float(vol))
        if name in ("send", "Isend", "recv", "Irecv"):
            peer, vol = args
            cls = ACTION_NAMES[name]
            return cls(rank, _parse_rank(peer, line), float(vol))
        if name == "bcast":
            (vol,) = args
            return Bcast(rank, float(vol))
        if name in ("reduce", "allReduce", "reduceScatter"):
            vcomm, vcomp = args
            cls = ACTION_NAMES[name]
            return cls(rank, float(vcomm), float(vcomp))
        if name in ("allToAll", "allGather"):
            (vol,) = args
            cls = ACTION_NAMES[name]
            return cls(rank, float(vol))
        if name == "allToAllv":
            if len(args) < 2:
                raise ValueError(
                    "allToAllv needs a total and at least one split size")
            total = float(args[0])
            splits = tuple(float(s) for s in args[1:])
            return AllToAllv(rank, total, splits)
        if name == "barrier":
            if args:
                raise ValueError("barrier takes no arguments")
            return Barrier(rank)
        if name == "comm_size":
            (size,) = args
            return CommSize(rank, int(size))
        if name == "wait":
            if args:
                raise ValueError("wait takes no arguments")
            return Wait(rank)
    except Exception as exc:  # wrong arity unpacking, float() failures, ...
        raise ValueError(f"malformed trace line {line!r}: {exc}") from None
    raise ValueError(f"unknown action {name!r} in trace line {line!r}")
