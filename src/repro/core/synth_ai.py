"""Synthetic time-independent traces with AI-training action mixes.

:mod:`repro.core.synth` generates the LU stencil mix; this module adds
the three communication shapes a distributed training stack produces
(the ATLAHS-style workload taxonomy), each a pure function of
``(n_ranks, params, seed)``:

* **Data parallel** (:func:`synthetic_dp_actions`) — the
  allreduce-dominant shape of gradient exchange: one fused compute
  burst per step followed by bucketed ``allReduce`` calls (DDP-style
  gradient buckets), or ``reduceScatter`` + ``allGather`` pairs when
  ``algo="zero"`` (ZeRO/FSDP-style sharded optimizers).
* **Pipeline parallel** (:func:`synthetic_pp_actions`) — send/recv
  chains along the rank axis: per microbatch a forward activation hop
  ``rank -> rank+1`` and a backward gradient hop ``rank -> rank-1``,
  closed by a per-step ``allReduce`` for tied weights.  The chains are
  deadlock-free under blocking replay semantics (each hop's receive
  precedes the dependent send; there are no cycles).
* **MoE expert parallel** (:func:`synthetic_moe_actions`) — per layer a
  gate compute, an uneven ``allToAllv`` token dispatch, the expert
  compute, and the mirror ``allToAllv`` combine; a per-step
  ``allReduce`` covers the dense/shared parameters.

Determinism contract (what ``repro.campaign`` builds cache keys on):
same parameters, byte-identical traces.  DP and PP touch their RNG only
when ``jitter > 0`` (so the seed normalises to 0 at jitter 0, exactly
like the LU generator); MoE's routing splits are *always* a function of
the seed — ``(seed, step, layer, src)`` feeds a ``SeedSequence``, so
any rank can recompute any other rank's dispatch row without global
RNG state, which is how the combine's return splits (dispatch's matrix
transpose) are generated rank-locally.  The dispatch volumes are
integer-rounded by largest remainder so every ``allToAllv`` line's
splits sum *exactly* to its total.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional

import numpy as np

from .actions import (
    Action,
    AllGather,
    AllReduce,
    AllToAllv,
    CommSize,
    Compute,
    Irecv,
    Recv,
    ReduceScatter,
    Send,
    Wait,
    format_action,
)
from .synth import SYNTH_META_FILE
from .trace import trace_file_name

__all__ = [
    "AI_FAMILIES",
    "synthetic_dp_actions",
    "synthetic_pp_actions",
    "synthetic_moe_actions",
    "synth_dp_metadata",
    "synth_pp_metadata",
    "synth_moe_metadata",
    "write_synthetic_dp_trace",
    "write_synthetic_pp_trace",
    "write_synthetic_moe_trace",
    "write_synthetic_ai_trace",
    "moe_dispatch_splits",
]

#: The generator families this module adds beside synth.py's "lu".
AI_FAMILIES = ("dp", "pp", "moe")

#: Reduction-operator flops charged per 4 bytes reduced (one fp32 add).
_FLOPS_PER_REDUCED_BYTE = 0.25


def _jitter_rng(seed: int, rank: int, jitter: float):
    """The LU generator's RNG convention: per-rank, explicit, and only
    instantiated when jitter actually draws from it."""
    if jitter > 0.0:
        return np.random.default_rng(seed + 7919 * rank)
    return None


def _jittered(volume: float, rng, jitter: float) -> float:
    if rng is None:
        return volume
    return volume * (1.0 + jitter * float(rng.uniform(-1.0, 1.0)))


# ---------------------------------------------------------------------------
# Data parallel
# ---------------------------------------------------------------------------
def synth_dp_metadata(
    n_ranks: int,
    steps: int,
    bucket_bytes: float = 25 << 20,
    n_buckets: int = 4,
    step_flops: float = 2e9,
    algo: str = "allreduce",
    seed: int = 0,
    jitter: float = 0.0,
) -> Dict[str, object]:
    """Content address of a DP synthetic trace set (seed normalises to 0
    at jitter 0 — the RNG is never drawn from then)."""
    return {
        "generator": "dp-synth",
        "version": 1,
        "n_ranks": int(n_ranks),
        "steps": int(steps),
        "bucket_bytes": float(bucket_bytes),
        "n_buckets": int(n_buckets),
        "step_flops": float(step_flops),
        "algo": str(algo),
        "seed": int(seed) if float(jitter) > 0.0 else 0,
        "jitter": float(jitter),
    }


def synthetic_dp_actions(
    rank: int,
    n_ranks: int,
    steps: int,
    bucket_bytes: float = 25 << 20,
    n_buckets: int = 4,
    step_flops: float = 2e9,
    algo: str = "allreduce",
    seed: int = 0,
    jitter: float = 0.0,
) -> Iterator[Action]:
    """One rank's data-parallel action stream (lazy).

    Per step: one backward-pass compute burst, then ``n_buckets``
    gradient buckets of ``bucket_bytes`` each — exchanged as
    ``allReduce`` (``algo="allreduce"``, the DDP shape) or as a
    ``reduceScatter`` + ``allGather`` pair (``algo="zero"``, the
    sharded-optimizer shape; the allgather re-collects each rank's
    ``bucket_bytes / n_ranks`` updated shard).
    """
    if algo not in ("allreduce", "zero"):
        raise ValueError(
            f"unknown DP algo {algo!r}; expected 'allreduce' or 'zero'")
    rng = _jitter_rng(seed, rank, jitter)
    reduce_flops = bucket_bytes * _FLOPS_PER_REDUCED_BYTE
    yield CommSize(rank, n_ranks)
    for _step in range(steps):
        yield Compute(rank, _jittered(step_flops, rng, jitter))
        for _bucket in range(n_buckets):
            if algo == "allreduce":
                yield AllReduce(rank, bucket_bytes, reduce_flops)
            else:
                yield ReduceScatter(rank, bucket_bytes, reduce_flops)
                yield AllGather(rank, bucket_bytes / n_ranks)


# ---------------------------------------------------------------------------
# Pipeline parallel
# ---------------------------------------------------------------------------
def synth_pp_metadata(
    n_ranks: int,
    steps: int,
    microbatches: int = 4,
    activation_bytes: float = 8 << 20,
    stage_flops: float = 5e8,
    grad_bytes: float = 1 << 20,
    seed: int = 0,
    jitter: float = 0.0,
) -> Dict[str, object]:
    """Content address of a PP synthetic trace set."""
    return {
        "generator": "pp-synth",
        "version": 1,
        "n_ranks": int(n_ranks),
        "steps": int(steps),
        "microbatches": int(microbatches),
        "activation_bytes": float(activation_bytes),
        "stage_flops": float(stage_flops),
        "grad_bytes": float(grad_bytes),
        "seed": int(seed) if float(jitter) > 0.0 else 0,
        "jitter": float(jitter),
    }


def synthetic_pp_actions(
    rank: int,
    n_ranks: int,
    steps: int,
    microbatches: int = 4,
    activation_bytes: float = 8 << 20,
    stage_flops: float = 5e8,
    grad_bytes: float = 1 << 20,
    seed: int = 0,
    jitter: float = 0.0,
) -> Iterator[Action]:
    """One rank's pipeline-parallel action stream (lazy).

    Each rank is one pipeline stage.  Per step: every microbatch flows
    forward down the chain (receive the previous stage's activations,
    compute, send to the next stage), then backward up it (receive the
    next stage's gradients, compute, send to the previous stage); the
    step closes with an ``allReduce`` of ``grad_bytes`` for tied
    embeddings.  Forward receives are posted as ``Irecv`` before the
    compute so a stage's send to its successor can overlap the
    successor's previous-microbatch compute — the pipelining that makes
    this family's replay interesting.
    """
    rng = _jitter_rng(seed, rank, jitter)
    prev_rank = rank - 1 if rank > 0 else None
    next_rank = rank + 1 if rank < n_ranks - 1 else None
    yield CommSize(rank, n_ranks)
    for _step in range(steps):
        # Forward: activations ripple rank -> rank+1, one microbatch at
        # a time.  Post the receive early, compute only after it lands.
        for _mb in range(microbatches):
            if prev_rank is not None:
                yield Irecv(rank, prev_rank, activation_bytes)
                yield Wait(rank)
            yield Compute(rank, _jittered(stage_flops, rng, jitter))
            if next_rank is not None:
                yield Send(rank, next_rank, activation_bytes)
        # Backward: gradients ripple rank -> rank-1, reversed order.
        for _mb in range(microbatches):
            if next_rank is not None:
                yield Recv(rank, next_rank, activation_bytes)
            yield Compute(rank, _jittered(2.0 * stage_flops, rng, jitter))
            if prev_rank is not None:
                yield Send(rank, prev_rank, activation_bytes)
        yield AllReduce(rank, grad_bytes,
                        grad_bytes * _FLOPS_PER_REDUCED_BYTE)


# ---------------------------------------------------------------------------
# MoE expert parallel
# ---------------------------------------------------------------------------
def moe_dispatch_splits(
    n_ranks: int,
    tokens_bytes: int,
    seed: int,
    step: int,
    layer: int,
    src: int,
) -> List[float]:
    """Rank ``src``'s dispatch row for one (step, layer): how many token
    bytes it routes to each expert rank.

    Pure function of its arguments — any rank recomputes any row, which
    is how the combine's splits (the dispatch matrix's transpose column)
    are built without communication.  Largest-remainder rounding makes
    the row sum *exactly* ``tokens_bytes``.
    """
    ss = np.random.SeedSequence([int(seed), int(step), int(layer), int(src)])
    rng = np.random.default_rng(ss)
    weights = rng.random(n_ranks) + 1e-3  # never all-zero
    raw = weights / weights.sum() * float(int(tokens_bytes))
    floors = np.floor(raw)
    shortfall = int(round(int(tokens_bytes) - floors.sum()))
    if shortfall > 0:
        order = np.argsort(-(raw - floors), kind="stable")
        floors[order[:shortfall]] += 1.0
    return [float(v) for v in floors]


def synth_moe_metadata(
    n_ranks: int,
    steps: int,
    layers: int = 2,
    tokens_bytes: int = 4 << 20,
    gate_flops: float = 1e7,
    expert_flops: float = 5e8,
    dense_bytes: float = 4 << 20,
    seed: int = 0,
    jitter: float = 0.0,
) -> Dict[str, object]:
    """Content address of an MoE synthetic trace set.

    Unlike DP/PP (and LU), the seed is *never* normalised away: the
    routing splits draw from it regardless of jitter, so two seeds give
    genuinely different traces even at jitter 0.
    """
    return {
        "generator": "moe-synth",
        "version": 1,
        "n_ranks": int(n_ranks),
        "steps": int(steps),
        "layers": int(layers),
        "tokens_bytes": int(tokens_bytes),
        "gate_flops": float(gate_flops),
        "expert_flops": float(expert_flops),
        "dense_bytes": float(dense_bytes),
        "seed": int(seed),
        "jitter": float(jitter),
    }


def synthetic_moe_actions(
    rank: int,
    n_ranks: int,
    steps: int,
    layers: int = 2,
    tokens_bytes: int = 4 << 20,
    gate_flops: float = 1e7,
    expert_flops: float = 5e8,
    dense_bytes: float = 4 << 20,
    seed: int = 0,
    jitter: float = 0.0,
) -> Iterator[Action]:
    """One rank's MoE expert-parallel action stream (lazy).

    Per step and layer: the gate compute, the ``allToAllv`` dispatch of
    ``tokens_bytes`` routed unevenly across expert ranks, the expert
    compute, and the ``allToAllv`` combine sending every token back
    where it came from — rank r's combine row is column r of the
    layer's dispatch matrix, recomputed locally from the seed.  Each
    step closes with an ``allReduce`` over the dense parameters.
    """
    rng = _jitter_rng(seed, rank, jitter)
    yield CommSize(rank, n_ranks)
    for step in range(steps):
        for layer in range(layers):
            yield Compute(rank, _jittered(gate_flops, rng, jitter))
            dispatch = moe_dispatch_splits(
                n_ranks, tokens_bytes, seed, step, layer, rank)
            yield AllToAllv(rank, float(sum(dispatch)), tuple(dispatch))
            yield Compute(rank, _jittered(expert_flops, rng, jitter))
            combine = [
                moe_dispatch_splits(n_ranks, tokens_bytes, seed, step,
                                    layer, dst)[rank]
                for dst in range(n_ranks)
            ]
            yield AllToAllv(rank, float(sum(combine)), tuple(combine))
        yield AllReduce(rank, dense_bytes,
                        dense_bytes * _FLOPS_PER_REDUCED_BYTE)


# ---------------------------------------------------------------------------
# Trace-set writers
# ---------------------------------------------------------------------------
_FAMILY_TABLE = {
    "dp": (synthetic_dp_actions, synth_dp_metadata),
    "pp": (synthetic_pp_actions, synth_pp_metadata),
    "moe": (synthetic_moe_actions, synth_moe_metadata),
}


def write_synthetic_ai_trace(
    family: str,
    directory: str,
    n_ranks: int,
    steps: int,
    binary: bool = False,
    **params,
) -> int:
    """Write a per-process (Fig. 2) synthetic trace set of one AI
    family; returns the total action count.  Streams straight to disk
    and records the full parameter tuple (the content address) in
    ``synth_meta.json``, exactly like the LU writer."""
    try:
        generate, metadata = _FAMILY_TABLE[family]
    except KeyError:
        raise ValueError(
            f"unknown AI workload family {family!r}; expected one of "
            f"{sorted(_FAMILY_TABLE)}"
        ) from None
    os.makedirs(directory, exist_ok=True)
    n_actions = 0
    if binary:
        from .binfmt import binary_trace_file_name, write_binary_trace
        for rank in range(n_ranks):
            actions = list(generate(rank, n_ranks, steps, **params))
            write_binary_trace(
                actions, rank,
                os.path.join(directory, binary_trace_file_name(rank)),
            )
            n_actions += len(actions)
    else:
        for rank in range(n_ranks):
            path = os.path.join(directory, trace_file_name(rank))
            with open(path, "w", encoding="ascii",
                      buffering=1 << 16) as handle:
                for action in generate(rank, n_ranks, steps, **params):
                    handle.write(format_action(action) + "\n")
                    n_actions += 1
    meta = metadata(n_ranks, steps, **params)
    meta["n_actions"] = n_actions
    meta["binary"] = bool(binary)
    with open(os.path.join(directory, SYNTH_META_FILE), "w",
              encoding="ascii") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return n_actions


def write_synthetic_dp_trace(directory: str, n_ranks: int, steps: int,
                             binary: bool = False, **params) -> int:
    return write_synthetic_ai_trace("dp", directory, n_ranks, steps,
                                    binary=binary, **params)


def write_synthetic_pp_trace(directory: str, n_ranks: int, steps: int,
                             binary: bool = False, **params) -> int:
    return write_synthetic_ai_trace("pp", directory, n_ranks, steps,
                                    binary=binary, **params)


def write_synthetic_moe_trace(directory: str, n_ranks: int, steps: int,
                              binary: bool = False, **params) -> int:
    return write_synthetic_ai_trace("moe", directory, n_ranks, steps,
                                    binary=binary, **params)
