"""Calibration of the simulation (§5, last part).

Replaying a time-independent trace needs the platform file instantiated
with *pertinent values*:

* **Flop rate** (:func:`calibrate_flop_rate`): run a small instrumented
  instance of the target application, read the flops and duration of every
  CPU burst from the timed trace, compute a flops-weighted average rate
  per process, average across processes, repeat five times and average
  again to smooth runtime variation — exactly the paper's procedure.
  This single average rate is also the root cause of the replay error
  Fig. 8 reports, since the real rate is not constant across bursts.

* **Network** (:func:`calibrate_network`): a SKaMPI-style
  ``Pingpong_Send_Recv`` sweep between two nodes; the base latency is the
  1-byte ping-pong time divided by six (÷2 for one-way, ÷3 for the
  two-links-and-a-switch cluster path), the base bandwidth is the nominal
  link rate, and a per-segment least-squares fit yields the 3-segment
  piece-wise-linear model (8 parameters) used by the kernel.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..apps.bisection import default_size_sweep, pingpong_program
from ..extract import tau2simgrid
from ..simkernel import Host, Platform
from ..simkernel.pwl import (
    DEFAULT_MPI_MODEL,
    PiecewiseLinearModel,
    fit,
)
from ..smpi import MpiRuntime
from ..tracer import Tracer, VirtualCounterBank

__all__ = ["FlopRateCalibration", "NetworkCalibration",
           "calibrate_flop_rate", "calibrate_network"]


@dataclass
class FlopRateCalibration:
    """Result of the five-run flop-rate calibration."""

    rate: float                      # flop/s to instantiate hosts with
    per_run_rates: List[float]
    n_samples: int

    @property
    def spread(self) -> float:
        """Relative spread across runs (how noisy the calibration was)."""
        if not self.per_run_rates:
            return 0.0
        return (max(self.per_run_rates) - min(self.per_run_rates)) / self.rate


def calibrate_flop_rate(
    platform: Platform,
    deployment: Sequence[Host],
    program,
    runs: int = 5,
    jitter: float = 0.002,
    seed: int = 42,
    tracer_factory: Optional[Callable[[str], Tracer]] = None,
) -> FlopRateCalibration:
    """The paper's flop-rate procedure on a (small) instrumented instance.

    ``program`` is a rank program (e.g. ``LuWorkload("S", 4).program``).
    Each of the ``runs`` runs is instrumented, extracted with timings, and
    reduced to a flops-weighted mean rate per process; the final rate
    averages everything.  ``jitter`` injects the hardware-counter noise
    that makes the five runs differ (§6.2 observes <1 % of it).
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    per_run: List[float] = []
    n_samples = 0
    for run in range(runs):
        with tempfile.TemporaryDirectory(prefix="repro-calib-") as tau_dir:
            tracer = (tracer_factory(tau_dir) if tracer_factory is not None
                      else Tracer(tau_dir))
            papi = VirtualCounterBank(len(deployment), jitter=jitter,
                                      seed=seed + 1000 * run)
            runtime = MpiRuntime(platform, deployment, hooks=tracer,
                                 papi=papi)
            runtime.run(program)
            report = tau2simgrid(tau_dir, len(deployment), out_dir=None,
                                 collect_timings=True)
        # Flops-weighted average per process (rate_p = total flops /
        # total busy time), then a plain mean across the process set.
        flops_sum: Dict[int, float] = {}
        time_sum: Dict[int, float] = {}
        for sample in report.burst_samples:
            flops_sum[sample.rank] = flops_sum.get(sample.rank, 0.0) + sample.flops
            time_sum[sample.rank] = time_sum.get(sample.rank, 0.0) + sample.seconds
        rank_rates = [
            flops_sum[r] / time_sum[r] for r in flops_sum if time_sum[r] > 0
        ]
        if not rank_rates:
            raise ValueError(
                "calibration run produced no timed compute bursts; is the "
                "program free of computation?"
            )
        per_run.append(float(np.mean(rank_rates)))
        n_samples += len(report.burst_samples)
    return FlopRateCalibration(
        rate=float(np.mean(per_run)),
        per_run_rates=per_run,
        n_samples=n_samples,
    )


@dataclass
class NetworkCalibration:
    """Result of the SKaMPI + piece-wise-linear-fit procedure."""

    latency: float                   # per-link base latency (1-byte RTT / 6)
    bandwidth: float                 # nominal link bandwidth
    model: PiecewiseLinearModel      # fitted 3-segment model
    measurements: Dict[int, float] = field(default_factory=dict)  # size -> RTT


def calibrate_network(
    platform: Platform,
    deployment: Sequence[Host],
    sizes: Optional[Sequence[int]] = None,
    repetitions: int = 5,
    links_in_path: int = 3,
    boundaries: Sequence[float] = (1024.0, 65536.0),
) -> NetworkCalibration:
    """Run the ping-pong sweep between the first two deployed hosts and
    fit the piece-wise-linear MPI model.

    ``links_in_path`` is the factor accounting for the cluster topology in
    the latency rule: two nodes sit behind two links and one switch, hence
    the division by 2 x 3 = 6 of the paper.
    """
    if len(deployment) < 2:
        raise ValueError("network calibration needs two deployed hosts")
    if sizes is None:
        sizes = default_size_sweep()
    sizes = sorted(set(int(s) for s in sizes))
    if sizes[0] > 1:
        sizes = [1] + sizes  # the 1-byte point anchors the latency rule
    results: Dict[int, float] = {}
    runtime = MpiRuntime(platform, deployment[:2],
                         comm_model=DEFAULT_MPI_MODEL)
    runtime.run(
        lambda mpi: pingpong_program(mpi, sizes, repetitions, results)
    )
    latency = results[1] / (2 * links_in_path)
    bandwidth = deployment[0].up.bandwidth
    one_way_sizes = np.array(sizes, dtype=float)
    one_way_times = np.array([results[s] / 2.0 for s in sizes])
    model = fit(one_way_sizes, one_way_times,
                latency=links_in_path * latency,
                bandwidth=bandwidth,
                boundaries=boundaries)
    return NetworkCalibration(
        latency=latency,
        bandwidth=bandwidth,
        model=model,
        measurements=results,
    )
