"""Synthetic time-independent traces with the LU action mix.

The rank-scaling benchmarks (and the CI smoke job) need traces far
larger than anything worth acquiring through the full simulated runtime:
a 1024-rank replay input.  Acquisition cost is O(simulated run); this
module instead *writes the trace directly* — per rank, the ghost-cell
exchange / compute / periodic-allReduce skeleton of an NPB LU SSOR
iteration (reusing :class:`~repro.apps.lu.LuGrid` for the 2-D pencil
decomposition and the real class B/C face volumes), shaped exactly like
what acquisition of LU produces but generated in O(actions) time with
O(1) memory per rank.

The per-iteration pattern mirrors ``exchange_3`` + the triangular
sweeps, flattened to the blocking-replay action set (Table 1): post
``Irecv`` for every neighbour, pack + ``send`` each face, ``wait`` the
receives, one fused compute burst, and every ``inorm`` iterations an
``allReduce`` — deadlock-free under the replayer's oldest-pending-wait
semantics because every rank posts its receives before its sends.

Determinism contract (what ``repro.campaign`` builds its cache keys on):
the generator is a pure function of its parameters.  The only source of
randomness — the optional per-burst compute ``jitter`` that mimics the
hardware-counter wobble of acquired traces — draws from an *explicit*
``seed`` through a per-rank ``numpy`` generator, so the same
``(n_ranks, iterations, cls, inorm, seed, jitter)`` tuple yields
byte-identical traces in any process (no interpreter hash randomisation,
no global RNG state).  :func:`write_synthetic_lu_trace` records that
tuple in a ``synth_meta.json`` sidecar next to the trace files, which is
exactly the content address of the trace set.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional

import numpy as np

from ..apps.classes import lu_class
from ..apps.lu import (
    FLOPS_ADD,
    FLOPS_LOWER,
    FLOPS_RHS,
    FLOPS_UPPER,
    LuGrid,
    NORM_BYTES,
    NORM_FLOPS,
    PACK_FLOPS_PER_BYTE,
)
from .actions import (
    Action,
    AllReduce,
    Compute,
    Irecv,
    CommSize,
    Send,
    Wait,
    format_action,
)
from .trace import trace_file_name

__all__ = [
    "SYNTH_META_FILE",
    "synthetic_lu_actions",
    "synth_metadata",
    "read_synth_metadata",
    "write_synthetic_lu_trace",
]

#: Sidecar file recording the generator parameters of a synthetic trace
#: directory — the content address campaign cache keys digest.
SYNTH_META_FILE = "synth_meta.json"


def synth_metadata(
    n_ranks: int,
    iterations: int,
    cls: str = "B",
    inorm: int = 8,
    seed: int = 0,
    jitter: float = 0.0,
    compute_split: int = 1,
) -> Dict[str, object]:
    """The full parameter tuple that determines a synthetic trace set.

    Two directories written with equal metadata hold byte-identical
    traces; any single differing field yields a different trace — with
    one deliberate exception: when ``jitter`` is 0 the RNG is never
    drawn from, so the seed cannot influence the trace and is
    normalised to 0 here (and in the campaign cache's trace address) to
    keep equal traces under equal keys.  ``repro.campaign.cache``
    digests this dict.
    """
    return {
        "generator": "lu-synth",
        "version": 1,
        "n_ranks": int(n_ranks),
        "iterations": int(iterations),
        "cls": str(cls),
        "inorm": int(inorm),
        "seed": int(seed) if float(jitter) > 0.0 else 0,
        "jitter": float(jitter),
        "compute_split": int(compute_split),
    }


def read_synth_metadata(directory: str) -> Optional[Dict[str, object]]:
    """The ``synth_meta.json`` of a trace directory, or None when the
    directory was not written by :func:`write_synthetic_lu_trace`."""
    path = os.path.join(directory, SYNTH_META_FILE)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="ascii") as handle:
        return json.load(handle)


def synthetic_lu_actions(
    rank: int,
    n_ranks: int,
    iterations: int,
    cls: str = "B",
    inorm: int = 8,
    seed: int = 0,
    jitter: float = 0.0,
    compute_split: int = 1,
) -> Iterator[Action]:
    """One rank's synthetic LU-mix action stream (lazy).

    ``jitter`` perturbs each sweep's compute burst by a uniform factor in
    ``[1 - jitter, 1 + jitter]`` — the synthetic analogue of the <1 %
    hardware-counter wobble acquired traces carry (§6.2).  The draws come
    from ``default_rng(seed + 7919 * rank)``: explicit, per-rank, and
    deterministic across processes.

    ``compute_split`` controls the granularity of the sweep burst: 1
    (default) aggregates each SSOR sweep's flops into one ``compute``
    record — the shape of traces instrumented at MPI-call boundaries —
    while k > 1 emits k consecutive ``compute`` records of flops/k,
    the shape function-level instrumentation produces (one record per
    traced routine: rhs, jacld/blts, jacu/buts, ...).  The total flop
    volume is unchanged.
    """
    config = lu_class(cls)
    grid = LuGrid.build(config, n_ranks, rank)
    neighbours: List[int] = [
        p for p in (grid.north, grid.south, grid.west, grid.east)
        if p is not None
    ]
    face_bytes = {
        grid.north: grid.ns_face_bytes, grid.south: grid.ns_face_bytes,
        grid.west: grid.ew_face_bytes, grid.east: grid.ew_face_bytes,
    }
    sweep_flops = float(
        (FLOPS_RHS + FLOPS_LOWER + FLOPS_UPPER + FLOPS_ADD) * grid.points
    )
    rng = np.random.default_rng(seed + 7919 * rank) if jitter > 0.0 else None
    yield CommSize(rank, n_ranks)
    for istep in range(1, iterations + 1):
        for peer in neighbours:
            yield Irecv(rank, peer, face_bytes[peer])
        for peer in neighbours:
            nbytes = face_bytes[peer]
            yield Compute(rank, nbytes * PACK_FLOPS_PER_BYTE)
            yield Send(rank, peer, nbytes)
        for _ in neighbours:
            yield Wait(rank)
        if rng is None:
            burst = sweep_flops
        else:
            factor = 1.0 + jitter * float(rng.uniform(-1.0, 1.0))
            burst = sweep_flops * factor
        if compute_split <= 1:
            yield Compute(rank, burst)
        else:
            part = burst / compute_split
            for _ in range(compute_split):
                yield Compute(rank, part)
        if istep % inorm == 0:
            yield AllReduce(rank, NORM_BYTES, NORM_FLOPS)


def write_synthetic_lu_trace(
    directory: str,
    n_ranks: int,
    iterations: int,
    cls: str = "B",
    inorm: int = 8,
    binary: bool = False,
    seed: int = 0,
    jitter: float = 0.0,
    compute_split: int = 1,
) -> int:
    """Write a per-process (Fig. 2) synthetic trace set; returns the
    total action count.  Streams straight to disk — generating a
    1024-rank trace never holds more than one action in memory.  The
    generator parameters (seed included) land in ``synth_meta.json``
    alongside the traces."""
    os.makedirs(directory, exist_ok=True)
    n_actions = 0
    if binary:
        from .binfmt import binary_trace_file_name, write_binary_trace
        for rank in range(n_ranks):
            actions = list(
                synthetic_lu_actions(rank, n_ranks, iterations, cls, inorm,
                                     seed=seed, jitter=jitter,
                                     compute_split=compute_split)
            )
            write_binary_trace(
                actions, rank,
                os.path.join(directory, binary_trace_file_name(rank)),
            )
            n_actions += len(actions)
    else:
        for rank in range(n_ranks):
            path = os.path.join(directory, trace_file_name(rank))
            with open(path, "w", encoding="ascii",
                      buffering=1 << 16) as handle:
                for action in synthetic_lu_actions(rank, n_ranks, iterations,
                                                   cls, inorm, seed=seed,
                                                   jitter=jitter,
                                                   compute_split=compute_split):
                    handle.write(format_action(action) + "\n")
                    n_actions += 1
    meta = synth_metadata(n_ranks, iterations, cls, inorm, seed, jitter,
                          compute_split)
    meta["n_actions"] = n_actions
    meta["binary"] = bool(binary)
    with open(os.path.join(directory, SYNTH_META_FILE), "w",
              encoding="ascii") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return n_actions
