"""Synthetic time-independent traces with the LU action mix.

The rank-scaling benchmarks (and the CI smoke job) need traces far
larger than anything worth acquiring through the full simulated runtime:
a 1024-rank replay input.  Acquisition cost is O(simulated run); this
module instead *writes the trace directly* — per rank, the ghost-cell
exchange / compute / periodic-allReduce skeleton of an NPB LU SSOR
iteration (reusing :class:`~repro.apps.lu.LuGrid` for the 2-D pencil
decomposition and the real class B/C face volumes), shaped exactly like
what acquisition of LU produces but generated in O(actions) time with
O(1) memory per rank.

The per-iteration pattern mirrors ``exchange_3`` + the triangular
sweeps, flattened to the blocking-replay action set (Table 1): post
``Irecv`` for every neighbour, pack + ``send`` each face, ``wait`` the
receives, one fused compute burst, and every ``inorm`` iterations an
``allReduce`` — deadlock-free under the replayer's oldest-pending-wait
semantics because every rank posts its receives before its sends.
"""

from __future__ import annotations

import os
from typing import Iterator, List, Optional

from ..apps.classes import lu_class
from ..apps.lu import (
    FLOPS_ADD,
    FLOPS_LOWER,
    FLOPS_RHS,
    FLOPS_UPPER,
    LuGrid,
    NORM_BYTES,
    NORM_FLOPS,
    PACK_FLOPS_PER_BYTE,
)
from .actions import (
    Action,
    AllReduce,
    Compute,
    Irecv,
    CommSize,
    Send,
    Wait,
    format_action,
)
from .trace import trace_file_name

__all__ = ["synthetic_lu_actions", "write_synthetic_lu_trace"]


def synthetic_lu_actions(
    rank: int,
    n_ranks: int,
    iterations: int,
    cls: str = "B",
    inorm: int = 8,
) -> Iterator[Action]:
    """One rank's synthetic LU-mix action stream (lazy)."""
    config = lu_class(cls)
    grid = LuGrid.build(config, n_ranks, rank)
    neighbours: List[int] = [
        p for p in (grid.north, grid.south, grid.west, grid.east)
        if p is not None
    ]
    face_bytes = {
        grid.north: grid.ns_face_bytes, grid.south: grid.ns_face_bytes,
        grid.west: grid.ew_face_bytes, grid.east: grid.ew_face_bytes,
    }
    sweep_flops = float(
        (FLOPS_RHS + FLOPS_LOWER + FLOPS_UPPER + FLOPS_ADD) * grid.points
    )
    yield CommSize(rank, n_ranks)
    for istep in range(1, iterations + 1):
        for peer in neighbours:
            yield Irecv(rank, peer, face_bytes[peer])
        for peer in neighbours:
            nbytes = face_bytes[peer]
            yield Compute(rank, nbytes * PACK_FLOPS_PER_BYTE)
            yield Send(rank, peer, nbytes)
        for _ in neighbours:
            yield Wait(rank)
        yield Compute(rank, sweep_flops)
        if istep % inorm == 0:
            yield AllReduce(rank, NORM_BYTES, NORM_FLOPS)


def write_synthetic_lu_trace(
    directory: str,
    n_ranks: int,
    iterations: int,
    cls: str = "B",
    inorm: int = 8,
    binary: bool = False,
) -> int:
    """Write a per-process (Fig. 2) synthetic trace set; returns the
    total action count.  Streams straight to disk — generating a
    1024-rank trace never holds more than one action in memory."""
    os.makedirs(directory, exist_ok=True)
    n_actions = 0
    if binary:
        from .binfmt import binary_trace_file_name, write_binary_trace
        for rank in range(n_ranks):
            actions = list(
                synthetic_lu_actions(rank, n_ranks, iterations, cls, inorm)
            )
            write_binary_trace(
                actions, rank,
                os.path.join(directory, binary_trace_file_name(rank)),
            )
            n_actions += len(actions)
        return n_actions
    for rank in range(n_ranks):
        path = os.path.join(directory, trace_file_name(rank))
        with open(path, "w", encoding="ascii", buffering=1 << 16) as handle:
            for action in synthetic_lu_actions(rank, n_ranks, iterations,
                                               cls, inorm):
                handle.write(format_action(action) + "\n")
                n_actions += 1
    return n_actions
