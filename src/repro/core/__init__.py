"""The paper's contribution: time-independent traces, replay, acquisition.

* :mod:`repro.core.actions` / :mod:`repro.core.trace` — the trace format
  of Table 1 and its containers/IO/size accounting.
* :mod:`repro.core.replay` — the trace replay tool of §5.
* :mod:`repro.core.acquisition` — the four-step pipeline and modes of §4.
* :mod:`repro.core.calibration` — flop-rate and network calibration (§5).
* :mod:`repro.core.gather` — K-nomial tree trace gathering (§4.3).
"""

from .actions import (
    ACTION_NAMES, Action, AllReduce, Barrier, Bcast, CommSize, Compute,
    Irecv, Isend, Recv, Reduce, Send, Wait, format_action, format_volume,
    parse_action,
)
from .acquisition import (
    AcquisitionMode, AcquisitionResult, acquire, build_deployment,
)
from .calibration import (
    FlopRateCalibration, NetworkCalibration, calibrate_flop_rate,
    calibrate_network,
)
from .gather import (
    GatherResult, gather_files, knomial_rounds, knomial_schedule,
    simulate_gather,
)
from .replay import ReplayResult, TraceReplayer
from .validate import Finding, ValidationReport, validate_trace
from .trace import (
    FileTraceWriter, InMemoryTrace, SizeAccountant, SizeReport, TeeSink,
    TraceSink, estimate_gzip_ratio, read_merged_trace, read_trace_dir,
    read_trace_file, trace_file_name, write_merged_trace,
)

__all__ = [
    "ACTION_NAMES", "Action", "AcquisitionMode", "AcquisitionResult",
    "AllReduce", "Barrier", "Bcast", "CommSize", "Compute",
    "FileTraceWriter", "FlopRateCalibration", "GatherResult",
    "InMemoryTrace", "Irecv", "Isend", "NetworkCalibration", "Recv",
    "Reduce", "ReplayResult", "Send", "SizeAccountant", "SizeReport",
    "TeeSink", "TraceReplayer", "TraceSink", "Wait", "acquire",
    "build_deployment", "calibrate_flop_rate", "calibrate_network",
    "estimate_gzip_ratio", "format_action", "format_volume", "gather_files",
    "knomial_rounds", "knomial_schedule", "parse_action",
    "Finding", "ValidationReport", "validate_trace",
    "read_merged_trace", "read_trace_dir", "read_trace_file",
    "simulate_gather", "trace_file_name", "write_merged_trace",
]
