"""K-nomial tree gathering of trace files (§4.3's fourth step).

After extraction, per-process time-independent traces sit on the nodes
that ran the instrumented application; the replay needs them on a single
node.  The paper gathers them over a K-nomial tree — ``log_{K+1}(N)``
rounds for N files, with the arity configurable against the node count.

Two entry points:

* :func:`simulate_gather` — simulated transfer time of the tree reduction
  over the acquisition platform (the 'Gathering' bars of Fig. 7).
* :func:`gather_files` — actually move per-node trace files into one
  directory (the real-file analogue used by the end-to-end pipeline).
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..simkernel import CommSystem, Engine, Host, Platform
from ..simkernel.pwl import IDENTITY_MODEL

__all__ = ["knomial_rounds", "knomial_schedule", "simulate_gather",
           "GatherResult", "gather_files"]


def knomial_rounds(n_nodes: int, arity: int) -> int:
    """Number of rounds: ``ceil(log_{K+1} N)`` (§4.3)."""
    if n_nodes < 1:
        raise ValueError("need at least one node")
    if arity < 1:
        raise ValueError("arity must be >= 1")
    rounds = 0
    span = 1
    while span < n_nodes:
        span *= arity + 1
        rounds += 1
    return rounds


def knomial_schedule(n_nodes: int, arity: int
                     ) -> List[List[Tuple[int, int]]]:
    """Per-round (sender, receiver) pairs of the K-nomial gather to node 0.

    In round ``r`` (0-based), node ``i`` with ``i % (K+1)^(r+1) == 0``
    receives from ``i + j*(K+1)^r`` for ``j = 1..K`` (those that exist).
    Every sender ships everything it has accumulated so far.
    """
    schedule: List[List[Tuple[int, int]]] = []
    step = 1
    while step < n_nodes:
        round_pairs = []
        block = step * (arity + 1)
        for recv in range(0, n_nodes, block):
            for j in range(1, arity + 1):
                sender = recv + j * step
                if sender < n_nodes:
                    round_pairs.append((sender, recv))
        schedule.append(round_pairs)
        step = block
    return schedule


@dataclass
class GatherResult:
    """Simulated cost of one tree gather."""

    time: float
    n_rounds: int
    total_bytes: float
    arity: int


def simulate_gather(
    platform: Platform,
    node_hosts: Sequence[Host],
    node_bytes: Sequence[float],
    arity: int = 4,
) -> GatherResult:
    """Simulated time to funnel ``node_bytes[i]`` from ``node_hosts[i]``
    to ``node_hosts[0]`` over a K-nomial tree (default 4-nomial, as the
    paper's experiments).  Transfers within a round run concurrently and
    contend on the links; rounds synchronise (each node forwards only what
    it has fully received)."""
    if len(node_hosts) != len(node_bytes):
        raise ValueError("one byte count per node is required")
    n = len(node_hosts)
    if n == 0:
        raise ValueError("need at least one node")
    schedule = knomial_schedule(n, arity)
    engine = Engine()
    comms = CommSystem(engine, platform, dict(enumerate(node_hosts)),
                       comm_model=IDENTITY_MODEL,
                       eager_threshold=0)  # file copies are synchronous
    accumulated = [float(b) for b in node_bytes]

    def node_proc(idx: int):
        for round_pairs in schedule:
            sends = [(s, r) for (s, r) in round_pairs if s == idx]
            recvs = [(s, r) for (s, r) in round_pairs if r == idx]
            if sends:
                (_, dst) = sends[0]
                yield from comms.send(idx, dst, accumulated[idx])
                return  # a sender is done after forwarding its subtree
            # Post every receive of the round before waiting on any:
            # same-round uploads run concurrently and contend on the
            # links (serialising them inflates the Fig. 7 gathering bars).
            reqs = [comms.irecv(idx, src=src) for (src, _) in recvs]
            for req in reqs:
                yield req
                accumulated[idx] += req.size

    for idx in range(n):
        engine.add_process(f"node{idx}", node_proc(idx))
    makespan = engine.run()
    return GatherResult(
        time=makespan,
        n_rounds=len(schedule),
        total_bytes=sum(node_bytes),
        arity=arity,
    )


def gather_files(node_dirs: Sequence[str], dest_dir: str) -> int:
    """Physically collect per-rank trace files into ``dest_dir``.

    All three representations the replayer accepts are gathered: plain
    ``SG_process*.trace``, gzipped ``.trace.gz``, and binary ``.btrace``.
    Returns the number of files moved.  Duplicated rank files across
    source directories are an error — each rank's trace must live on
    exactly one acquisition node.
    """
    os.makedirs(dest_dir, exist_ok=True)
    moved = 0
    seen: Dict[str, str] = {}
    for directory in node_dirs:
        for name in sorted(os.listdir(directory)):
            if not (name.startswith("SG_process")
                    and name.endswith((".trace", ".trace.gz", ".btrace"))):
                continue
            if name in seen:
                raise ValueError(
                    f"rank trace {name} present in both {seen[name]!r} "
                    f"and {directory!r}"
                )
            seen[name] = directory
            shutil.move(os.path.join(directory, name),
                        os.path.join(dest_dir, name))
            moved += 1
    return moved
