"""Static validation of time-independent traces.

Replaying a multi-gigabyte trace only to hit a deadlock or a volume
mismatch hours in is miserable; this validator checks the §3 format
contracts *statically*, in one pass over the trace:

* **Point-to-point matching** — for every directed pair (a, b), the
  sequence of volumes sent by `a` to `b` (send + Isend, in program order)
  must equal the sequence received by `b` from `a` (recv + resolved
  Irecv).  MPI's non-overtaking rule makes order part of the contract.
* **Request balance** — every `wait` must have a pending `Irecv` before
  it, and no `Irecv` may be left pending at end of trace.
* **Collective agreement** — all ranks must issue the same sequence of
  collectives with the same volumes (a mismatched bcast count hangs the
  replay); `comm_size` must precede the first collective and agree across
  ranks.
* **Self-messaging** — a rank sending to itself would self-deadlock under
  blocking replay semantics and is reported.

The result is a list of findings, empty when the trace is replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .actions import (
    AllGather, AllReduce, AllToAll, AllToAllv, Barrier, Bcast, CommSize,
    Irecv, Isend, Recv, Reduce, ReduceScatter, Send, Wait,
)
from .trace import InMemoryTrace

__all__ = ["Finding", "ValidationReport", "validate_trace"]


@dataclass(frozen=True)
class Finding:
    """One validation problem."""

    severity: str   # "error" | "warning"
    rank: int       # primary rank involved (-1 for global findings)
    message: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        where = "global" if self.rank < 0 else f"p{self.rank}"
        return f"[{self.severity}] {where}: {self.message}"


@dataclass
class ValidationReport:
    findings: List[Finding] = field(default_factory=list)
    n_actions: int = 0
    n_ranks: int = 0

    @property
    def ok(self) -> bool:
        return not any(f.severity == "error" for f in self.findings)

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    def as_dict(self) -> dict:
        """JSON document of the report (``repro-validate --format json``)."""
        errors = self.errors()
        return {
            "ok": self.ok,
            "n_ranks": self.n_ranks,
            "n_actions": self.n_actions,
            "n_errors": len(errors),
            "n_warnings": len(self.findings) - len(errors),
            "findings": [
                {"severity": f.severity, "rank": f.rank,
                 "message": f.message}
                for f in self.findings
            ],
        }

    def summary(self) -> str:
        status = "OK" if self.ok else "INVALID"
        lines = [
            f"{status}: {self.n_ranks} ranks, {self.n_actions} actions, "
            f"{len(self.errors())} error(s), "
            f"{len(self.findings) - len(self.errors())} warning(s)"
        ]
        lines += [str(f) for f in self.findings[:50]]
        if len(self.findings) > 50:
            lines.append(f"... and {len(self.findings) - 50} more")
        return "\n".join(lines)


def validate_trace(trace: InMemoryTrace,
                   max_findings: int = 1000) -> ValidationReport:
    """Check a trace set against the format's §3 contracts."""
    report = ValidationReport(n_ranks=len(trace.ranks()),
                              n_actions=trace.n_actions())
    findings = report.findings

    def add(severity: str, rank: int, message: str) -> None:
        if len(findings) < max_findings:
            findings.append(Finding(severity, rank, message))

    ranks = trace.ranks()
    if ranks != list(range(len(ranks))):
        add("error", -1, f"ranks are not contiguous from 0: {ranks[:10]}")
        return report

    sent: Dict[Tuple[int, int], List[float]] = {}
    received: Dict[Tuple[int, int], List[float]] = {}
    collectives: Dict[int, List[Tuple[str, float, float]]] = {}
    comm_sizes: Dict[int, int] = {}

    for rank in ranks:
        pending_irecvs: List[Irecv] = []
        saw_comm_size = False
        for index, action in enumerate(trace.actions_of(rank)):
            if action.rank != rank:
                add("error", rank,
                    f"action #{index} belongs to p{action.rank}")
                continue
            if isinstance(action, (Send, Isend)):
                if action.peer == rank:
                    add("error", rank,
                        f"action #{index} sends to itself")
                elif action.peer >= len(ranks):
                    add("error", rank,
                        f"action #{index} sends to non-existent "
                        f"p{action.peer}")
                else:
                    sent.setdefault((rank, action.peer), []).append(
                        action.volume)
            elif isinstance(action, Recv):
                if action.peer >= len(ranks):
                    add("error", rank,
                        f"action #{index} receives from non-existent "
                        f"p{action.peer}")
                else:
                    received.setdefault((action.peer, rank), []).append(
                        action.volume)
            elif isinstance(action, Irecv):
                pending_irecvs.append(action)
                if action.peer >= len(ranks):
                    add("error", rank,
                        f"action #{index} Irecvs from non-existent "
                        f"p{action.peer}")
            elif isinstance(action, Wait):
                if not pending_irecvs:
                    add("error", rank,
                        f"action #{index} is a wait with no pending Irecv")
                else:
                    resolved = pending_irecvs.pop(0)
                    if resolved.peer < len(ranks):
                        received.setdefault(
                            (resolved.peer, rank), []).append(resolved.volume)
            elif isinstance(action, (Bcast, Reduce, AllReduce, Barrier,
                                     AllToAll, AllToAllv, AllGather,
                                     ReduceScatter)):
                if not saw_comm_size:
                    add("error", rank,
                        f"action #{index} ({action.name}) precedes "
                        "comm_size (required by the format, §3)")
                if isinstance(action, (Bcast, AllToAll, AllGather)):
                    signature = (action.name, action.volume, 0.0)
                elif isinstance(action, Barrier):
                    signature = (action.name, 0.0, 0.0)
                elif isinstance(action, AllToAllv):
                    # Per-rank split totals legitimately differ (that is
                    # the point of the v-variant); what must agree across
                    # ranks is the split *count* — it is the communicator
                    # size the pairwise exchange iterates over.
                    declared = comm_sizes.get(rank)
                    if declared is not None and len(action.splits) != declared:
                        add("error", rank,
                            f"action #{index} allToAllv carries "
                            f"{len(action.splits)} split sizes but "
                            f"comm_size declares {declared}")
                    signature = (action.name, float(len(action.splits)), 0.0)
                else:
                    signature = (action.name, action.vcomm, action.vcomp)
                collectives.setdefault(rank, []).append(signature)
            elif isinstance(action, CommSize):
                saw_comm_size = True
                previous = comm_sizes.get(rank)
                if previous is not None and previous != action.size:
                    add("warning", rank,
                        f"comm_size changes from {previous} to "
                        f"{action.size}")
                comm_sizes[rank] = action.size
        if pending_irecvs:
            add("error", rank,
                f"{len(pending_irecvs)} Irecv(s) never waited on")

    # Cross-rank checks -----------------------------------------------------
    declared = {size for size in comm_sizes.values()}
    if len(declared) > 1:
        add("error", -1, f"ranks disagree on comm_size: {sorted(declared)}")
    elif declared and declared != {len(ranks)}:
        add("warning", -1,
            f"comm_size {declared.pop()} differs from the trace's "
            f"{len(ranks)} ranks")

    for key in sorted(set(sent) | set(received)):
        src, dst = key
        sends = sent.get(key, [])
        recvs = received.get(key, [])
        if len(sends) != len(recvs):
            add("error", dst,
                f"p{src}->p{dst}: {len(sends)} message(s) sent but "
                f"{len(recvs)} received")
        for i, (s_volume, r_volume) in enumerate(zip(sends, recvs)):
            if s_volume != r_volume:
                add("error", dst,
                    f"p{src}->p{dst} message #{i}: sent {s_volume:g} B "
                    f"but received {r_volume:g} B")
                break  # one finding per pair is enough

    sequences = {rank: tuple(seq) for rank, seq in collectives.items()}
    if sequences:
        reference_rank = min(sequences)
        reference = sequences[reference_rank]
        participating = set(sequences)
        if len(participating) != len(ranks):
            missing = sorted(set(ranks) - participating)
            add("error", -1,
                f"ranks {missing[:10]} issue no collectives while others do")
        for rank in sorted(participating):
            if sequences[rank] != reference:
                add("error", rank,
                    f"collective sequence differs from p{reference_rank} "
                    f"({len(sequences[rank])} vs {len(reference)} calls or "
                    "mismatched volumes)")
    return report
