"""tau2simgrid: timed TAU traces -> time-independent traces (§4.3).

The extractor implements the TFR callbacks and rebuilds, per rank, the
action list of Table 1:

* **Compute bursts** come from PAPI_FP_OPS counter deltas: the trigger
  following an MPI EnterState ends the burst started at the previous MPI
  LeaveState.  Flops counted *inside* an MPI call (buffer handling) are
  ignored — the network model accounts for them (§4.3).
* **send/Isend/recv** come from the SendMessage/RecvMessage records inside
  the corresponding MPI state.
* **Irecv** needs the *lookup technique* of §4.3: at MPI_Irecv time the
  source and size are unknown; the RecvMessage record appears later,
  inside the matching MPI_Wait.  The extractor emits a placeholder and
  patches the oldest pending one when that record shows up — matching the
  replayer's wait semantics, which completes pending Irecvs oldest-first.
* **wait** is emitted only for MPI_Wait calls that resolved a receive; a
  wait on a send request has no time-independent counterpart (the replayer
  treats Isend as a detached send).
* **Collectives** take their volumes from the user-event triggers the
  tracer writes inside the call; ``comm_size`` uses the world size.

``TAU_USER``-group events (instrumented application functions) carry no
actions of their own — but their counter triggers keep ``last_fp`` fresh,
which is how the trailing compute burst after the last MPI call survives.

With ``collect_timings=True`` the extractor also returns per-burst
``(flops, seconds, end_marker)`` samples — the raw material of the flop-rate
calibration procedure (§5).
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from multiprocessing import Pool
from typing import Dict, List, Optional, Tuple

from ..core.actions import (
    Action,
    AllGather,
    AllReduce,
    AllToAll,
    Barrier,
    Bcast,
    CommSize,
    Compute,
    Irecv,
    Isend,
    Recv,
    Reduce,
    ReduceScatter,
    Send,
    Wait,
    format_action,
)
from ..tracer.tracefile import edf_file_name, trc_file_name
from .tfr import TfrCallbacks, read_trace

__all__ = ["ExtractionReport", "BurstSample", "extract_rank", "tau2simgrid"]


@dataclass(frozen=True)
class BurstSample:
    """One timed compute burst (calibration input)."""

    rank: int
    flops: float
    seconds: float
    ended_by: str  # name of the MPI call that ended the burst


@dataclass
class ExtractionReport:
    """Outcome of extracting a full TAU archive."""

    n_ranks: int
    n_actions: int
    n_bytes: int           # exact size of the written TI trace files
    wall_seconds: float    # measured extraction time
    per_rank_actions: List[int] = field(default_factory=list)
    burst_samples: List[BurstSample] = field(default_factory=list)

    @property
    def mib(self) -> float:
        return self.n_bytes / (1024.0 * 1024.0)


class _RankExtractor(TfrCallbacks):
    """State machine rebuilding one rank's action list."""

    def __init__(self, rank: int, world_size: int,
                 collect_timings: bool = False) -> None:
        self.rank = rank
        self.world_size = world_size
        self.collect_timings = collect_timings
        self.actions: List[Action] = []
        self.samples: List[BurstSample] = []
        # Event-id tables, filled by definition callbacks.
        self._mpi_states: Dict[int, str] = {}
        self._fp_event: Optional[int] = None
        self._coll_comm_event: Optional[int] = None
        self._coll_comp_event: Optional[int] = None
        # Burst tracking.
        self._boundary_fp = 0
        self._boundary_time_us = 0.0
        self._last_fp = 0
        self._await_enter_fp = False
        self._enter_time_us = 0.0
        # Current MPI state and per-call scratch.
        self._in_mpi: Optional[str] = None
        self._pending_irecvs: List[int] = []  # indices into self.actions
        self._wait_resolved = False
        self._coll_vcomm = 0.0
        self._coll_vcomp = 0.0

    # --- definitions -----------------------------------------------------
    def def_state(self, event_id: int, name: str, group: str) -> None:
        if group == "MPI":
            self._mpi_states[event_id] = name.split("(")[0].strip()

    def def_user_event(self, event_id: int, name: str, tag: int) -> None:
        if name == "PAPI_FP_OPS":
            self._fp_event = event_id
        elif name == "Collective communication volume":
            self._coll_comm_event = event_id
        elif name == "Collective computation volume":
            self._coll_comp_event = event_id

    # --- records -----------------------------------------------------------
    def enter_state(self, nid: int, tid: int, time_us: float,
                    event_id: int) -> None:
        func = self._mpi_states.get(event_id)
        if func is None:
            return  # instrumented application function: no action
        if self._in_mpi is not None:
            raise ValueError(
                f"p{self.rank}: nested MPI states ({self._in_mpi} then "
                f"{func}) — trace is corrupt"
            )
        self._in_mpi = func
        self._await_enter_fp = True
        self._enter_time_us = time_us

    def event_trigger(self, nid: int, tid: int, time_us: float,
                      event_id: int, value: int) -> None:
        if event_id == self._fp_event:
            if self._await_enter_fp and self._in_mpi is not None:
                burst = value - self._boundary_fp
                if burst > 0:
                    self.actions.append(Compute(self.rank, float(burst)))
                    if self.collect_timings:
                        self.samples.append(BurstSample(
                            rank=self.rank,
                            flops=float(burst),
                            seconds=(self._enter_time_us
                                     - self._boundary_time_us) * 1e-6,
                            ended_by=self._in_mpi,
                        ))
                self._await_enter_fp = False
            self._last_fp = value
        elif event_id == self._coll_comm_event:
            volume = float(value)
            if not math.isfinite(volume) or volume < 0:
                raise ValueError(
                    f"p{self.rank}: collective communication volume "
                    f"trigger carries {value!r} — negative or non-finite "
                    "payloads mean a corrupt trace, not a zero-byte "
                    "collective"
                )
            self._coll_vcomm = volume
        elif event_id == self._coll_comp_event:
            volume = float(value)
            if not math.isfinite(volume) or volume < 0:
                raise ValueError(
                    f"p{self.rank}: collective computation volume "
                    f"trigger carries {value!r} — negative or non-finite "
                    "payloads mean a corrupt trace"
                )
            self._coll_vcomp = volume

    def send_message(self, nid: int, tid: int, time_us: float,
                     dst: int, size: int, tag: int, comm: int) -> None:
        if self._in_mpi == "MPI_Send":
            self.actions.append(Send(self.rank, dst, float(size)))
        elif self._in_mpi == "MPI_Isend":
            self.actions.append(Isend(self.rank, dst, float(size)))
        else:
            raise ValueError(
                f"p{self.rank}: SendMessage inside {self._in_mpi!r}"
            )

    def recv_message(self, nid: int, tid: int, time_us: float,
                     src: int, size: int, tag: int, comm: int) -> None:
        if self._in_mpi == "MPI_Recv":
            self.actions.append(Recv(self.rank, src, float(size)))
        elif self._in_mpi == "MPI_Wait":
            # The lookup technique: resolve the oldest pending Irecv.
            if not self._pending_irecvs:
                raise ValueError(
                    f"p{self.rank}: RecvMessage in MPI_Wait without a "
                    "pending MPI_Irecv"
                )
            index = self._pending_irecvs.pop(0)
            self.actions[index] = Irecv(self.rank, src, float(size))
            self._wait_resolved = True
        else:
            raise ValueError(
                f"p{self.rank}: RecvMessage inside {self._in_mpi!r}"
            )

    def leave_state(self, nid: int, tid: int, time_us: float,
                    event_id: int) -> None:
        func = self._mpi_states.get(event_id)
        if func is None:
            return
        if func != self._in_mpi:
            raise ValueError(
                f"p{self.rank}: LeaveState({func}) while in {self._in_mpi!r}"
            )
        rank = self.rank
        if func == "MPI_Irecv":
            # Source and volume unknown until the matching MPI_Wait.
            self._pending_irecvs.append(len(self.actions))
            self.actions.append(Irecv(rank, 0, 0.0))
        elif func == "MPI_Wait":
            if self._wait_resolved:
                self.actions.append(Wait(rank))
                self._wait_resolved = False
        elif func == "MPI_Barrier":
            self.actions.append(Barrier(rank))
        elif func == "MPI_Bcast":
            self.actions.append(Bcast(rank, self._coll_vcomm))
        elif func == "MPI_Reduce":
            self.actions.append(Reduce(rank, self._coll_vcomm,
                                       self._coll_vcomp))
        elif func == "MPI_Allreduce":
            self.actions.append(AllReduce(rank, self._coll_vcomm,
                                          self._coll_vcomp))
        elif func == "MPI_Alltoall":
            self.actions.append(AllToAll(rank, self._coll_vcomm))
        elif func == "MPI_Allgather":
            self.actions.append(AllGather(rank, self._coll_vcomm))
        elif func == "MPI_Reduce_scatter":
            self.actions.append(ReduceScatter(rank, self._coll_vcomm,
                                              self._coll_vcomp))
        elif func == "MPI_Comm_size":
            self.actions.append(CommSize(rank, self.world_size))
        # MPI_Send / MPI_Isend / MPI_Recv appended their action already.
        if func in ("MPI_Barrier", "MPI_Bcast", "MPI_Reduce",
                    "MPI_Allreduce", "MPI_Alltoall", "MPI_Allgather",
                    "MPI_Reduce_scatter"):
            # The tracer writes both volume triggers inside every
            # collective, so the scratch is always fresh by here; reset
            # it anyway so a trace *missing* a trigger yields a zero-byte
            # collective rather than silently reusing the previous
            # call's volumes.
            self._coll_vcomm = 0.0
            self._coll_vcomp = 0.0
        self._boundary_fp = self._last_fp
        self._boundary_time_us = time_us
        self._in_mpi = None

    def end_trace(self, nid: int, tid: int) -> None:
        if self._in_mpi is not None:
            raise ValueError(
                f"p{self.rank}: trace ends inside {self._in_mpi}"
            )
        if self._pending_irecvs:
            raise ValueError(
                f"p{self.rank}: {len(self._pending_irecvs)} MPI_Irecv were "
                "never resolved by an MPI_Wait"
            )
        trailing = self._last_fp - self._boundary_fp
        if trailing > 0:
            self.actions.append(Compute(self.rank, float(trailing)))


def extract_rank(
    trc_path: str,
    edf_path: str,
    rank: int,
    world_size: int,
    out_path: Optional[str] = None,
    collect_timings: bool = False,
) -> Tuple[int, int, List[BurstSample]]:
    """Extract one rank; optionally write ``SG_process<rank>.trace``.

    Returns ``(n_actions, n_bytes, burst_samples)`` where ``n_bytes`` is
    the exact size of the written (or would-be-written) TI trace.
    """
    extractor = _RankExtractor(rank, world_size,
                               collect_timings=collect_timings)
    read_trace(trc_path, edf_path, extractor)
    lines = [format_action(a) for a in extractor.actions]
    n_bytes = sum(len(line) + 1 for line in lines)
    if out_path is not None:
        with open(out_path, "w", encoding="ascii") as handle:
            handle.write("\n".join(lines))
            if lines:
                handle.write("\n")
    return len(extractor.actions), n_bytes, extractor.samples


def _extract_worker(args) -> Tuple[int, int, int, List[BurstSample]]:
    rank, trc, edf, world, out_path, collect = args
    n_actions, n_bytes, samples = extract_rank(
        trc, edf, rank, world, out_path, collect_timings=collect
    )
    return rank, n_actions, n_bytes, samples


def tau2simgrid(
    tau_dir: str,
    n_ranks: int,
    out_dir: Optional[str],
    processes: int = 1,
    collect_timings: bool = False,
) -> ExtractionReport:
    """Extract a full TAU archive into a directory of TI trace files.

    The original tau2simgrid is a parallel C/MPI program that opens all
    trace files at once; ``processes > 1`` mirrors that with a process
    pool.  ``out_dir=None`` runs extraction without writing (size
    accounting only).
    """
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
    jobs = []
    for rank in range(n_ranks):
        out_path = (os.path.join(out_dir, f"SG_process{rank}.trace")
                    if out_dir is not None else None)
        jobs.append((
            rank,
            os.path.join(tau_dir, trc_file_name(rank)),
            os.path.join(tau_dir, edf_file_name(rank)),
            n_ranks,
            out_path,
            collect_timings,
        ))
    start = time.perf_counter()
    if processes > 1:
        with Pool(processes) as pool:
            results = pool.map(_extract_worker, jobs)
    else:
        results = [_extract_worker(job) for job in jobs]
    wall = time.perf_counter() - start
    results.sort(key=lambda r: r[0])
    report = ExtractionReport(
        n_ranks=n_ranks,
        n_actions=sum(r[1] for r in results),
        n_bytes=sum(r[2] for r in results),
        wall_seconds=wall,
        per_rank_actions=[r[1] for r in results],
    )
    for r in results:
        report.burst_samples.extend(r[3])
    return report
