"""TAU Trace Format Reader (TFR) — callback-based trace access.

Mirrors the API of TAU's TFR library (§4.3): the consumer subclasses
:class:`TfrCallbacks`, overriding the callbacks it cares about, and
:func:`read_trace` drives them from one rank's (trace file, event file)
pair.  Definition callbacks (``def_state``, ``def_user_event``) fire
first, from the .edf metadata; then one callback per trace record; then
``end_trace``.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..tracer.edf import EventDef, read_edf
from ..tracer.events import (
    ENTRY,
    EV_RECV_MESSAGE,
    EV_SEND_MESSAGE,
    KIND_ENTRY_EXIT,
    unpack_message,
)
from ..tracer.tracefile import read_records

__all__ = ["TfrCallbacks", "read_trace"]


class TfrCallbacks:
    """Override the callbacks you need; defaults are no-ops.

    Signatures follow the TFR C API loosely: every record callback gets
    ``(nid, tid, time_us, ...)``.
    """

    # --- definition callbacks (from the .edf) -------------------------
    def def_state(self, event_id: int, name: str, group: str) -> None:
        """An EntryExit event was declared (a traced function)."""

    def def_user_event(self, event_id: int, name: str, tag: int) -> None:
        """A TriggerValue event was declared (a counter or user event)."""

    # --- record callbacks ---------------------------------------------
    def enter_state(self, nid: int, tid: int, time_us: float,
                    event_id: int) -> None:
        """A traced function was entered."""

    def leave_state(self, nid: int, tid: int, time_us: float,
                    event_id: int) -> None:
        """A traced function was left."""

    def event_trigger(self, nid: int, tid: int, time_us: float,
                      event_id: int, value: int) -> None:
        """A counter/user event fired with ``value``."""

    def send_message(self, nid: int, tid: int, time_us: float,
                     dst: int, size: int, tag: int, comm: int) -> None:
        """A message left this process."""

    def recv_message(self, nid: int, tid: int, time_us: float,
                     src: int, size: int, tag: int, comm: int) -> None:
        """A message was delivered to this process."""

    def end_trace(self, nid: int, tid: int) -> None:
        """The trace file is exhausted."""


def read_trace(trc_path: str, edf_path: str,
               callbacks: TfrCallbacks) -> int:
    """Drive ``callbacks`` from one rank's trace; returns the record count.

    Unknown event ids raise: a trace/edf mismatch means the gathering step
    shipped inconsistent files, which must not be silently interpreted.
    """
    defs: Dict[int, EventDef] = read_edf(edf_path)
    for event_def in defs.values():
        if event_def.kind == KIND_ENTRY_EXIT:
            callbacks.def_state(event_def.event_id, event_def.name,
                                event_def.group)
        else:
            callbacks.def_user_event(event_def.event_id, event_def.name,
                                     event_def.tag)

    n_records = 0
    nid: Optional[int] = None
    tid = 0
    for rec in read_records(trc_path):
        n_records += 1
        nid, tid = rec.nid, rec.tid
        if rec.event_id == EV_SEND_MESSAGE:
            dst, tag, size = unpack_message(rec.param)
            callbacks.send_message(nid, tid, rec.time_us, dst, size, tag, 0)
            continue
        if rec.event_id == EV_RECV_MESSAGE:
            src, tag, size = unpack_message(rec.param)
            callbacks.recv_message(nid, tid, rec.time_us, src, size, tag, 0)
            continue
        event_def = defs.get(rec.event_id)
        if event_def is None:
            raise ValueError(
                f"{trc_path}: record references event id {rec.event_id} "
                f"not declared in {edf_path}"
            )
        if event_def.kind == KIND_ENTRY_EXIT:
            if rec.param == ENTRY:
                callbacks.enter_state(nid, tid, rec.time_us, rec.event_id)
            else:
                callbacks.leave_state(nid, tid, rec.time_us, rec.event_id)
        else:
            callbacks.event_trigger(nid, tid, rec.time_us, rec.event_id,
                                    rec.param)
    if nid is not None:
        callbacks.end_trace(nid, tid)
    return n_records
