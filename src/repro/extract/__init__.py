"""tau2simgrid: extraction of time-independent traces from timed traces."""

from .tau2ti import BurstSample, ExtractionReport, extract_rank, tau2simgrid
from .tfr import TfrCallbacks, read_trace

__all__ = [
    "BurstSample", "ExtractionReport", "TfrCallbacks", "extract_rank",
    "read_trace", "tau2simgrid",
]
