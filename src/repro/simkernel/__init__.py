"""SimGrid-like simulation kernel.

A fluid discrete-event kernel: generator-coroutine processes, max-min
fair sharing of CPUs and links, flow-level network contention, and the
3-segment piece-wise-linear MPI communication model of the paper's §5.

The paper's replay tool sits on the MSG API; ours talks to the kernel
directly — the optimisation the paper's §6.6 itself recommends ("write the
simulator directly on top of the simulation [kernel], i.e., by bypassing
the MSG API").
"""

from .activity import (
    ActivityFailed, CommActivity, ExecActivity, Timer, Waitable,
)
from .engine import DeadlockError, Engine, Process, WaitAny
from .lmm import Constraint, Variable
from .mailbox import ANY_SOURCE, ANY_TAG, CommRequest, CommSystem
from .platform import Cluster, Host, Link, Platform, Route
from .pwl import DEFAULT_MPI_MODEL, PiecewiseLinearModel, Segment, fit
from .telemetry import (
    CommMetrics, EngineMetrics, FaultMetrics, ReplayMetrics, Telemetry,
)
from .xmlio import (
    ProcessDeployment,
    dump_deployment,
    dump_platform,
    load_deployment,
    load_platform,
    parse_radical,
)

__all__ = [
    "ANY_SOURCE", "ANY_TAG", "ActivityFailed", "Cluster", "CommActivity",
    "CommMetrics", "CommRequest", "CommSystem", "Constraint",
    "DEFAULT_MPI_MODEL", "DeadlockError", "Engine", "EngineMetrics",
    "ExecActivity", "FaultMetrics", "Host", "Link",
    "PiecewiseLinearModel", "Platform", "Process", "ProcessDeployment",
    "ReplayMetrics", "Route", "Segment", "Telemetry", "Timer", "Variable",
    "WaitAny", "Waitable", "dump_deployment", "dump_platform", "fit",
    "load_deployment", "load_platform", "parse_radical",
]
