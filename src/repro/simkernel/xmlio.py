"""SimGrid v3 platform / deployment XML input and output.

The paper drives its replay tool with two XML files (Figs. 5 and 6): a
*platform* file describing clusters and an optional *deployment* file
mapping each replayed process (``function="p3"`` = rank 3) to a host, with
per-process trace files passed as ``<argument>`` elements.  This module
reads and writes both, so traces captured by this package can be replayed
from the exact file formats the paper shows.

Supported platform elements:

* ``<cluster id prefix suffix radical power bw lat bb_bw bb_lat [cores]
  [cabinet_size] [cabinet_bw] [cabinet_lat]/>`` — the cabinet attributes
  are an extension used to describe gdx-style two-level clusters.
* ``<interconnect src dst bw lat/>`` — extension: a dedicated WAN link
  between two clusters (the Grid'5000 10 Gb inter-site network).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .platform import Platform

__all__ = [
    "parse_radical",
    "load_platform",
    "dump_platform",
    "ProcessDeployment",
    "load_deployment",
    "dump_deployment",
]


def parse_radical(radical: str) -> List[int]:
    """Expand a SimGrid radical (``"0-3,5,8-9"``) into host indices."""
    indices: List[int] = []
    for part in radical.split(","):
        part = part.strip()
        if not part:
            continue
        if "-" in part:
            lo_s, hi_s = part.split("-", 1)
            lo, hi = int(lo_s), int(hi_s)
            if hi < lo:
                raise ValueError(f"bad radical range {part!r}")
            indices.extend(range(lo, hi + 1))
        else:
            indices.append(int(part))
    if not indices:
        raise ValueError(f"empty radical {radical!r}")
    if len(set(indices)) != len(indices):
        raise ValueError(f"duplicate indices in radical {radical!r}")
    return indices


def _float(attrs: Dict[str, str], key: str, element: str) -> float:
    try:
        return float(attrs[key])
    except KeyError:
        raise ValueError(f"<{element}> is missing attribute {key!r}") from None
    except ValueError:
        raise ValueError(
            f"<{element}> attribute {key}={attrs[key]!r} is not a number"
        ) from None


def load_platform(path: str) -> Platform:
    """Build a :class:`Platform` from a SimGrid v3 platform file."""
    tree = ET.parse(path)
    root = tree.getroot()
    if root.tag != "platform":
        raise ValueError(f"{path}: root element is <{root.tag}>, "
                         "expected <platform>")
    platform = Platform(name=path)
    for elem in root.iter("cluster"):
        attrs = dict(elem.attrib)
        radical = parse_radical(attrs.get("radical", "0-0"))
        if radical != list(range(radical[0], radical[0] + len(radical))):
            raise ValueError(
                f"cluster {attrs.get('id')!r}: non-contiguous radicals are "
                "not supported"
            )
        platform.add_cluster(
            name=attrs.get("id", f"cluster{len(platform.clusters)}"),
            n_hosts=len(radical),
            first_index=radical[0],
            speed=_float(attrs, "power", "cluster"),
            link_bw=_float(attrs, "bw", "cluster"),
            link_lat=_float(attrs, "lat", "cluster"),
            backbone_bw=_float(attrs, "bb_bw", "cluster"),
            backbone_lat=_float(attrs, "bb_lat", "cluster"),
            cores=int(attrs.get("cores", "1")),
            prefix=attrs.get("prefix"),
            suffix=attrs.get("suffix", ""),
            cabinet_size=(int(attrs["cabinet_size"])
                          if "cabinet_size" in attrs else None),
            cabinet_bw=(float(attrs["cabinet_bw"])
                        if "cabinet_bw" in attrs else None),
            cabinet_lat=(float(attrs["cabinet_lat"])
                         if "cabinet_lat" in attrs else None),
            backbone_sharing=("fatpipe"
                              if attrs.get("bb_sharing_policy", "").upper()
                              == "FATPIPE" else "shared"),
        )
    for elem in root.iter("interconnect"):
        attrs = dict(elem.attrib)
        platform.connect(
            attrs["src"], attrs["dst"],
            bandwidth=_float(attrs, "bw", "interconnect"),
            latency=_float(attrs, "lat", "interconnect"),
        )
    if not platform.clusters:
        raise ValueError(f"{path}: no <cluster> element found")
    return platform


def dump_platform(platform: Platform, path: str) -> None:
    """Write a platform back out as SimGrid v3 XML (Fig. 5 style)."""
    lines = [
        "<?xml version='1.0'?>",
        '<!DOCTYPE platform SYSTEM "simgrid.dtd">',
        '<platform version="3">',
        '  <AS id="AS_%s" routing="Full">' % platform.name.replace("/", "_"),
    ]
    for cluster in platform.clusters.values():
        first = cluster.hosts[0]
        n = len(cluster.hosts)
        up = first.up
        extra = ""
        if cluster.has_cabinets:
            cab0_up = cluster._cabinet_links[0][0]
            size = 0
            for host in cluster.hosts:
                if cluster.cabinet_index(host) == 0:
                    size += 1
            extra = (f' cabinet_size="{size}" cabinet_bw="{cab0_up.bandwidth:g}"'
                     f' cabinet_lat="{cab0_up.latency:g}"')
        prefix, index0, suffix = _split_host_name(first.name)
        if cluster.backbone.fatpipe:
            extra += ' bb_sharing_policy="FATPIPE"'
        lines.append(
            f'    <cluster id="{cluster.name}" prefix="{prefix}" '
            f'suffix="{suffix}" radical="{index0}-{index0 + n - 1}" '
            f'power="{first.speed:g}" cores="{first.cores}" '
            f'bw="{up.bandwidth:g}" lat="{up.latency:g}" '
            f'bb_bw="{cluster.backbone.bandwidth:g}" '
            f'bb_lat="{cluster.backbone.latency:g}"{extra}/>'
        )
    for (a, b), link in platform._wan.items():
        lines.append(
            f'    <interconnect src="{a}" dst="{b}" '
            f'bw="{link.bandwidth:g}" lat="{link.latency:g}"/>'
        )
    lines += ["  </AS>", "</platform>", ""]
    with open(path, "w") as handle:
        handle.write("\n".join(lines))


def _split_host_name(name: str) -> Tuple[str, int, str]:
    """Split ``"mycluster-7.mysite.fr"`` into ("mycluster-", 7, ".mysite.fr")."""
    start = None
    end = None
    for i, char in enumerate(name):
        if char.isdigit():
            if start is None:
                start = i
            end = i
        elif start is not None:
            break
    if start is None:
        raise ValueError(f"host name {name!r} contains no index digits")
    return name[:start], int(name[start:end + 1]), name[end + 1:]


@dataclass
class ProcessDeployment:
    """One ``<process>`` element: rank, host name, trace-file arguments."""

    rank: int
    host: str
    arguments: List[str]


def load_deployment(path: str) -> List[ProcessDeployment]:
    """Read a deployment file (Fig. 6): host per rank, plus arguments."""
    tree = ET.parse(path)
    root = tree.getroot()
    deployments: List[ProcessDeployment] = []
    for elem in root.iter("process"):
        function = elem.attrib.get("function", "")
        if not function.startswith("p") or not function[1:].isdigit():
            raise ValueError(
                f"{path}: process function {function!r} is not of the form "
                "'p<rank>'"
            )
        args = [child.attrib["value"] for child in elem if child.tag == "argument"]
        deployments.append(
            ProcessDeployment(int(function[1:]), elem.attrib["host"], args)
        )
    deployments.sort(key=lambda d: d.rank)
    ranks = [d.rank for d in deployments]
    if ranks != list(range(len(ranks))):
        raise ValueError(f"{path}: ranks are not contiguous from 0: {ranks[:10]}")
    return deployments


def dump_deployment(
    deployments: Sequence[ProcessDeployment], path: str
) -> None:
    """Write a deployment file in the paper's Fig. 6 format."""
    lines = [
        "<?xml version='1.0'?>",
        '<!DOCTYPE platform SYSTEM "simgrid.dtd">',
        '<platform version="3">',
    ]
    for dep in sorted(deployments, key=lambda d: d.rank):
        if dep.arguments:
            lines.append(
                f'  <process host="{dep.host}" function="p{dep.rank}">'
            )
            for arg in dep.arguments:
                lines.append(f'    <argument value="{arg}"/>')
            lines.append("  </process>")
        else:
            lines.append(
                f'  <process host="{dep.host}" function="p{dep.rank}"/>'
            )
    lines += ["</platform>", ""]
    with open(path, "w") as handle:
        handle.write("\n".join(lines))
