"""Linear max-min (LMM) resource sharing.

This is the resource-sharing heart of the simulation kernel, mirroring the
role of SimGrid's ``lmm`` solver: every shared resource (a network link, a
CPU) is a *constraint* with a capacity, every running activity (a data flow,
a compute burst) is a *variable* that consumes one or more constraints, and
the solver assigns each variable a rate by *progressive filling* (weighted
max-min fairness):

1. For each unsaturated constraint, compute the fair share
   ``remaining_capacity / total_weight_of_unfixed_variables``.
2. Fix every variable crossing the most restrictive constraint at that
   share, subtract its usage everywhere, and repeat.

Variables may carry a ``bound`` (a private rate cap, e.g. the peak flop
rate of a pinned task or a TCP-window limit); bounds are honoured by
treating them as one-variable constraints.

The solver is re-run from scratch whenever the set of active activities
changes.  Three implementations coexist:

* :func:`solve_reference` — the original pure-Python progressive-filling
  loop, O(iterations x variables x constraints).  It stays as the
  readable specification and as the oracle the vectorized path is
  property-tested against (``mode="reference"`` forces it).
* :func:`fill_vectorized` — the same filling expressed over NumPy
  arrays: constraint remaining/load vectors, variable weight/bound
  vectors, and boolean fix masks, so one filling level costs a handful
  of O(variables + memberships) array operations instead of a Python
  scan.  Large sharing components (a 1024-rank communication wave over
  a congested backbone) are where this pays; tiny components are faster
  in pure Python, so :func:`solve` switches on :data:`VECTOR_THRESHOLD`.
* ``fill_native`` (:mod:`repro.simkernel._native`, ``mode="native"``) —
  the same filling as one Numba-compiled scalar loop.  Strictly
  optional (the ``repro[native]`` extra); requesting it without a
  usable numba raises a clear error and nothing else ever imports it.

On top of any full filling, :func:`patch_solve` performs an
*incremental* certified re-solve: given the rate vector of the previous
solve and the constraints whose membership or capacity changed since,
it rebuilds only the *affected cone* (variables reachable from the
dirty constraints through the saturation graph), re-fills that
subproblem against residual capacities, and certifies the patched rate
vector against the max-min optimality conditions — feasibility plus the
Bertsekas–Gallager bottleneck property, which for equal weights
characterizes the (unique) max-min allocation exactly.  A patch that
cannot be certified is rejected and the caller falls back — loudly,
counted — to a full solve, so correctness never depends on the patch
applying.

Fatpipe constraints (non-shared resources; the model of a non-blocking
switch fabric) must never reach the solver: the engine converts them to
per-activity bounds when an activity is built (see
:class:`~repro.simkernel.activity.CommActivity`).  :func:`solve` enforces
that contract by raising on any fatpipe constraint, because silently
sharing one max-min style would under-allocate every crossing flow.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Constraint",
    "Variable",
    "solve",
    "solve_reference",
    "fill_vectorized",
    "patch_solve",
    "native_fill",
    "native_available",
    "VECTOR_THRESHOLD",
    "LMM_MODES",
]

_EPS = 1e-12

#: Component size at which :func:`solve` (and the engine's lazy recompute)
#: switches from the pure-Python filling to the vectorized one.  Picked
#: from the ``EngineMetrics`` component-size counters of replay telemetry:
#: replay traffic is bimodal — single-digit components for point-to-point
#: wavefronts and folded CPU bursts (where NumPy call overhead loses), and
#: contention waves of hundreds of activities (where it wins by an order
#: of magnitude).  The crossover sits around four dozen activities
#: (~50 us either way); see docs/replay-performance.md for the
#: measurement behind this number.
VECTOR_THRESHOLD = 48

#: Every max-min implementation selector accepted across the stack
#: (``Engine(lmm_mode=...)``, ``TraceReplayer(lmm_mode=...)``,
#: ``repro-replay --lmm``, ``ReplaySpec.lmm_mode``).
LMM_MODES = ("auto", "reference", "vectorized", "native")


def native_available() -> bool:
    """True when the optional Numba filling kernel can be used."""
    from . import _native

    return _native.available()


def native_fill(caps, bounds, weights, var_idx, cons_idx,
                load=None, work=None):
    """The Numba-compiled filling (same contract as
    :func:`fill_vectorized`).  Raises :class:`RuntimeError` with an
    actionable message when the ``repro[native]`` extra is missing —
    callers reach this only when ``mode="native"`` was explicitly
    requested, never from the default paths."""
    from . import _native

    return _native.fill(caps, bounds, weights, var_idx, cons_idx,
                        load=load, work=work)


class Constraint:
    """A shared resource with a finite capacity (bytes/s or flops/s).

    ``users`` is maintained by the engine: the set of activities currently
    consuming this constraint.  It is what makes partial (component-wise)
    rate recomputation possible.

    ``capacity`` may change mid-run (link degradation, fault injection),
    but only through ``Engine.set_capacity`` — array-backed sharing groups
    snapshot capacities, and that path keeps the snapshot coherent and
    schedules the re-pricing of in-flight users.
    """

    __slots__ = ("capacity", "name", "users", "fatpipe", "group")

    def __init__(self, capacity: float, name: str = "",
                 fatpipe: bool = False) -> None:
        if capacity < 0:
            raise ValueError(f"constraint capacity must be >= 0, got {capacity}")
        self.capacity = float(capacity)
        self.name = name
        self.users = set()
        # Sharing-group handle, owned by the engine (see engine._Group):
        # constraints transitively connected through shared activities
        # point at the same group, so component recomputation needs no
        # graph walk.
        self.group = None
        # A fatpipe resource is not shared: every crossing activity may
        # use the full capacity independently (SimGrid's FATPIPE sharing
        # policy — the model of a non-blocking switch fabric).  The engine
        # treats it as a per-activity rate cap, not a constraint.
        self.fatpipe = fatpipe

    def clone(self) -> "Constraint":
        """A fresh, unused constraint with the same capacity/sharing
        semantics.  The shard coordinator rebuilds collective phases on
        throwaway engines; cloning keeps those simulations off the live
        platform's engine-owned ``users``/``group`` state entirely."""
        return Constraint(self.capacity, name=self.name,
                          fatpipe=self.fatpipe)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Constraint({self.name or id(self)}, cap={self.capacity:g})"


class Variable:
    """An activity's demand on a set of constraints.

    ``weight`` scales consumption: a variable running at rate ``r`` consumes
    ``weight * r`` of each constraint it crosses.  ``bound`` caps the rate
    regardless of what fairness would allow.  After :func:`solve`, ``value``
    holds the allocated rate.
    """

    __slots__ = ("constraints", "weight", "bound", "value", "name")

    def __init__(
        self,
        constraints: Iterable[Constraint],
        weight: float = 1.0,
        bound: Optional[float] = None,
        name: str = "",
    ) -> None:
        self.constraints: List[Constraint] = list(constraints)
        if weight <= 0:
            raise ValueError(f"variable weight must be > 0, got {weight}")
        if bound is not None and bound < 0:
            raise ValueError(f"variable bound must be >= 0, got {bound}")
        self.weight = float(weight)
        self.bound = bound
        self.value = 0.0
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({self.name or id(self)}, value={self.value:g})"


def _reject_fatpipe(cons: Constraint) -> None:
    if cons.fatpipe:
        raise ValueError(
            f"fatpipe constraint {cons.name or id(cons)!r} reached the "
            "max-min solver; fatpipe resources are per-activity caps and "
            "must be folded into the variable's bound before solving "
            "(CommActivity does this for routes)"
        )


def solve(variables: List[Variable], mode: str = "auto") -> None:
    """Assign a max-min fair rate to every variable, in place.

    A variable crossing no constraint and carrying no bound is unconstrained;
    it gets ``float('inf')`` (callers treat infinite-rate activities as
    completing instantly after their latency phase).

    ``mode`` selects the implementation: ``"auto"`` (vectorized at or above
    :data:`VECTOR_THRESHOLD` variables), ``"reference"`` (always the
    pure-Python oracle), ``"vectorized"`` (always NumPy), ``"native"``
    (the optional Numba kernel; raises a clear error when the
    ``repro[native]`` extra is unavailable).  All agree to 1e-9 on the
    resulting rate vector (property-tested).
    """
    if mode == "reference":
        solve_reference(variables)
    elif mode == "vectorized":
        _solve_vectorized(variables)
    elif mode == "native":
        _solve_vectorized(variables, fill=native_fill)
    elif mode == "auto":
        if len(variables) >= VECTOR_THRESHOLD:
            _solve_vectorized(variables)
        else:
            solve_reference(variables)
    else:
        raise ValueError(
            f"unknown solve mode {mode!r}; use 'auto', 'reference', "
            "'vectorized' or 'native'"
        )


def solve_reference(variables: List[Variable]) -> None:
    """The pure-Python progressive-filling oracle (see :func:`solve`)."""
    # Reset and collect the constraint set.
    remaining: Dict[Constraint, float] = {}
    load: Dict[Constraint, float] = {}  # total weight of unfixed variables
    unfixed: List[Variable] = []
    for var in variables:
        var.value = 0.0
        if not var.constraints and var.bound is None:
            var.value = float("inf")
            continue
        unfixed.append(var)
        for cons in var.constraints:
            if cons not in remaining:
                _reject_fatpipe(cons)
                remaining[cons] = cons.capacity
                load[cons] = 0.0
            load[cons] += var.weight

    while unfixed:
        # Most restrictive fair share across saturating constraints...
        share = float("inf")
        for cons, rem in remaining.items():
            w = load[cons]
            if w > _EPS:
                share = min(share, rem / w)
        # ... and across private bounds.
        bounded = [v for v in unfixed if v.bound is not None]
        min_bound = min((v.bound for v in bounded), default=float("inf"))
        level = min(share, min_bound)

        if level == float("inf"):
            # Only unconstrained-but-unbounded leftovers (e.g. every
            # crossing constraint already saturated by others at 0 load).
            for var in unfixed:
                var.value = float("inf")
            break

        # Fix: every variable whose bound is reached, plus every variable
        # crossing a constraint saturated at this level.
        to_fix = []
        for var in unfixed:
            if var.bound is not None and var.bound <= level + _EPS * max(1.0, level):
                to_fix.append((var, var.bound))
                continue
            for cons in var.constraints:
                w = load[cons]
                if w > _EPS and remaining[cons] / w <= level + _EPS * max(1.0, level):
                    to_fix.append((var, level))
                    break
        if not to_fix:
            # Numerical corner: nothing saturates exactly; fix everything at
            # the level to guarantee termination.
            to_fix = [(var, level) for var in unfixed]

        fixed_set = {id(v) for v, _ in to_fix}
        for var, rate in to_fix:
            var.value = rate
            for cons in var.constraints:
                remaining[cons] = max(0.0, remaining[cons] - var.weight * rate)
                load[cons] -= var.weight
        unfixed = [v for v in unfixed if id(v) not in fixed_set]


def _scratch(work: dict, key: str, n: int, dtype=float) -> np.ndarray:
    """A reusable length-``n`` view from a caller-owned workspace dict
    (amortized-doubling growth, never shrinks)."""
    arr = work.get(key)
    if arr is None or arr.shape[0] < n:
        arr = np.empty(max(64, 2 * n), dtype=dtype)
        work[key] = arr
    return arr[:n]


def fill_vectorized(
    caps: np.ndarray,
    bounds: np.ndarray,
    weights: Optional[np.ndarray],
    var_idx: np.ndarray,
    cons_idx: np.ndarray,
    load: Optional[np.ndarray] = None,
    work: Optional[dict] = None,
) -> Tuple[np.ndarray, int]:
    """Vectorized weighted max-min progressive filling over arrays.

    ``caps[j]`` is the capacity of constraint ``j``; ``bounds[i]`` the
    private cap of variable ``i`` (``inf`` for none); ``weights[i]`` its
    consumption weight (``None`` means all 1 — the engine's equal-weight
    case); ``var_idx``/``cons_idx`` are parallel membership arrays, one
    entry per (variable, constraint) incidence.  Returns the rate vector
    and the number of filling levels (the telemetry iteration count).

    ``load`` (equal-weight only) lets a caller that maintains per-
    constraint membership counts incrementally skip the ``bincount`` —
    the counts are integers, so the arithmetic is unchanged.  ``work``
    is an optional scratch-buffer dict (see :func:`_scratch`) that
    eliminates every per-call allocation; when given, the returned rate
    vector is a view into it and is only valid until the next call with
    the same workspace — callers must copy it out first.

    The state mirrors :func:`solve_reference` exactly — constraint
    remaining/load vectors, an ``unfixed`` boolean mask — so each loop
    iteration is the same filling level, just computed with array ops.
    """
    n_vars = bounds.shape[0]
    n_cons = caps.shape[0]
    if work is None:
        rates = np.zeros(n_vars)
        remaining = caps.astype(float, copy=True)
        share = np.empty(n_cons)
        touches_saturated = np.empty(n_vars, dtype=bool)
    else:
        rates = _scratch(work, "rates", n_vars)
        rates.fill(0.0)
        remaining = _scratch(work, "remaining", n_cons)
        np.copyto(remaining, caps)
        share = _scratch(work, "share", n_cons)
        touches_saturated = _scratch(work, "touches", n_vars, dtype=bool)
    if weights is None:
        pair_weight = None
        if load is None:
            load = np.bincount(cons_idx, minlength=n_cons).astype(float)
        elif work is None:
            load = load.astype(float, copy=True)
        else:
            scratch = _scratch(work, "load", n_cons)
            np.copyto(scratch, load)
            load = scratch
    else:
        pair_weight = weights[var_idx]
        load = np.bincount(cons_idx, weights=pair_weight, minlength=n_cons)
    unfixed = None  # lazily materialized: the first level fixes all vars
    n_unfixed = n_vars
    iterations = 0
    while n_unfixed:
        iterations += 1
        full = unfixed is None
        # Most restrictive fair share across constraints with load...
        active = load > _EPS
        share.fill(np.inf)
        np.divide(remaining, load, out=share, where=active)
        level = float(share.min()) if n_cons else float("inf")
        # ... and across private bounds of still-unfixed variables.
        min_bound = float(bounds.min() if full else bounds[unfixed].min())
        if min_bound < level:
            level = min_bound
        if level == float("inf"):
            if full:
                rates.fill(np.inf)
            else:
                rates[unfixed] = np.inf
            break
        threshold = level + _EPS * (level if level > 1.0 else 1.0)
        # Fix masks: bound-limited variables, plus variables crossing a
        # constraint saturated at this level.
        saturated = active & (share <= threshold)
        touches_saturated.fill(False)
        pair_sat = saturated[cons_idx]
        if pair_sat.any():
            touches_saturated[var_idx[pair_sat]] = True
        fix_bound = bounds <= threshold
        if not full:
            fix_bound &= unfixed
        fix_level = touches_saturated & ~fix_bound
        if not full:
            fix_level &= unfixed
        fixed = fix_bound | fix_level
        n_fixed = int(np.count_nonzero(fixed))
        if n_fixed:
            rates[fix_bound] = bounds[fix_bound]
            rates[fix_level] = level
        else:
            # Numerical corner: nothing saturates exactly; fix everything
            # at the level to guarantee termination (as the oracle does).
            fixed = unfixed if not full else None
            n_fixed = n_unfixed
            if full:
                rates.fill(level)
            else:
                rates[fixed] = level
        if n_fixed == n_unfixed:
            # Last filling level: every survivor just fixed, so the
            # remaining/load bookkeeping below has no reader.  Skipping
            # it saves the dominant share of the call in the common
            # single-level solve (one bottleneck saturates everyone).
            break
        if full:
            unfixed = np.ones(n_vars, dtype=bool)
        # Subtract the fixed variables' usage from their constraints.
        pair_fixed = fixed[var_idx]
        if pair_fixed.any():
            fixed_cons = cons_idx[pair_fixed]
            usage = rates[var_idx[pair_fixed]]
            if pair_weight is None:
                dropped = np.bincount(fixed_cons, minlength=n_cons)
            else:
                usage = usage * pair_weight[pair_fixed]
                dropped = np.bincount(fixed_cons,
                                      weights=pair_weight[pair_fixed],
                                      minlength=n_cons)
            remaining -= np.bincount(fixed_cons, weights=usage,
                                     minlength=n_cons)
            np.maximum(remaining, 0.0, out=remaining)
            load -= dropped
        unfixed &= ~fixed
        n_unfixed -= n_fixed
    return rates, iterations


def _solve_vectorized(variables: Sequence[Variable],
                      fill=None) -> None:
    """NumPy path of :func:`solve`: build arrays, fill, write back."""
    solved: List[Variable] = []
    bounds: List[float] = []
    weights: List[float] = []
    caps: List[float] = []
    var_idx: List[int] = []
    cons_idx: List[int] = []
    cons_index: Dict[int, int] = {}
    for var in variables:
        var.value = 0.0
        if not var.constraints and var.bound is None:
            var.value = float("inf")
            continue
        i = len(solved)
        solved.append(var)
        bounds.append(float("inf") if var.bound is None else var.bound)
        weights.append(var.weight)
        for cons in var.constraints:
            j = cons_index.get(id(cons))
            if j is None:
                _reject_fatpipe(cons)
                j = len(caps)
                cons_index[id(cons)] = j
                caps.append(cons.capacity)
            var_idx.append(i)
            cons_idx.append(j)
    if not solved:
        return
    if fill is None:
        fill = fill_vectorized
    rates, _ = fill(
        np.asarray(caps, dtype=float),
        np.asarray(bounds, dtype=float),
        np.asarray(weights, dtype=float),
        np.asarray(var_idx, dtype=np.intp),
        np.asarray(cons_idx, dtype=np.intp),
    )
    for i, var in enumerate(solved):
        var.value = float(rates[i])


# ---------------------------------------------------------------------------
# Incremental certified re-solve
# ---------------------------------------------------------------------------

#: Relative tolerance of the patch certificate.  Tight enough that a
#: structurally wrong patch (whose error scales like ``capacity /
#: group_size``) can never slip through, loose enough that the ~1 ulp
#: float noise of the sub-solve arithmetic never triggers a spurious
#: fallback.  One decade below the 1e-9 equivalence bar the replay
#: drivers are gated on.
_CERT_RTOL = 1e-10

#: Cone-BFS expansion rounds before the cone is *truncated*.  Exhausting
#: the budget is not a failure: the certificate in step 3 is global (it
#: re-checks feasibility and blockedness of **every** variable in the
#: patched vector), so a truncated cone stays sound — it merely bets
#: that the rate change decays within this radius.  That bet is the
#: normal case on wavefront traffic, where every active link is
#: *topologically* saturated (so BFS closure would swallow the whole
#: component) yet the actual rate perturbation dies out within a hop or
#: two.  Kept small: each round is an O(memberships) mask pass, paid on
#: every attempt.
_CONE_ROUNDS = 3

#: When set to a dict, :func:`patch_solve` counts outcomes here by
#: reason ("ok", "empty_cone", "nonfinite", "cone_limit",
#: "sub_nonfinite", "infeasible", "not_blocked", plus the non-terminal
#: "truncated" marking attempts whose cone hit the round budget) — a
#: diagnosis aid for unexpected ``patch_fallbacks`` rates, not a
#: stable API.
patch_debug: Optional[dict] = None


def _note(reason: str) -> None:
    debug = patch_debug
    if debug is not None:
        debug[reason] = debug.get(reason, 0) + 1


def patch_solve(
    caps: np.ndarray,
    bounds: np.ndarray,
    rates: np.ndarray,
    var_idx: np.ndarray,
    cons_idx: np.ndarray,
    seed_cols: np.ndarray,
    fill=None,
    cone_limit: Optional[int] = None,
) -> Tuple[bool, int, int]:
    """Incrementally re-solve an equal-weight max-min system in place.

    ``rates`` holds the previous solve's rate vector with the
    membership changes already applied around it: departed variables'
    rows are gone, arrived variables are present with their current
    (typically zero) rate, and ``seed_cols`` lists the constraint
    columns those arrivals/departures/capacity-changes touched.

    The patch has three steps:

    1. **Cone.**  Starting from the seed columns, pull in every user of
       a dirty column, then expand through *saturated* columns only —
       an unsaturated constraint transmits no rate pressure, so its
       untouched users keep their rates.  Expansion stops after
       :data:`_CONE_ROUNDS` rounds (the cone is *truncated*, betting
       that the rate change decays within that radius; the global
       certificate keeps the bet safe) and the attempt is abandoned
       outright only past ``cone_limit`` variables (default
       ``max(16, n_vars // 2)``), where a sub-solve approaches full
       cost anyway.
    2. **Sub-solve.**  Progressive filling over the cone variables
       alone, against each touched constraint's residual capacity
       (capacity minus the usage of the out-of-cone variables, whose
       rates are kept).
    3. **Certificate.**  The patched full-group vector is accepted only
       if it is feasible on every constraint and every variable is
       either at its private bound or crosses a saturated constraint on
       which it has a maximal rate — for equal weights this is the
       Bertsekas–Gallager bottleneck characterization, which is
       necessary *and* sufficient for the (unique) max-min allocation.
       So a certified patch equals a full re-solve up to float noise,
       by construction, not by luck.

    Returns ``(ok, filling_levels, cone_size)``.  On ``ok=False`` the
    ``rates`` vector is left exactly as it came in and the caller must
    run a full solve; the engine counts that as ``patch_fallbacks``.
    """
    n = rates.shape[0]
    ncols = caps.shape[0]
    if n == 0:
        return True, 0, 0
    # Infinite rates (a variable whose every constraint has infinite
    # capacity) and infinite capacities break the residual arithmetic;
    # both are vanishingly rare in replay groups — full solve.
    if not np.isfinite(caps).all() or not np.isfinite(rates).all():
        _note("nonfinite")
        return False, 0, 0
    if cone_limit is None:
        cone_limit = max(16, n // 2)

    usage = np.bincount(cons_idx, weights=rates[var_idx], minlength=ncols)
    cap_tol = _CERT_RTOL * np.maximum(caps, 1.0)
    saturated = usage >= caps - cap_tol

    # --- 1. cone ----------------------------------------------------------
    cone_vars = np.zeros(n, dtype=bool)
    visited_cols = np.zeros(ncols, dtype=bool)
    frontier = np.zeros(ncols, dtype=bool)
    frontier[seed_cols] = True
    n_cone = 0
    for _ in range(_CONE_ROUNDS):
        visited_cols |= frontier
        pull = frontier[cons_idx] & ~cone_vars[var_idx]
        if pull.any():
            cone_vars[var_idx[pull]] = True
            n_cone = int(np.count_nonzero(cone_vars))
            if n_cone > cone_limit:
                _note("cone_limit")
                return False, 0, n_cone
        touched = np.zeros(ncols, dtype=bool)
        touched[cons_idx[cone_vars[var_idx]]] = True
        frontier = touched & saturated & ~visited_cols
        if not frontier.any():
            break
    else:
        # The saturation graph kept expanding past the round budget.
        # Do NOT give up: proceed with the truncated cone and let the
        # global certificate below decide whether the change really
        # stayed inside it.  (Topological saturation closure routinely
        # covers a whole wavefront while the actual rate change decays
        # within a couple of hops.)
        _note("truncated")
    if n_cone == 0:
        # Seeds with no remaining users (e.g. the last variable left the
        # column): nothing to re-rate, and nobody else can have moved.
        _note("empty_cone")
        return True, 0, 0

    # --- 2. sub-solve against residual capacities -------------------------
    cone_pairs = cone_vars[var_idx]
    pair_vars = var_idx[cone_pairs]
    pair_cols = cons_idx[cone_pairs]
    sub_col_ids = np.unique(pair_cols)
    col_map = np.full(ncols, -1, dtype=np.intp)
    col_map[sub_col_ids] = np.arange(sub_col_ids.shape[0])
    sub_var_ids = np.flatnonzero(cone_vars)
    var_map = np.full(n, -1, dtype=np.intp)
    var_map[sub_var_ids] = np.arange(n_cone)
    cone_usage = np.bincount(pair_cols, weights=rates[pair_vars],
                             minlength=ncols)
    sub_caps = caps[sub_col_ids] - (usage[sub_col_ids]
                                    - cone_usage[sub_col_ids])
    np.maximum(sub_caps, 0.0, out=sub_caps)
    if fill is None:
        fill = fill_vectorized
    sub_rates, levels = fill(
        sub_caps,
        bounds[sub_var_ids],
        None,
        var_map[pair_vars],
        col_map[pair_cols],
    )
    if not np.isfinite(sub_rates).all():
        _note("sub_nonfinite")
        return False, levels, n_cone

    old_rates = rates[sub_var_ids].copy()
    rates[sub_var_ids] = sub_rates

    # --- 3. certificate ---------------------------------------------------
    # Only cone variables moved, so post-patch usage differs from the
    # pre-patch accumulation on the cone's columns alone: swap the old
    # cone contribution for the new one instead of re-accumulating all
    # memberships.
    pair_rates = rates[var_idx]
    new_cone_usage = np.bincount(pair_cols, weights=rates[pair_vars],
                                 minlength=ncols)
    usage2 = usage + (new_cone_usage - cone_usage)
    if not (usage2 <= caps + cap_tol).all():
        rates[sub_var_ids] = old_rates
        _note("infeasible")
        return False, levels, n_cone
    maxrate = np.full(ncols, -np.inf)
    np.maximum.at(maxrate, cons_idx, pair_rates)
    sat2 = usage2 >= caps - cap_tol
    rate_tol = _CERT_RTOL * np.maximum(np.abs(maxrate), 1.0)
    pair_ok = sat2[cons_idx] & (pair_rates
                                >= (maxrate - rate_tol)[cons_idx])
    blocked = np.zeros(n, dtype=bool)
    blocked[var_idx[pair_ok]] = True
    if not blocked.all():
        finite_bound = np.isfinite(bounds)
        at_bound = finite_bound.copy()
        if finite_bound.any():
            fb = bounds[finite_bound]
            at_bound[finite_bound] = (
                rates[finite_bound]
                >= fb - _CERT_RTOL * np.maximum(fb, 1.0))
        if not (blocked | at_bound).all():
            rates[sub_var_ids] = old_rates
            _note("not_blocked")
            return False, levels, n_cone
    _note("ok")
    return True, levels, n_cone
