"""Linear max-min (LMM) resource sharing.

This is the resource-sharing heart of the simulation kernel, mirroring the
role of SimGrid's ``lmm`` solver: every shared resource (a network link, a
CPU) is a *constraint* with a capacity, every running activity (a data flow,
a compute burst) is a *variable* that consumes one or more constraints, and
the solver assigns each variable a rate by *progressive filling* (weighted
max-min fairness):

1. For each unsaturated constraint, compute the fair share
   ``remaining_capacity / total_weight_of_unfixed_variables``.
2. Fix every variable crossing the most restrictive constraint at that
   share, subtract its usage everywhere, and repeat.

Variables may carry a ``bound`` (a private rate cap, e.g. the peak flop
rate of a pinned task or a TCP-window limit); bounds are honoured by
treating them as one-variable constraints.

The solver is re-run from scratch whenever the set of active activities
changes.  This is O(iterations x variables x constraints) but the active
sets in MPI replay are small (a wavefront of flows, a handful of compute
bursts per host), so a clear implementation beats a clever incremental one.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

__all__ = ["Constraint", "Variable", "solve"]

_EPS = 1e-12


class Constraint:
    """A shared resource with a finite capacity (bytes/s or flops/s).

    ``users`` is maintained by the engine: the set of activities currently
    consuming this constraint.  It is what makes partial (component-wise)
    rate recomputation possible.
    """

    __slots__ = ("capacity", "name", "users", "fatpipe")

    def __init__(self, capacity: float, name: str = "",
                 fatpipe: bool = False) -> None:
        if capacity < 0:
            raise ValueError(f"constraint capacity must be >= 0, got {capacity}")
        self.capacity = float(capacity)
        self.name = name
        self.users = set()
        # A fatpipe resource is not shared: every crossing activity may
        # use the full capacity independently (SimGrid's FATPIPE sharing
        # policy — the model of a non-blocking switch fabric).  The engine
        # treats it as a per-activity rate cap, not a constraint.
        self.fatpipe = fatpipe

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Constraint({self.name or id(self)}, cap={self.capacity:g})"


class Variable:
    """An activity's demand on a set of constraints.

    ``weight`` scales consumption: a variable running at rate ``r`` consumes
    ``weight * r`` of each constraint it crosses.  ``bound`` caps the rate
    regardless of what fairness would allow.  After :func:`solve`, ``value``
    holds the allocated rate.
    """

    __slots__ = ("constraints", "weight", "bound", "value", "name")

    def __init__(
        self,
        constraints: Iterable[Constraint],
        weight: float = 1.0,
        bound: Optional[float] = None,
        name: str = "",
    ) -> None:
        self.constraints: List[Constraint] = list(constraints)
        if weight <= 0:
            raise ValueError(f"variable weight must be > 0, got {weight}")
        if bound is not None and bound < 0:
            raise ValueError(f"variable bound must be >= 0, got {bound}")
        self.weight = float(weight)
        self.bound = bound
        self.value = 0.0
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({self.name or id(self)}, value={self.value:g})"


def solve(variables: List[Variable]) -> None:
    """Assign a max-min fair rate to every variable, in place.

    A variable crossing no constraint and carrying no bound is unconstrained;
    it gets ``float('inf')`` (callers treat infinite-rate activities as
    completing instantly after their latency phase).
    """
    # Reset and collect the constraint set.
    remaining: Dict[Constraint, float] = {}
    load: Dict[Constraint, float] = {}  # total weight of unfixed variables
    unfixed: List[Variable] = []
    for var in variables:
        var.value = 0.0
        if not var.constraints and var.bound is None:
            var.value = float("inf")
            continue
        unfixed.append(var)
        for cons in var.constraints:
            if cons not in remaining:
                remaining[cons] = cons.capacity
                load[cons] = 0.0
            load[cons] += var.weight

    while unfixed:
        # Most restrictive fair share across saturating constraints...
        share = float("inf")
        for cons, rem in remaining.items():
            w = load[cons]
            if w > _EPS:
                share = min(share, rem / w)
        # ... and across private bounds.
        bounded = [v for v in unfixed if v.bound is not None]
        min_bound = min((v.bound for v in bounded), default=float("inf"))
        level = min(share, min_bound)

        if level == float("inf"):
            # Only unconstrained-but-unbounded leftovers (e.g. every
            # crossing constraint already saturated by others at 0 load).
            for var in unfixed:
                var.value = float("inf")
            break

        # Fix: every variable whose bound is reached, plus every variable
        # crossing a constraint saturated at this level.
        to_fix = []
        for var in unfixed:
            if var.bound is not None and var.bound <= level + _EPS * max(1.0, level):
                to_fix.append((var, var.bound))
                continue
            for cons in var.constraints:
                w = load[cons]
                if w > _EPS and remaining[cons] / w <= level + _EPS * max(1.0, level):
                    to_fix.append((var, level))
                    break
        if not to_fix:
            # Numerical corner: nothing saturates exactly; fix everything at
            # the level to guarantee termination.
            to_fix = [(var, level) for var in unfixed]

        fixed_set = {id(v) for v, _ in to_fix}
        for var, rate in to_fix:
            var.value = rate
            for cons in var.constraints:
                remaining[cons] = max(0.0, remaining[cons] - var.weight * rate)
                load[cons] -= var.weight
        unfixed = [v for v in unfixed if id(v) not in fixed_set]
