"""Message matching and the eager/rendezvous transfer protocol.

This layer turns the kernel's raw :class:`CommActivity` flows into
MPI-style matched communications.  Both the simulated-MPI runtime
(:mod:`repro.smpi`) and the trace replayer (:mod:`repro.core.replay`)
speak to it.

Protocol, mirroring the MPI-on-TCP behaviour the paper's piece-wise-linear
model captures (§5):

* **Eager** (size <= ``eager_threshold``): the payload leaves immediately;
  the send request completes when the flow lands whether or not a receive
  is posted, and a receive posted later completes at the flow's arrival
  time (or immediately if it already landed).  This is MPI_Send's buffered
  mode.
* **Rendezvous** (size > ``eager_threshold``): the flow starts only once
  both sides are posted; both requests complete when it finishes.  This is
  MPI_Send's synchronous mode above the implementation threshold.

Matching follows MPI rules: per-destination queues, first-in-first-out per
(source, tag) pair, with ``ANY_SOURCE``/``ANY_TAG`` wildcards.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional

from .activity import CommActivity, Waitable
from .engine import Engine
from .platform import Host, Platform
from .pwl import PiecewiseLinearModel, DEFAULT_MPI_MODEL
from .telemetry import CommMetrics

__all__ = ["ANY_SOURCE", "ANY_TAG", "CommRequest", "CommSystem"]

ANY_SOURCE = -1
ANY_TAG = -1

# Matches OpenMPI's default point-to-point eager limit for TCP (64 KiB),
# which is also the upper boundary of the paper's third model segment.
DEFAULT_EAGER_THRESHOLD = 65536


class CommRequest(Waitable):
    """One side (send or receive) of a matched communication."""

    __slots__ = ("kind", "src", "dst", "tag", "size", "data", "comm")

    def __init__(self, kind: str, src: int, dst: int, tag: int,
                 size: float, data: Any = None) -> None:
        super().__init__()
        self.kind = kind  # "send" | "recv"
        self.src = src
        self.dst = dst
        self.tag = tag
        self.size = size
        self.data = data
        self.comm: Optional["_PendingComm"] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CommRequest({self.kind} {self.src}->{self.dst} "
                f"tag={self.tag} size={self.size:g} done={self.done})")


class _PendingComm:
    """A communication being matched and transferred.

    ``links`` (the full route, fatpipes included) is only recorded when
    fault tracking is enabled — it is what lets a link failure find the
    flows crossing it.
    """

    __slots__ = ("send_req", "recv_req", "activity", "arrived", "eager",
                 "links")

    def __init__(self) -> None:
        self.send_req: Optional[CommRequest] = None
        self.recv_req: Optional[CommRequest] = None
        self.activity: Optional[CommActivity] = None
        self.arrived = False
        self.eager = False
        self.links = None


class CommSystem:
    """Matches sends with receives and drives flows over the platform.

    ``rank_hosts`` maps integer ranks to the :class:`Host` each one runs on
    (the deployment of Fig. 6); it can hold several ranks per host, which
    is how the Folding acquisition mode is expressed.
    """

    def __init__(
        self,
        engine: Engine,
        platform: Platform,
        rank_hosts: Dict[int, Host],
        comm_model: PiecewiseLinearModel = DEFAULT_MPI_MODEL,
        eager_threshold: float = DEFAULT_EAGER_THRESHOLD,
        metrics: Optional[CommMetrics] = None,
    ) -> None:
        self.engine = engine
        self.platform = platform
        self.rank_hosts = dict(rank_hosts)
        self.comm_model = comm_model
        self.eager_threshold = eager_threshold
        # Unmatched posted sends / receives, per destination rank.
        self._pending_sends: Dict[int, Deque[_PendingComm]] = {}
        self._pending_recvs: Dict[int, Deque[_PendingComm]] = {}
        self.n_transfers = 0
        self.bytes_transferred = 0.0
        # Optional telemetry; None keeps the posting paths increment-free.
        self.metrics = metrics
        # Routes and model factors are static for a run: memoise them
        # (regular MPI codes reuse a handful of peer pairs and sizes).
        self._route_cache: Dict[tuple, tuple] = {}
        self._factor_cache: Dict[float, tuple] = {}
        # Fault tracking (see repro.faults) — None until enabled, so
        # fault-free runs pay a single falsy attribute test per transfer.
        self._inflight: Optional[Dict[_PendingComm, None]] = None
        self._down_links: Optional[set] = None

    @property
    def size(self) -> int:
        """Number of ranks deployed (MPI_Comm_size of COMM_WORLD)."""
        return len(self.rank_hosts)

    def host_of(self, rank: int) -> Host:
        try:
            return self.rank_hosts[rank]
        except KeyError:
            raise KeyError(
                f"rank {rank} not deployed (have ranks "
                f"0..{len(self.rank_hosts) - 1})"
            ) from None

    # ------------------------------------------------------------------
    # Posting
    # ------------------------------------------------------------------
    def isend(self, src: int, dst: int, size: float, tag: int = 0,
              data: Any = None) -> CommRequest:
        """Post a non-blocking send of ``size`` bytes from rank ``src``."""
        req = CommRequest("send", src, dst, tag, size, data)
        queue = self._pending_recvs.get(dst)
        comm = self._match(queue, src, tag) if queue else None
        if comm is not None:
            comm.send_req = req
            req.comm = comm
            comm.eager = size <= self.eager_threshold
            self._start_transfer(comm)
        else:
            comm = _PendingComm()
            comm.send_req = req
            req.comm = comm
            comm.eager = size <= self.eager_threshold
            queue = self._pending_sends.setdefault(dst, deque())
            queue.append(comm)
            metrics = self.metrics
            if metrics is not None and len(queue) > metrics.max_pending_sends:
                metrics.max_pending_sends = len(queue)
            if comm.eager:
                # Buffered mode: the payload flies now.
                self._start_transfer(comm)
        return req

    def irecv(self, dst: int, src: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> CommRequest:
        """Post a non-blocking receive at rank ``dst``."""
        req = CommRequest("recv", src, dst, tag, 0.0)
        queue = self._pending_sends.get(dst)
        comm = self._match(queue, src, tag) if queue else None
        if comm is not None:
            comm.recv_req = req
            req.comm = comm
            req.size = comm.send_req.size
            req.src = comm.send_req.src
            req.data = comm.send_req.data
            if comm.activity is None:
                # Rendezvous: the sender was waiting for us.
                self._start_transfer(comm)
            elif comm.arrived:
                # Eager payload already landed.
                self.engine.complete_waitable(req)
            # else: eager payload in flight; completion hooks in place.
        else:
            comm = _PendingComm()
            comm.recv_req = req
            req.comm = comm
            queue = self._pending_recvs.setdefault(dst, deque())
            queue.append(comm)
            metrics = self.metrics
            if metrics is not None and len(queue) > metrics.max_pending_recvs:
                metrics.max_pending_recvs = len(queue)
        return req

    # Blocking conveniences (generator style: ``yield from comms.send(...)``)
    def send(self, src: int, dst: int, size: float, tag: int = 0,
             data: Any = None):
        req = self.isend(src, dst, size, tag=tag, data=data)
        yield req
        return req

    def recv(self, dst: int, src: int = ANY_SOURCE, tag: int = ANY_TAG):
        req = self.irecv(dst, src=src, tag=tag)
        yield req
        return req

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _match(queue: Optional[Deque[_PendingComm]], src_or_sender: int,
               tag: int) -> Optional[_PendingComm]:
        """Pop the first queue entry compatible with (src, tag).

        When called from ``isend`` the queue holds receive-side entries and
        ``src_or_sender`` is the sending rank (to match the receive's
        source selector); from ``irecv`` it holds send-side entries and
        the roles flip.  MPI's non-overtaking rule is preserved because the
        scan is in posting order.
        """
        if not queue:
            return None
        for idx, comm in enumerate(queue):
            if comm.recv_req is not None:  # entry posted by a receiver
                want_src = comm.recv_req.src
                want_tag = comm.recv_req.tag
                if (want_src in (ANY_SOURCE, src_or_sender)
                        and want_tag in (ANY_TAG, tag)):
                    del queue[idx]
                    return comm
            else:  # entry posted by a sender
                have_src = comm.send_req.src
                have_tag = comm.send_req.tag
                if (src_or_sender in (ANY_SOURCE, have_src)
                        and tag in (ANY_TAG, have_tag)):
                    del queue[idx]
                    return comm
        return None

    def transfer_params(self, src: int, dst: int, size: float):
        """``(links, scaled latency, rate factor)`` for one transfer —
        the exact flow parameters :meth:`_start_transfer` would use,
        route- and factor-cached.  The phase-batched collective driver
        builds its flows through this, so a batched collective crosses
        the same constraints with the same latency/bandwidth scaling as
        the per-rank protocol it replaces."""
        src_host = self.host_of(src)
        dst_host = self.host_of(dst)
        route_key = (id(src_host), id(dst_host))
        cached = self._route_cache.get(route_key)
        if cached is None:
            route = self.platform.route(src_host, dst_host)
            cached = (route.links, route.latency)
            self._route_cache[route_key] = cached
        links, latency = cached
        factors = self._factor_cache.get(size)
        if factors is None:
            factors = self.comm_model.factors(size)
            self._factor_cache[size] = factors
        lat_factor, bw_factor = factors
        return links, latency * lat_factor, bw_factor

    def _start_transfer(self, comm: _PendingComm) -> None:
        send_req = comm.send_req
        links, latency, bw_factor = self.transfer_params(
            send_req.src, send_req.dst, send_req.size)
        down = self._down_links
        if down and not down.isdisjoint(links):
            # The route crosses a dead link: the transfer is refused and
            # both posted sides fail with the link's provenance.
            dead = next(c for c in links if c in down)
            reason = f"link {dead.name or id(dead)} is down"
            for req in (comm.send_req, comm.recv_req):
                if req is not None and not req.done:
                    self.engine.fail_waitable(req, reason)
            return
        act = CommActivity(
            links,
            send_req.size,
            latency=latency,
            rate_factor=bw_factor,
            name=f"{send_req.src}->{send_req.dst}/{send_req.tag}",
        )
        comm.activity = act
        if self._inflight is not None:
            comm.links = links
            self._inflight[comm] = None
        self.n_transfers += 1
        self.bytes_transferred += send_req.size
        # Transfer/byte/cache-rate telemetry is derived from cache_stats()
        # snapshots; only the eager split needs a live counter.
        metrics = self.metrics
        if metrics is not None and comm.eager:
            metrics.eager_transfers += 1
        act.on_complete(lambda _act, c=comm: self._on_arrival(c))
        self.engine.start_activity(act)
        if comm.eager and not send_req.done:
            # Buffered mode: MPI_Send returns as soon as the payload is
            # handed to the transport; only the receiver tracks arrival.
            self.engine.complete_waitable(send_req)

    def _on_arrival(self, comm: _PendingComm) -> None:
        comm.arrived = True
        if self._inflight is not None:
            self._inflight.pop(comm, None)
        if comm.send_req is not None:
            self.engine.complete_waitable(comm.send_req)
        if comm.recv_req is not None:
            recv = comm.recv_req
            recv.size = comm.send_req.size
            recv.src = comm.send_req.src
            recv.data = comm.send_req.data
            self.engine.complete_waitable(recv)

    # ------------------------------------------------------------------
    # Fault injection (see repro.faults)
    # ------------------------------------------------------------------
    def enable_fault_tracking(self) -> None:
        """Start tracking in-flight flows and down links; called once by
        the fault injector before the simulation starts.  Fault-free runs
        never call this, keeping the transfer path unchanged."""
        if self._inflight is None:
            self._inflight = {}  # insertion-ordered set of _PendingComm
            self._down_links = set()

    def take_link_down(self, constraint, reason: str) -> int:
        """Mark a link constraint down: refuse new flows crossing it and
        FAIL the in-flight ones.  Returns the number of flows failed."""
        self.enable_fault_tracking()
        self._down_links.add(constraint)
        victims = [comm for comm in self._inflight
                   if comm.links and constraint in comm.links]
        for comm in victims:
            self._fail_comm(comm, reason)
        return len(victims)

    def bring_link_up(self, constraint) -> None:
        """Restore a previously downed link for flows started from now on."""
        if self._down_links is not None:
            self._down_links.discard(constraint)

    def _fail_comm(self, comm: _PendingComm, reason: str) -> int:
        """FAIL one in-flight communication: its kernel flow plus both
        posted requests (each waiting process gets an ActivityFailed)."""
        self._inflight.pop(comm, None)
        failed = 0
        act = comm.activity
        if act is not None:
            self.engine.fail_activity(act, reason)
        for req in (comm.send_req, comm.recv_req):
            if req is not None and not req.done and not req.failed:
                self.engine.fail_waitable(req, reason)
                failed += 1
        return failed

    def purge_rank(self, rank: int) -> int:
        """Drop the match-queue entries of a dead rank.

        Receives it posted and rendezvous sends it never started are
        removed, so peers blocked on them surface as deadlocked
        casualties instead of matching against a ghost.  Eager sends
        whose payload already left stay deliverable (the data was on the
        wire before the crash).  Returns the number of purged entries.
        """
        purged = 0
        queue = self._pending_recvs.get(rank)
        if queue:
            purged += len(queue)
            queue.clear()
        for dst_queue in self._pending_sends.values():
            keep = [comm for comm in dst_queue
                    if not (comm.send_req is not None
                            and comm.send_req.src == rank
                            and comm.activity is None)]
            if len(keep) != len(dst_queue):
                purged += len(dst_queue) - len(keep)
                dst_queue.clear()
                dst_queue.extend(keep)
        return purged

    # ------------------------------------------------------------------
    # Introspection (used by deadlock diagnostics and tests)
    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, float]:
        """Snapshot of the counters the kernel maintains anyway; telemetry
        (:class:`CommMetrics`) takes begin/finish deltas of this instead
        of counting per transfer.  Each transfer performs exactly one
        route lookup and one model-factor lookup, so cache hit counts
        follow as ``transfers - misses``."""
        return {
            "n_transfers": self.n_transfers,
            "bytes_transferred": self.bytes_transferred,
            "route_cache_entries": len(self._route_cache),
            "factor_cache_entries": len(self._factor_cache),
        }

    def unmatched_counts(self, by_key: bool = False) -> Dict[str, object]:
        """Unmatched posted sends and receives.

        With ``by_key=False`` (default) returns total counts,
        ``{"sends": n, "recvs": m}``.  With ``by_key=True`` each side is
        broken down by ``(src, dst, tag)`` — wildcards appear as -1 —
        which is what the deadlock report prints so an inconsistent trace
        (e.g. a recv whose matching send was truncated away) is
        attributable to a specific pair in one read.
        """
        if not by_key:
            sends = sum(len(q) for q in self._pending_sends.values())
            recvs = sum(len(q) for q in self._pending_recvs.values())
            return {"sends": sends, "recvs": recvs}
        send_keys: Dict[tuple, int] = {}
        recv_keys: Dict[tuple, int] = {}
        for queue in self._pending_sends.values():
            for comm in queue:
                req = comm.send_req
                key = (req.src, req.dst, req.tag)
                send_keys[key] = send_keys.get(key, 0) + 1
        for queue in self._pending_recvs.values():
            for comm in queue:
                req = comm.recv_req
                key = (req.src, req.dst, req.tag)
                recv_keys[key] = recv_keys.get(key, 0) + 1
        return {"sends": send_keys, "recvs": recv_keys}
