"""Activities: the units of simulated work managed by the engine.

An :class:`Activity` is anything a simulated process can block on.  The
kernel advances three concrete kinds:

* :class:`ExecActivity` — a compute burst of ``amount`` flops on one CPU
  constraint; its rate comes from max-min sharing of the CPU.
* :class:`CommActivity` — a point-to-point data flow over a route of link
  constraints.  It holds a *latency phase* (a fixed delay during which no
  bandwidth is consumed) followed by a *data phase* whose rate comes from
  max-min sharing of the crossed links.
* :class:`Timer` — a pure delay (sleeps, timeouts).

The engine drives them lazily: each activity carries its current ``rate``,
the ``remaining`` work at its ``settled_at`` instant, and an ``epoch``
counter that invalidates stale completion-calendar entries whenever the
rate is re-assigned.  Rates only change when the activity's *sharing component*
(activities transitively connected through shared constraints) changes, so
the engine settles and re-rates just that component — never the world.

Higher layers (mailboxes, MPI requests) build :class:`Waitable` wrappers
that complete via callbacks chained off these primitives.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from .lmm import Constraint

__all__ = ["Waitable", "Activity", "ExecActivity", "CommActivity", "Timer",
           "ActivityFailed"]

INF = float("inf")


class ActivityFailed(RuntimeError):
    """Raised inside a process blocked on a waitable that failed.

    A waitable enters the terminal FAILED state (distinct from ``done``)
    when a fault takes out a resource it depends on — a host crash killing
    a compute burst, a link going down under a data flow.  ``reason`` is a
    human-readable provenance string naming the fault event, carried all
    the way up to :class:`~repro.faults.FaultReport`.
    """

    def __init__(self, waitable: Optional["Waitable"], reason: str = "") -> None:
        name = getattr(waitable, "name", None) or type(waitable).__name__ \
            if waitable is not None else "process"
        super().__init__(f"{name} failed: {reason or 'resource failure'}")
        self.waitable = waitable
        self.reason = reason


class Waitable:
    """Anything a process can block on: has ``done`` and wakes waiters.

    Terminal states are ``done`` (completed normally) and ``failed``
    (killed by a fault; see :class:`ActivityFailed`).  They are mutually
    exclusive; fault-free simulations never set ``failed``.
    """

    __slots__ = ("done", "waiters", "_callbacks", "failed", "failure",
                 "_fail_callbacks")

    def __init__(self) -> None:
        self.done = False
        self.waiters: List[tuple] = []  # (Process, wait-token) pairs
        self._callbacks: List[Callable[["Waitable"], None]] = []
        self.failed = False
        self.failure: Optional[str] = None  # fault provenance when failed
        self._fail_callbacks: Optional[List[Callable]] = None

    def on_complete(self, callback: Callable[["Waitable"], None]) -> None:
        """Register ``callback(self)``; fired immediately if already done."""
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def on_fail(self, callback: Callable[["Waitable"], None]) -> None:
        """Register ``callback(self)`` for the FAILED transition."""
        if self.failed:
            callback(self)
        elif self._fail_callbacks is None:
            self._fail_callbacks = [callback]
        else:
            self._fail_callbacks.append(callback)

    def _fire(self) -> None:
        self.done = True
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _fire_failure(self, reason: str) -> None:
        self.failed = True
        self.failure = reason
        self._callbacks = []  # completion callbacks must never run now
        callbacks, self._fail_callbacks = self._fail_callbacks, None
        for callback in callbacks or ():
            callback(self)


class Activity(Waitable):
    """A kernel-managed unit of simulated work.

    Lifecycle: built, handed to :meth:`Engine.start_activity`, advanced by
    the lazy fluid loop, completed (``done=True``, waiters woken).
    """

    __slots__ = ("name", "start_time", "finish_time",
                 "constraints", "bound", "remaining", "rate",
                 "settled_at", "epoch", "registered", "cal_slot")

    def __init__(self, name: str = "") -> None:
        super().__init__()
        self.name = name
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        # Sharing state (meaningful once the activity is in its
        # resource-consuming phase).
        self.constraints: Tuple[Constraint, ...] = ()
        self.bound: Optional[float] = None
        self.remaining = 0.0
        self.rate = 0.0
        self.settled_at = 0.0
        self.epoch = 0
        self.registered = False  # constraints' user sets include self
        self.cal_slot = -1       # owned event-calendar slot (engine)

    # -- hooks the engine calls ----------------------------------------
    def begin(self, now: float) -> str:
        """Enter the first phase.  Returns the phase kind:
        ``"timer"`` (fixed end: ``remaining`` holds the delay),
        ``"sharing"`` (consumes constraints), or ``"done"``."""
        raise NotImplementedError

    def on_phase_end(self, now: float) -> str:
        """A heap event fired with a valid epoch: the current phase ended.
        Returns the next phase kind (as in :meth:`begin`)."""
        return "done"


class ExecActivity(Activity):
    """``amount`` flops on a CPU constraint (shared max-min)."""

    __slots__ = ()

    def __init__(
        self,
        constraint: Constraint,
        amount: float,
        bound: Optional[float] = None,
        name: str = "",
    ) -> None:
        super().__init__(name)
        if amount < 0:
            raise ValueError(f"compute amount must be >= 0, got {amount}")
        if bound is not None and bound < 0:
            raise ValueError(f"rate bound must be >= 0, got {bound}")
        self.constraints = (constraint,)
        self.bound = bound
        self.remaining = float(amount)

    def begin(self, now: float) -> str:
        if self.remaining <= 0.0:
            return "done"
        return "sharing"


class CommActivity(Activity):
    """A data flow: latency phase, then bandwidth-shared data phase.

    ``links`` are the constraints crossed by the flow.  ``size`` is the
    payload in bytes; ``rate_factor`` (from the piece-wise-linear MPI
    model) scales the achieved bandwidth — implemented by inflating the
    transferred amount to ``size / rate_factor`` — and ``latency`` is the
    already-scaled route latency.  ``bound`` caps the flow's bandwidth.
    """

    __slots__ = ("size", "latency", "rate_factor", "_in_latency")

    def __init__(
        self,
        links: Sequence[Constraint],
        size: float,
        latency: float,
        rate_factor: float = 1.0,
        bound: Optional[float] = None,
        name: str = "",
    ) -> None:
        super().__init__(name)
        if size < 0:
            raise ValueError(f"message size must be >= 0, got {size}")
        if rate_factor <= 0:
            raise ValueError(f"rate factor must be > 0, got {rate_factor}")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        shared = []
        cap = bound
        for link in links:
            if link.fatpipe:
                if cap is None or link.capacity < cap:
                    cap = link.capacity
            else:
                shared.append(link)
        self.constraints = tuple(shared)
        self.bound = cap
        self.size = float(size)
        self.latency = float(latency)
        self.rate_factor = float(rate_factor)
        self._in_latency = False

    def begin(self, now: float) -> str:
        if self.latency > 0.0:
            self._in_latency = True
            self.remaining = self.latency  # seconds, timer semantics
            return "timer"
        return self._begin_data()

    def on_phase_end(self, now: float) -> str:
        if self._in_latency:
            self._in_latency = False
            return self._begin_data()
        return "done"

    def _begin_data(self) -> str:
        if self.size <= 0.0:
            return "done"
        self.remaining = self.size / self.rate_factor
        return "sharing"


class Timer(Activity):
    """A pure simulated-time delay."""

    __slots__ = ()

    def __init__(self, duration: float, name: str = "") -> None:
        super().__init__(name)
        if duration < 0:
            raise ValueError(f"timer duration must be >= 0, got {duration}")
        self.remaining = float(duration)

    def begin(self, now: float) -> str:
        if self.remaining <= 0.0:
            return "done"
        return "timer"
