"""Optional Numba-compiled progressive-filling kernel (``repro[native]``).

The default install never imports numba: this module is only reached
through ``lmm_mode="native"`` (``repro-replay --lmm native``), and the
import failure is reported as an actionable :class:`RuntimeError` at
that point — never as a crash inside a default-mode replay.

The kernel (:func:`_fill_loop`) is the same weighted progressive
filling as :func:`repro.simkernel.lmm.fill_vectorized`, written as the
plain scalar loops Numba compiles best: one pass over constraints for
the level, one pass over memberships to fix and to subtract usage.  It
is deliberately valid pure Python too, so its logic is property-tested
against the reference oracle on every install — with numba present the
very same function is ``njit``-compiled and the test suite additionally
checks the compiled artifact.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["available", "fill", "unavailable_reason"]

_INF = float("inf")
_EPS = 1e-12

try:  # pragma: no cover - exercised only with the [native] extra
    from numba import njit as _njit

    _IMPORT_ERROR: Optional[BaseException] = None
except Exception as exc:  # ImportError, or a broken numba installation
    _njit = None
    _IMPORT_ERROR = exc


def available() -> bool:
    """True when the ``repro[native]`` extra is installed and importable."""
    return _njit is not None


def unavailable_reason() -> str:
    """Why ``mode='native'`` cannot run here (empty string when it can)."""
    if _njit is not None:
        return ""
    return (
        "lmm_mode='native' needs the optional Numba kernel: install the "
        f"'repro[native]' extra (pip install 'repro[native]'); numba "
        f"import failed with: {_IMPORT_ERROR!r}"
    )


def _fill_loop(caps, bounds, pair_w, var_idx, cons_idx,
               rates, remaining, load) -> int:
    """Weighted progressive filling as scalar loops (njit-compilable).

    Mutates ``rates`` (zero-initialised), ``remaining`` (a copy of the
    capacities) and ``load`` (per-constraint total weight of unfixed
    variables) in place; returns the number of filling levels.  The
    fix/threshold arithmetic mirrors ``fill_vectorized`` operation for
    operation so the two kernels agree to float noise, not just to the
    1e-9 gate.
    """
    n = bounds.shape[0]
    m = var_idx.shape[0]
    ncols = caps.shape[0]
    unfixed = np.ones(n, np.bool_)
    newly = np.zeros(n, np.bool_)
    sat = np.zeros(ncols, np.bool_)
    n_unfixed = n
    levels = 0
    while n_unfixed > 0:
        levels += 1
        level = _INF
        for j in range(ncols):
            if load[j] > _EPS:
                share = remaining[j] / load[j]
                if share < level:
                    level = share
        for i in range(n):
            if unfixed[i] and bounds[i] < level:
                level = bounds[i]
        if level == _INF:
            for i in range(n):
                if unfixed[i]:
                    rates[i] = _INF
            break
        threshold = level + _EPS * (level if level > 1.0 else 1.0)
        for j in range(ncols):
            sat[j] = (load[j] > _EPS
                      and remaining[j] / load[j] <= threshold)
        n_fixed = 0
        for i in range(n):
            if unfixed[i] and bounds[i] <= threshold:
                newly[i] = True
                rates[i] = bounds[i]
                n_fixed += 1
            else:
                newly[i] = False
        for p in range(m):
            i = var_idx[p]
            if unfixed[i] and not newly[i] and sat[cons_idx[p]]:
                newly[i] = True
                rates[i] = level
                n_fixed += 1
        if n_fixed == 0:
            # Numerical corner: nothing saturates exactly; fix everything
            # at the level to guarantee termination (as the oracle does).
            for i in range(n):
                if unfixed[i]:
                    newly[i] = True
                    rates[i] = level
            n_fixed = n_unfixed
        if n_fixed == n_unfixed:
            # Last level: no reader of remaining/load is left.
            break
        for p in range(m):
            i = var_idx[p]
            if newly[i]:
                j = cons_idx[p]
                w = pair_w[p]
                rem = remaining[j] - w * rates[i]
                remaining[j] = rem if rem > 0.0 else 0.0
                load[j] -= w
        for i in range(n):
            if newly[i]:
                unfixed[i] = False
        n_unfixed -= n_fixed
    return levels


_compiled = None


def _kernel():
    """The njit-compiled filling loop, compiled once on first use."""
    global _compiled
    if _compiled is None:
        if _njit is None:
            raise RuntimeError(unavailable_reason())
        _compiled = _njit(cache=True, nogil=True)(_fill_loop)
    return _compiled


def _fill_with(kernel, caps, bounds, weights, var_idx, cons_idx,
               load=None, work=None) -> Tuple[np.ndarray, int]:
    """Array plumbing shared by the compiled and pure-Python entry
    points: same signature and semantics as ``fill_vectorized`` (the
    ``work`` scratch dict is accepted for interface parity but the
    kernel's allocations are its own)."""
    n = bounds.shape[0]
    ncols = caps.shape[0]
    m = var_idx.shape[0]
    rates = np.zeros(n)
    remaining = caps.astype(float, copy=True)
    if weights is None:
        pair_w = np.ones(m)
        if load is None:
            loadv = np.bincount(cons_idx, minlength=ncols).astype(float)
        else:
            loadv = load.astype(float, copy=True)
    else:
        pair_w = np.ascontiguousarray(weights[var_idx], dtype=float)
        loadv = np.bincount(cons_idx, weights=pair_w, minlength=ncols)
    levels = kernel(remaining.copy() * 0 + caps, bounds.astype(float),
                    pair_w, np.ascontiguousarray(var_idx, dtype=np.intp),
                    np.ascontiguousarray(cons_idx, dtype=np.intp),
                    rates, remaining, loadv)
    return rates, levels


def fill(caps, bounds, weights, var_idx, cons_idx,
         load=None, work=None) -> Tuple[np.ndarray, int]:
    """``fill_vectorized``-compatible entry point on the njit kernel."""
    return _fill_with(_kernel(), caps, bounds, weights, var_idx, cons_idx,
                      load=load, work=work)


def fill_python(caps, bounds, weights, var_idx, cons_idx,
                load=None, work=None) -> Tuple[np.ndarray, int]:
    """The same kernel interpreted by CPython — the property-test hook
    that keeps the kernel logic verified on installs without numba."""
    return _fill_with(_fill_loop, caps, bounds, weights, var_idx, cons_idx,
                      load=load, work=work)
