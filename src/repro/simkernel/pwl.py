"""Piece-wise-linear MPI communication model.

Section 5 of the paper: on cluster interconnects running MPI over TCP,
point-to-point communication time is not an affine function of message
size — a message under ~1 KiB fits in one IP frame (higher achieved rate),
and MPI_Send switches from buffered to synchronous mode above an
implementation threshold.  SimGrid therefore specialises its flow model
with a model that is *piece-wise linear in the message size*: 3 segments,
hence 8 parameters (2 segment boundaries + a latency factor and a
bandwidth factor per segment).

For a message of ``size`` bytes falling in segment *i*:

    time = lat_factor[i] * route_latency + size / (bw_factor[i] * route_bw)

The kernel consumes the two factors: the latency factor scales the flow's
latency phase, the bandwidth factor scales its achieved rate.

:func:`fit` re-implements the calibration script shipped with SimGrid: a
per-segment linear least-squares fit of ping-pong measurements, yielding
the best-fit (lat_factor, bw_factor) pair for each segment.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["Segment", "PiecewiseLinearModel", "fit", "DEFAULT_MPI_MODEL"]


@dataclass(frozen=True)
class Segment:
    """One size range of the model; ``upper`` is exclusive (inf for last).

    ``fitted`` is False when :func:`fit` could not calibrate the segment
    and fell back to identity factors — consumers can tell a measured
    factor of 1.0 apart from an unfittable segment.
    """

    lower: float
    upper: float
    lat_factor: float
    bw_factor: float
    fitted: bool = True

    def __post_init__(self) -> None:
        if self.lower < 0 or self.upper <= self.lower:
            raise ValueError(f"bad segment bounds [{self.lower}, {self.upper})")
        if self.lat_factor <= 0 or self.bw_factor <= 0:
            raise ValueError("segment factors must be > 0")


class PiecewiseLinearModel:
    """Three (or more) contiguous :class:`Segment`s covering [0, inf)."""

    def __init__(self, segments: Sequence[Segment]) -> None:
        segs = sorted(segments, key=lambda s: s.lower)
        if not segs:
            raise ValueError("need at least one segment")
        if segs[0].lower != 0:
            raise ValueError("first segment must start at size 0")
        for a, b in zip(segs, segs[1:]):
            if a.upper != b.lower:
                raise ValueError(
                    f"segments must be contiguous: [{a.lower},{a.upper}) then "
                    f"[{b.lower},{b.upper})"
                )
        if segs[-1].upper != float("inf"):
            raise ValueError("last segment must extend to infinity")
        self.segments: List[Segment] = segs

    def segment_for(self, size: float) -> Segment:
        for seg in self.segments:
            if seg.lower <= size < seg.upper:
                return seg
        return self.segments[-1]  # pragma: no cover - unreachable

    def factors(self, size: float) -> Tuple[float, float]:
        """(latency factor, bandwidth factor) for a message of ``size`` B."""
        seg = self.segment_for(size)
        return seg.lat_factor, seg.bw_factor

    def predict(self, size: float, latency: float, bandwidth: float) -> float:
        """Point-to-point time on an uncontended route."""
        lat_f, bw_f = self.factors(size)
        return lat_f * latency + (size / (bw_f * bandwidth) if size else 0.0)

    @property
    def boundaries(self) -> List[float]:
        return [seg.upper for seg in self.segments[:-1]]

    def n_parameters(self) -> int:
        """8 for the canonical 3-segment model of the paper."""
        return len(self.segments) - 1 + 2 * len(self.segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"[{s.lower:g},{s.upper:g}):lat*{s.lat_factor:.3g},bw*{s.bw_factor:.3g}"
            for s in self.segments
        )
        return f"PiecewiseLinearModel({parts})"


IDENTITY_MODEL = PiecewiseLinearModel(
    [Segment(0.0, float("inf"), 1.0, 1.0)]
)


# Canonical 3-segment instantiation: small messages (< 1 KiB) enjoy a low
# effective latency and near-wire rate (single IP frame); medium messages
# pay MPI buffering; large messages (>= 64 KiB) run in synchronous
# (rendezvous) mode with an extra handshake folded into the latency factor.
DEFAULT_MPI_MODEL = PiecewiseLinearModel(
    [
        Segment(0.0, 1024.0, 1.0, 0.97),
        Segment(1024.0, 65536.0, 1.9, 0.92),
        Segment(65536.0, float("inf"), 3.2, 0.95),
    ]
)


def fit(
    sizes: Sequence[float],
    times: Sequence[float],
    latency: float,
    bandwidth: float,
    boundaries: Sequence[float] = (1024.0, 65536.0),
) -> PiecewiseLinearModel:
    """Best-fit a piece-wise-linear model to ping-pong measurements.

    ``sizes``/``times`` are one-way message sizes (bytes) and times (s);
    ``latency``/``bandwidth`` are the base route parameters determined as in
    Section 5 (1-byte ping-pong / 6, nominal link rate).  Within each
    segment we solve, in the least-squares sense,

        t_k = a * latency + c * (size_k / bandwidth)

    for ``a`` (the latency factor) and ``c = 1/bw_factor``.
    """
    sizes_arr = np.asarray(sizes, dtype=float)
    times_arr = np.asarray(times, dtype=float)
    if sizes_arr.shape != times_arr.shape or sizes_arr.ndim != 1:
        raise ValueError("sizes and times must be 1-D arrays of equal length")
    if latency <= 0 or bandwidth <= 0:
        raise ValueError("latency and bandwidth must be > 0")

    edges = [0.0] + sorted(float(b) for b in boundaries) + [float("inf")]
    segments = []
    for lo, hi in zip(edges, edges[1:]):
        mask = (sizes_arr >= lo) & (sizes_arr < hi)
        seg_sizes = sizes_arr[mask]
        seg_times = times_arr[mask]
        if seg_sizes.size < 2:
            # Too few points to fit — identity factors, loudly: a silent
            # 1.0/1.0 here masks a broken calibration campaign (missing
            # ping-pong sizes) as a perfectly neutral interconnect.
            warnings.warn(
                f"pwl.fit: segment [{lo:g}, {hi:g}) has "
                f"{seg_sizes.size} ping-pong sample(s), need >= 2; "
                "falling back to identity factors",
                RuntimeWarning, stacklevel=2,
            )
            segments.append(Segment(lo, hi, 1.0, 1.0, fitted=False))
            continue
        design = np.column_stack(
            [np.full(seg_sizes.size, latency), seg_sizes / bandwidth]
        )
        (a, c), *_ = np.linalg.lstsq(design, seg_times, rcond=None)
        if a <= 0 or c <= 0:
            # A non-positive factor means the measurements contradict the
            # model (e.g. times shrinking with size); the fit is garbage,
            # not merely imprecise.
            warnings.warn(
                f"pwl.fit: segment [{lo:g}, {hi:g}) fit non-positive "
                f"factors (lat_factor={float(a):g}, 1/bw_factor="
                f"{float(c):g}); falling back to identity factors",
                RuntimeWarning, stacklevel=2,
            )
            segments.append(Segment(lo, hi, 1.0, 1.0, fitted=False))
            continue
        segments.append(Segment(lo, hi, float(a), 1.0 / float(c)))
    return PiecewiseLinearModel(segments)
