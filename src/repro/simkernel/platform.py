"""Platform description: hosts, links, clusters, and routing.

The platform model mirrors what the paper's SimGrid XML files describe
(Fig. 5): compute clusters of homogeneous hosts, each host reaching a
shared backbone through a private full-duplex link, optionally grouped in
cabinets behind intermediate switches (the gdx cluster of §6.1), with
dedicated wide-area links between clusters (the 10 Gb Grid'5000 backbone
used by the Scattering acquisition mode).

Routing is static: a route is the ordered list of link constraints a flow
crosses plus the summed latency.  Same-host communication goes through a
per-host loopback link so that folded-rank exchanges cost a little but do
not contend with the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .lmm import Constraint

__all__ = ["Link", "Host", "Route", "Cluster", "Platform"]


class Link:
    """A network link: a bandwidth constraint plus a latency figure.

    ``available``/``failed_at`` hold the fault-injection availability
    state (see :mod:`repro.faults`): a down link refuses new flows and
    fails in-flight ones.  ``degrade_factor`` scales the constraint's
    effective capacity; degradations survive a down/up cycle.
    """

    __slots__ = ("name", "bandwidth", "latency", "constraint", "fatpipe",
                 "available", "failed_at", "degrade_factor")

    def __init__(self, name: str, bandwidth: float, latency: float,
                 fatpipe: bool = False) -> None:
        if bandwidth <= 0:
            raise ValueError(f"link {name}: bandwidth must be > 0")
        if latency < 0:
            raise ValueError(f"link {name}: latency must be >= 0")
        self.name = name
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.fatpipe = fatpipe
        self.constraint = Constraint(self.bandwidth, name=name,
                                     fatpipe=fatpipe)
        self.available = True
        self.failed_at: Optional[float] = None
        self.degrade_factor = 1.0

    def effective_bandwidth(self) -> float:
        """Nominal bandwidth after the current degradation factor."""
        return self.bandwidth * self.degrade_factor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.name}, bw={self.bandwidth:g}, lat={self.latency:g})"


class Host:
    """A compute node: ``cores`` cores at ``speed`` flops/s each.

    The CPU is a single max-min constraint of capacity ``speed * cores``;
    individual compute bursts are bounded at ``speed`` so one task can never
    exceed one core while several tasks folded onto one core share fairly —
    which is exactly what the Folding acquisition mode exercises.

    ``efficiency_model``, when set, makes the host's achieved flop rate
    depend on the computation: it maps ``(kind, flops)`` to a factor in
    (0, 1] applied to the nominal rate.  Ground-truth platform variants use
    it to model cache effects; calibrated variants leave it ``None``.
    """

    __slots__ = ("name", "speed", "cores", "cpu", "up", "down", "loopback",
                 "cluster", "efficiency_model", "sharing_model",
                 "resident_ranks", "available", "failed_at")

    def __init__(
        self,
        name: str,
        speed: float,
        cores: int = 1,
        efficiency_model: Optional[Callable[[str, float], float]] = None,
        sharing_model: Optional[Callable[[int], float]] = None,
    ) -> None:
        if speed <= 0:
            raise ValueError(f"host {name}: speed must be > 0")
        if cores < 1:
            raise ValueError(f"host {name}: cores must be >= 1")
        self.name = name
        self.speed = float(speed)
        self.cores = int(cores)
        self.cpu = Constraint(self.speed * self.cores, name=f"{name}.cpu")
        self.up: Optional[Link] = None
        self.down: Optional[Link] = None
        self.loopback: Optional[Link] = None
        self.cluster: Optional["Cluster"] = None
        self.efficiency_model = efficiency_model
        # Resource-sharing penalty when several ranks reside on this host
        # (cache and memory-bus pressure): maps resident-rank count to a
        # factor in (0, 1].  ``resident_ranks`` is set by the runtime at
        # deployment time.  This is what makes folded acquisitions slightly
        # *more* than x times slower in Table 2.
        self.sharing_model = sharing_model
        self.resident_ranks = 1
        # Fault-injection availability state (see repro.faults): a crashed
        # host kills its resident ranks and refuses further work.
        self.available = True
        self.failed_at: Optional[float] = None

    def _efficiency_factor(self, kind: str, flops: float) -> float:
        factor = 1.0
        if self.efficiency_model is not None:
            eff = self.efficiency_model(kind, flops)
            if not 0.0 < eff <= 1.0:
                raise ValueError(
                    f"efficiency model returned {eff!r} for kind={kind!r}; "
                    "must be in (0, 1]"
                )
            factor *= eff
        if self.sharing_model is not None and self.resident_ranks > 1:
            shared = self.sharing_model(self.resident_ranks)
            if not 0.0 < shared <= 1.0:
                raise ValueError(
                    f"sharing model returned {shared!r} for "
                    f"{self.resident_ranks} ranks; must be in (0, 1]"
                )
            factor *= shared
        return factor

    def effective_rate_bound(self, kind: str, flops: float) -> float:
        """Achieved flop rate of one burst running alone on one core,
        after efficiency and sharing models (``speed`` when neither is
        set — the calibrated-platform case)."""
        return self.speed * self._efficiency_factor(kind, flops)

    def work_inflation(self, kind: str, flops: float) -> float:
        """Factor by which a burst's *amount* must be inflated so that the
        efficiency/sharing losses apply at any CPU share.

        Efficiency must not be a mere rate cap: a cap stops binding as
        soon as co-scheduled tasks push the fair share below it, which
        would make folded ranks (Table 2) run at full nominal efficiency.
        Executing ``flops * inflation`` at nominal rates is exact in both
        regimes: alone, duration = flops / (speed * eff); folded n ways,
        duration = n * flops / (speed * eff).
        """
        return 1.0 / self._efficiency_factor(kind, flops)

    def private_links(self) -> List["Link"]:
        """The host's own links (up/down/loopback), those that die with it."""
        return [l for l in (self.up, self.down, self.loopback)
                if l is not None]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name}, {self.speed:g} flop/s x{self.cores})"


@dataclass
class Route:
    """An end-to-end path: crossed link constraints + total latency."""

    links: List[Constraint]
    latency: float


# Default loopback: fast enough to be negligible next to real links but
# non-zero so same-host messages still take time (SimGrid clusters do the
# same with their optional loopback link).
_LOOPBACK_BW = 6e9
_LOOPBACK_LAT = 1.5e-6


class Cluster:
    """A homogeneous cluster behind a backbone, optionally in cabinets."""

    def __init__(
        self,
        name: str,
        hosts: List[Host],
        link_bw: float,
        link_lat: float,
        backbone_bw: float,
        backbone_lat: float,
        cabinet_size: Optional[int] = None,
        cabinet_bw: Optional[float] = None,
        cabinet_lat: Optional[float] = None,
        backbone_sharing: str = "shared",
    ) -> None:
        if backbone_sharing not in ("shared", "fatpipe"):
            raise ValueError(
                f"backbone_sharing must be 'shared' or 'fatpipe', got "
                f"{backbone_sharing!r}"
            )
        self.name = name
        self.hosts = hosts
        self.backbone = Link(f"{name}.bb", backbone_bw, backbone_lat,
                             fatpipe=backbone_sharing == "fatpipe")
        self._cabinet_of: Dict[str, int] = {}
        self._cabinet_links: List[Tuple[Link, Link]] = []

        for host in hosts:
            host.cluster = self
            host.up = Link(f"{host.name}.up", link_bw, link_lat)
            host.down = Link(f"{host.name}.down", link_bw, link_lat)
            host.loopback = Link(f"{host.name}.lo", _LOOPBACK_BW, _LOOPBACK_LAT)

        if cabinet_size:
            cab_bw = cabinet_bw if cabinet_bw is not None else backbone_bw
            cab_lat = cabinet_lat if cabinet_lat is not None else backbone_lat
            n_cab = (len(hosts) + cabinet_size - 1) // cabinet_size
            for cab in range(n_cab):
                self._cabinet_links.append(
                    (
                        Link(f"{name}.cab{cab}.up", cab_bw, cab_lat),
                        Link(f"{name}.cab{cab}.down", cab_bw, cab_lat),
                    )
                )
            for idx, host in enumerate(hosts):
                self._cabinet_of[host.name] = idx // cabinet_size

    @property
    def has_cabinets(self) -> bool:
        return bool(self._cabinet_links)

    def iter_links(self):
        """Every link owned by this cluster (backbone, cabinets, hosts)."""
        yield self.backbone
        for up_link, down_link in self._cabinet_links:
            yield up_link
            yield down_link
        for host in self.hosts:
            yield from host.private_links()

    def cabinet_index(self, host: Host) -> Optional[int]:
        return self._cabinet_of.get(host.name)

    def internal_route(self, src: Host, dst: Host) -> Route:
        """Route between two hosts of this cluster."""
        if src is dst:
            return Route([src.loopback.constraint], src.loopback.latency)
        links = [src.up]
        if self.has_cabinets:
            cab_src = self._cabinet_of[src.name]
            cab_dst = self._cabinet_of[dst.name]
            if cab_src == cab_dst:
                # One shared cabinet switch: up link + down link only.
                links += [dst.down]
                return Route(
                    [l.constraint for l in links],
                    sum(l.latency for l in links),
                )
            up_link = self._cabinet_links[cab_src][0]
            down_link = self._cabinet_links[cab_dst][1]
            links += [up_link, self.backbone, down_link, dst.down]
        else:
            links += [self.backbone, dst.down]
        return Route([l.constraint for l in links], sum(l.latency for l in links))

    def exit_links(self, host: Host) -> Tuple[List[Link], float]:
        """Links from ``host`` to the cluster's gateway (for WAN routes)."""
        links = [host.up]
        if self.has_cabinets:
            links.append(self._cabinet_links[self._cabinet_of[host.name]][0])
        links.append(self.backbone)
        return links, sum(l.latency for l in links)

    def entry_links(self, host: Host) -> Tuple[List[Link], float]:
        """Links from the cluster's gateway down to ``host``."""
        links = [self.backbone]
        if self.has_cabinets:
            links.append(self._cabinet_links[self._cabinet_of[host.name]][1])
        links.append(host.down)
        return links, sum(l.latency for l in links)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cluster({self.name}, {len(self.hosts)} hosts)"


class Platform:
    """A set of clusters plus dedicated inter-cluster (WAN) links."""

    def __init__(self, name: str = "platform") -> None:
        self.name = name
        self.clusters: Dict[str, Cluster] = {}
        self.hosts: Dict[str, Host] = {}
        self._wan: Dict[Tuple[str, str], Link] = {}

    # -- construction ---------------------------------------------------
    def add_cluster(
        self,
        name: str,
        n_hosts: int,
        speed: float,
        link_bw: float,
        link_lat: float,
        backbone_bw: float,
        backbone_lat: float,
        cores: int = 1,
        prefix: Optional[str] = None,
        suffix: str = "",
        cabinet_size: Optional[int] = None,
        cabinet_bw: Optional[float] = None,
        cabinet_lat: Optional[float] = None,
        backbone_sharing: str = "shared",
        efficiency_model: Optional[Callable[[str, float], float]] = None,
        sharing_model: Optional[Callable[[int], float]] = None,
        first_index: int = 0,
    ) -> Cluster:
        if name in self.clusters:
            raise ValueError(f"duplicate cluster name {name!r}")
        prefix = prefix if prefix is not None else f"{name}-"
        hosts = [
            Host(f"{prefix}{i}{suffix}", speed, cores=cores,
                 efficiency_model=efficiency_model,
                 sharing_model=sharing_model)
            for i in range(first_index, first_index + n_hosts)
        ]
        cluster = Cluster(
            name, hosts, link_bw, link_lat, backbone_bw, backbone_lat,
            cabinet_size=cabinet_size, cabinet_bw=cabinet_bw,
            cabinet_lat=cabinet_lat, backbone_sharing=backbone_sharing,
        )
        self.clusters[name] = cluster
        for host in hosts:
            if host.name in self.hosts:
                raise ValueError(f"duplicate host name {host.name!r}")
            self.hosts[host.name] = host
        return cluster

    def connect(
        self,
        cluster_a: str,
        cluster_b: str,
        bandwidth: float,
        latency: float,
    ) -> Link:
        """Add a dedicated WAN link between two clusters (both directions)."""
        for cname in (cluster_a, cluster_b):
            if cname not in self.clusters:
                raise KeyError(f"unknown cluster {cname!r}")
        key = tuple(sorted((cluster_a, cluster_b)))
        link = Link(f"wan.{key[0]}-{key[1]}", bandwidth, latency)
        self._wan[key] = link
        return link

    # -- lookup -----------------------------------------------------------
    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise KeyError(
                f"unknown host {name!r} (platform has {len(self.hosts)} hosts)"
            ) from None

    def host_list(self) -> List[Host]:
        """All hosts, cluster by cluster, in index order."""
        out: List[Host] = []
        for cluster in self.clusters.values():
            out.extend(cluster.hosts)
        return out

    def iter_links(self):
        """Every link of the platform (cluster-owned plus WAN)."""
        for cluster in self.clusters.values():
            yield from cluster.iter_links()
        yield from self._wan.values()

    def link(self, name: str) -> Link:
        """Look up a link by name (fault plans address links this way)."""
        for link in self.iter_links():
            if link.name == name:
                return link
        raise KeyError(
            f"unknown link {name!r} (platform has "
            f"{sum(1 for _ in self.iter_links())} links)"
        )

    # -- routing ----------------------------------------------------------
    def route(self, src: Host, dst: Host) -> Route:
        if src.cluster is None or dst.cluster is None:
            raise ValueError("hosts must belong to a cluster to be routed")
        if src.cluster is dst.cluster:
            return src.cluster.internal_route(src, dst)
        key = tuple(sorted((src.cluster.name, dst.cluster.name)))
        wan = self._wan.get(key)
        if wan is None:
            raise ValueError(
                f"no WAN link between clusters {key[0]!r} and {key[1]!r}"
            )
        exit_links, exit_lat = src.cluster.exit_links(src)
        entry_links, entry_lat = dst.cluster.entry_links(dst)
        links = exit_links + [wan] + entry_links
        return Route(
            [l.constraint for l in links],
            exit_lat + wan.latency + entry_lat,
        )
