"""Replay observability: cheap, always-consistent counters.

Telemetry is *opt-in*: the kernel objects carry a ``metrics`` attribute
that is ``None`` by default, and every instrumentation site is guarded by
a single ``is not None`` test — replays with metrics disabled execute the
exact same arithmetic as before this module existed.  With metrics
enabled the design keeps the per-event cost to a few local-variable
increments, which holds the Fig. 9 replay-time overhead under the 5%
budget (``benchmarks/bench_fig9_replay_time.py::test_fig9_metrics_overhead``):

* the engine counts events unconditionally in ``run()``-local integers
  (branchless — the loop executes identical bytecode either way) and
  flushes them into :class:`EngineMetrics` once, when the loop exits;
* the communication layer derives almost everything (transfers, bytes,
  cache hit rates) from counters and cache sizes the kernel maintains
  anyway, via begin/finish snapshots — only the eager count and the
  match-queue high-water marks are tracked live;
* the replayer aggregates into a per-(rank, action-name) *cell*
  ``[handler, count, volume, time, vol_idx]`` that doubles as the
  dispatch entry, so the same dict lookup that finds the action's
  handler also yields its counters.

Three counter groups mirror the three layers of the replay pipeline:

* :class:`EngineMetrics` — the discrete-event loop: events popped, stale
  heap entries skipped, heap compactions, sharing-component sizes, and
  max-min filling iterations.
* :class:`CommMetrics` — the matching/transfer layer: transfers and
  bytes split by eager vs. rendezvous protocol, match-queue depths, and
  route/model-factor cache hit rates.
* :class:`ReplayMetrics` — the action layer: per-rank and per-action-type
  counts and volumes, plus simulated-time attribution (compute vs. comm
  vs. wait).

:class:`Telemetry` bundles one of each and renders the JSON-friendly
document surfaced as ``ReplayResult.metrics`` and by
``repro-replay --metrics``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["EngineMetrics", "CommMetrics", "ReplayMetrics", "FaultMetrics",
           "Telemetry", "ACTION_CATEGORIES", "action_category"]

# Simulated-time attribution buckets for the standard action set; any
# action not listed here (e.g. user-registered ones) is charged to
# "other".  ``wait`` is pure waiting; collectives and point-to-point are
# communication (their embedded reduction flops are negligible next to
# the transfers they synchronise on).
ACTION_CATEGORIES: Dict[str, str] = {
    "compute": "compute",
    "wait": "wait",
    "send": "comm", "Isend": "comm", "recv": "comm", "Irecv": "comm",
    "bcast": "comm", "reduce": "comm", "allReduce": "comm",
    "allToAll": "comm", "allToAllv": "comm", "allGather": "comm",
    "reduceScatter": "comm",
    "barrier": "comm",
    "comm_size": "other",
}

_CATEGORY_KEYS = ("compute", "comm", "wait", "other")

# Which token of a trace line carries the action's volume (flops for
# compute, bytes otherwise).  Token 0 is the process id, token 1 the
# action keyword; -1 means the action has no volume.
_VOLUME_TOKEN: Dict[str, int] = {
    "compute": 2,
    "send": 3, "Isend": 3, "recv": 3, "Irecv": 3,
    "bcast": 2, "reduce": 2, "allReduce": 2,
    # For allToAllv token 2 is the row total (the nominal volume);
    # reduceScatter meters vcomm, matching the allReduce convention.
    "allToAll": 2, "allToAllv": 2, "allGather": 2, "reduceScatter": 2,
}


def action_category(name: str) -> str:
    """The attribution bucket of a trace action keyword."""
    return ACTION_CATEGORIES.get(name, "other")


class EngineMetrics:
    """Counters for the lazy discrete-event loop.

    The engine's main loop accumulates into plain locals and adds them
    here when it exits (including on deadlock), so a mid-run snapshot of
    this object only reflects completed ``run()`` calls.
    """

    __slots__ = ("events_popped", "stale_skipped", "compactions",
                 "fastpath_recomputes", "generic_recomputes",
                 "component_acts", "max_component_acts",
                 "maxmin_iterations", "vectorized_recomputes",
                 "idle_advances", "incremental_patches", "patch_fallbacks",
                 "full_resolves", "calendar_rebuilds", "level_hist")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.events_popped = 0        # valid completion events processed
        self.stale_skipped = 0        # lazy-deleted calendar entries dropped
        self.compactions = 0          # calendar compaction sweeps
        self.fastpath_recomputes = 0  # single-constraint fast path taken
        self.generic_recomputes = 0   # BFS + progressive-filling path
        self.component_acts = 0       # total activities settled+re-rated
        self.max_component_acts = 0   # largest sharing component seen
        self.maxmin_iterations = 0    # filling levels across all fillings
        self.vectorized_recomputes = 0  # fillings done by the NumPy path
        self.idle_advances = 0        # solo activities advanced with no
        #                               recompute at all (fast path)
        self.incremental_patches = 0  # certified incremental patches applied
        self.patch_fallbacks = 0      # patch attempts that fell back to a
        #                               full solve (loud, never silent)
        self.full_resolves = 0        # full progressive fillings of a group
        self.calendar_rebuilds = 0    # event-calendar compaction sweeps
        # Per-solve filling-level histogram {levels: solves} over the
        # generic solves (scalar, vectorized and certified patches; the
        # single-constraint fast path is not a filling and is excluded).
        self.level_hist: Dict[int, int] = {}

    def as_dict(self) -> Dict[str, float]:
        fast = self.fastpath_recomputes
        generic = self.generic_recomputes
        recomputes = fast + generic
        return {
            "events_popped": self.events_popped,
            "stale_heap_entries_skipped": self.stale_skipped,
            "heap_compactions": self.compactions,
            "sharing_recomputes": recomputes,
            "fastpath_recomputes": fast,
            "component_activities_total": self.component_acts,
            "component_activities_max": self.max_component_acts,
            "component_activities_mean": (
                self.component_acts / recomputes if recomputes else 0.0
            ),
            # The generic path runs one progressive filling per recompute.
            "maxmin_calls": generic,
            "maxmin_iterations": self.maxmin_iterations,
            # How many of those fillings ran on the vectorized (NumPy)
            # kernel instead of the pure-Python oracle — the component-size
            # cutoff in action (docs/replay-performance.md).
            "vectorized_recomputes": self.vectorized_recomputes,
            # Solo activities started/completed on an otherwise-idle
            # constraint without any sharing recompute — the compiled
            # replay's fused-compute fast path.
            "idle_advances": self.idle_advances,
            # Incremental-solver provenance: certified patches applied,
            # patch attempts that (loudly) fell back to a full solve,
            # and full group solves.  patches + fallbacks bounds the
            # attempt count; full_resolves = fallbacks + never-attempted.
            "incremental_patches": self.incremental_patches,
            "patch_fallbacks": self.patch_fallbacks,
            "full_resolves": self.full_resolves,
            # Event-calendar compaction sweeps (same value as the
            # legacy "heap_compactions" key above).
            "calendar_rebuilds": self.calendar_rebuilds,
            # {filling levels -> solve count}, string keys for JSON;
            # shard/batch merges sum these per-bucket.
            "filling_level_histogram": {
                str(k): v for k, v in sorted(self.level_hist.items())
            },
        }


class CommMetrics:
    """Counters for the matching and eager/rendezvous transfer layer.

    Transfer and cache totals are not counted per event: the kernel
    already maintains ``n_transfers``/``bytes_transferred`` and its
    route/factor caches, so :meth:`begin`/:meth:`finish` snapshot those
    (``CommSystem.cache_stats()``) and take deltas.  Cache *hits* follow
    from the identity one-route-lookup-and-one-factor-lookup-per-transfer:
    ``hits = transfers - misses``.  Only the eager-transfer count and the
    match-queue high-water marks are maintained live (one guarded update
    per posting).
    """

    __slots__ = ("transfers", "bytes", "eager_transfers",
                 "max_pending_sends", "max_pending_recvs",
                 "route_cache_misses", "factor_cache_misses", "_snapshot")

    def __init__(self) -> None:
        self._snapshot: Optional[Dict[str, float]] = None
        self.begin(None)

    def begin(self, snapshot: Optional[Dict[str, float]]) -> None:
        """Start a measurement window at the given cache_stats snapshot."""
        self.transfers = 0
        self.bytes = 0.0
        self.eager_transfers = 0
        self.max_pending_sends = 0   # deepest unmatched-send queue
        self.max_pending_recvs = 0   # deepest unmatched-recv queue
        self.route_cache_misses = 0
        self.factor_cache_misses = 0
        self._snapshot = snapshot

    def finish(self, snapshot: Dict[str, float]) -> None:
        """Close the window: totals are deltas against :meth:`begin`."""
        base = self._snapshot or {
            "n_transfers": 0, "bytes_transferred": 0.0,
            "route_cache_entries": 0, "factor_cache_entries": 0,
        }
        self.transfers = snapshot["n_transfers"] - base["n_transfers"]
        self.bytes = (snapshot["bytes_transferred"]
                      - base["bytes_transferred"])
        self.route_cache_misses = (snapshot["route_cache_entries"]
                                   - base["route_cache_entries"])
        self.factor_cache_misses = (snapshot["factor_cache_entries"]
                                    - base["factor_cache_entries"])

    @staticmethod
    def _rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        transfers = self.transfers
        route_hits = transfers - self.route_cache_misses
        factor_hits = transfers - self.factor_cache_misses
        return {
            "transfers": transfers,
            "bytes": self.bytes,
            "eager_transfers": self.eager_transfers,
            "rendezvous_transfers": transfers - self.eager_transfers,
            "max_pending_sends": self.max_pending_sends,
            "max_pending_recvs": self.max_pending_recvs,
            "route_cache_hits": route_hits,
            "route_cache_misses": self.route_cache_misses,
            "route_cache_hit_rate": self._rate(route_hits,
                                               self.route_cache_misses),
            "factor_cache_hits": factor_hits,
            "factor_cache_misses": self.factor_cache_misses,
            "factor_cache_hit_rate": self._rate(factor_hits,
                                                self.factor_cache_misses),
        }


class ReplayMetrics:
    """Per-rank and per-action-type counters for the replayer.

    The replay loop charges each action through a mutable cell
    ``[handler, count, volume, time, vol_idx]`` which doubles as the
    dispatch entry: the *same* per-rank dict lookup that finds the
    action's handler yields its counters, so with metrics enabled each
    action touches exactly one extra object.  Slot 0 is owned by the
    replayer (the bound handler); ``vol_idx`` locates the volume token
    in the trace line (-1: the action has no volume); per-category time
    splits are derived from the cells at :meth:`as_dict` time via
    :data:`ACTION_CATEGORIES`.
    """

    __slots__ = ("n_ranks", "rank_cells", "ops_compiled", "computes_fused",
                 "phase_advances", "shard_merges")

    def __init__(self) -> None:
        self.n_ranks = 0
        # Per rank: {action name: [handler, count, volume, time, vol_idx]}.
        self.rank_cells: List[Dict[str, list]] = []
        # Compiled-driver provenance: how many compiled ops drove this
        # replay (0: the token path ran) and how many source compute
        # actions were absorbed into fused ops.
        self.ops_compiled = 0
        self.computes_fused = 0
        # Phase-batched/sharded driver provenance: how many synchronizing
        # collectives were advanced as one batched dependency graph
        # (0: every collective ran through the per-rank generator
        # protocol) and how many cross-shard window merges the parallel
        # driver performed (0: single-process replay).
        self.phase_advances = 0
        self.shard_merges = 0

    def reset(self, n_ranks: int) -> None:
        self.n_ranks = n_ranks
        self.rank_cells = [{} for _ in range(n_ranks)]
        self.ops_compiled = 0
        self.computes_fused = 0
        self.phase_advances = 0
        self.shard_merges = 0

    def new_cell(self, rank: int, name: str) -> list:
        """Build (and register) the counting cell for one (rank, action).
        The caller fills slot 0 with whatever it dispatches on."""
        cell = [None, 0, 0.0, 0.0, _VOLUME_TOKEN.get(name, -1)]
        self.rank_cells[rank][name] = cell
        return cell

    @property
    def total_actions(self) -> int:
        return sum(cell[1] for cells in self.rank_cells
                   for cell in cells.values())

    def as_dict(self) -> Dict[str, object]:
        action_counts: Dict[str, int] = {}
        action_volumes: Dict[str, float] = {}
        time_totals = {cat: 0.0 for cat in _CATEGORY_KEYS}
        per_rank = []
        for rank in range(self.n_ranks):
            cells = self.rank_cells[rank]
            rank_counts = {}
            times = {cat: 0.0 for cat in _CATEGORY_KEYS}
            for name, (_h, count, volume, seconds, vol_idx) in cells.items():
                rank_counts[name] = count
                action_counts[name] = action_counts.get(name, 0) + count
                if vol_idx >= 0:
                    action_volumes[name] = (action_volumes.get(name, 0.0)
                                            + volume)
                times[ACTION_CATEGORIES.get(name, "other")] += seconds
            for cat, value in times.items():
                time_totals[cat] += value
            per_rank.append({
                "rank": rank,
                "actions": rank_counts,
                "n_actions": sum(rank_counts.values()),
                "time": times,
            })
        return {
            "n_ranks": self.n_ranks,
            "n_actions": sum(action_counts.values()),
            "actions_by_type": action_counts,
            "volumes_by_type": action_volumes,
            "time_by_category": time_totals,
            "ops_compiled": self.ops_compiled,
            "computes_fused": self.computes_fused,
            "phase_advances": self.phase_advances,
            "shard_merges": self.shard_merges,
            "per_rank": per_rank,
        }


class FaultMetrics:
    """Counters for the fault-injection layer (see :mod:`repro.faults`).

    All zero in fault-free runs — the injector, which is the only writer,
    simply never exists then.
    """

    __slots__ = ("events_applied", "host_crashes", "link_downs", "link_ups",
                 "link_degrades", "activities_failed", "requests_failed",
                 "processes_killed", "queue_entries_purged")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.events_applied = 0        # fault-plan events executed
        self.host_crashes = 0          # hosts taken down
        self.link_downs = 0            # links taken down
        self.link_ups = 0              # links restored (LinkDown t_up)
        self.link_degrades = 0         # capacity degradations applied
        self.activities_failed = 0     # kernel activities moved to FAILED
        self.requests_failed = 0       # comm requests failed (both sides)
        self.processes_killed = 0      # rank processes killed outright
        self.queue_entries_purged = 0  # match-queue entries of dead ranks

    def as_dict(self) -> Dict[str, int]:
        return {
            "events_applied": self.events_applied,
            "host_crashes": self.host_crashes,
            "link_downs": self.link_downs,
            "link_ups": self.link_ups,
            "link_degrades": self.link_degrades,
            "activities_failed": self.activities_failed,
            "requests_failed": self.requests_failed,
            "processes_killed": self.processes_killed,
            "queue_entries_purged": self.queue_entries_purged,
        }


class Telemetry:
    """One replay's worth of counters, across all layers."""

    __slots__ = ("engine", "comm", "replay", "faults")

    def __init__(self) -> None:
        self.engine = EngineMetrics()
        self.comm = CommMetrics()
        self.replay = ReplayMetrics()
        self.faults = FaultMetrics()

    def as_dict(self) -> Dict[str, object]:
        replay = self.replay.as_dict()
        per_rank = replay.pop("per_rank")
        return {
            "engine": self.engine.as_dict(),
            "comm": self.comm.as_dict(),
            "replay": replay,
            "per_rank": per_rank,
            "faults": self.faults.as_dict(),
        }
