"""Lazy discrete-event fluid simulation engine.

Simulated processes are Python generators.  A process blocks by yielding
either a :class:`~repro.simkernel.activity.Waitable` (resume when it
completes) or a :class:`WaitAny` over several waitables (resume when the
first completes; the completed one is sent back into the generator).

Resource sharing is *lazily* maintained, as in SimGrid's kernel: every
constraint records which activities currently use it, and when the
activity mix changes, only the affected *sharing component* — activities
transitively connected to the change through shared constraints — is
settled (progress accrued at the old rate) and re-rated (max-min fair
share recomputed).  Predicted completion instants live in an
array-backed event calendar (:class:`_Calendar`) with epoch-validated
lazy deletion and in-place re-arming.  The cost of an event is
proportional to the size of its component, not to the number of
activities in flight — which is what lets thousand-rank replays run in
reasonable time.

Re-rates of array-backed groups additionally try an *incremental*
certified patch (:func:`repro.simkernel.lmm.patch_solve`) before paying
for a full progressive filling: each group tracks the constraint
columns dirtied since its last solve, and when the patch certificate
holds only the affected cone is re-filled.  Fallbacks to the full
solve are counted (``patch_fallbacks``), never silent.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Callable, Generator, List, Optional, Sequence, Set, Tuple,
)

import numpy as np

from .activity import (
    Activity, ActivityFailed, CommActivity, ExecActivity, Timer, Waitable,
)
from .lmm import (
    Constraint, LMM_MODES, VECTOR_THRESHOLD, fill_vectorized, native_fill,
    patch_solve,
)
from .telemetry import EngineMetrics

__all__ = ["Engine", "Process", "WaitAny", "DeadlockError"]

INF = float("inf")

#: Minimum filling-level count of a group's last *full* solve before the
#: incremental patch is attempted on it.  A patch attempt costs a
#: near-constant handful of O(memberships) passes (usage accumulation,
#: cone BFS, certificate) plus a small sub-fill, while the full filling
#: it replaces costs one such pass per level — so patching a group whose
#: solves finish in one or two levels can only lose (measured: ~15-20%
#: regression on 1-D chain traffic), while multi-level contention waves
#: win multiples.  The last full solve's level count is the engine's
#: cost estimate for the next one.
_PATCH_MIN_LEVELS = 3

#: Consecutive certified patches after which a group is forced through
#: one full solve anyway.  Only full solves refresh ``last_levels``, so
#: a group that patches forever would keep an arbitrarily stale cost
#: estimate: a persistent 1-D chain group that once took a 3-level
#: solve would stay "worth patching" for the rest of the run even after
#: its solves collapsed to one level.  The periodic probe re-measures
#: the true full-solve cost for ~1.5% overhead; the closed-gate
#: direction needs no probe because every solve is then a full one.
_PATCH_PROBE_EVERY = 64


class DeadlockError(RuntimeError):
    """Raised when live processes remain but nothing can make progress.

    Besides the human-readable message, carries the structured state the
    diagnostics layers need: ``blocked`` (names of the stuck processes)
    and ``details`` (a dict filled in by the engine's ``deadlock_hook``
    — the replayer reports each rank's current action, pending Irecvs,
    and the unmatched (src, dst, tag) communication counts there).
    """

    def __init__(self, message: str, blocked: Sequence[str] = (),
                 details: Optional[dict] = None) -> None:
        super().__init__(message)
        self.blocked = list(blocked)
        self.details = details if details is not None else {}


class WaitAny:
    """Yielded by a process to block until any of ``waitables`` completes."""

    __slots__ = ("waitables",)

    def __init__(self, waitables: Sequence[Waitable]) -> None:
        self.waitables = list(waitables)
        if not self.waitables:
            raise ValueError("WaitAny needs at least one waitable")


class _Calendar:
    """Array-backed completion-event calendar (the old heap-of-tuples).

    Entries live in parallel NumPy arrays — ``times`` / ``seqs`` /
    ``epochs`` — plus a Python ``acts`` list, indexed by *slot*.  Each
    activity owns at most one slot (``Activity.cal_slot``), so re-arming
    an already-armed activity is three in-place array writes instead of
    a push plus a lazily-invalidated leftover.  Freed slots go to a
    free list; ``times`` is ``inf`` there, so the pop scan can treat
    the whole ``[0, hi)`` prefix uniformly.

    Ordering is exactly the old heap's: earliest time first, FIFO by a
    monotone sequence number among simultaneous events.  Validity is
    exactly the old heap's too: an entry fires only if its recorded
    epoch still matches the activity's (and the activity is not done);
    stale entries found on the way are released and counted in
    ``stale``.  Pop is an ``argmin`` over the slot prefix — with the
    engine's min-arming (one live event per sharing group) the prefix
    stays at O(components), which is why the scan beats heap churn.
    """

    __slots__ = ("times", "seqs", "epochs", "acts", "hi", "free",
                 "seq", "stale")

    def __init__(self) -> None:
        cap = 256
        self.times = np.full(cap, INF)
        self.seqs = np.zeros(cap, dtype=np.int64)
        self.epochs = np.zeros(cap, dtype=np.int64)
        self.acts: List[Optional[Activity]] = [None] * cap
        self.hi = 0                 # slots [0, hi) are in use or freed
        self.free: List[int] = []
        self.seq = 0                # FIFO tie-break, monotone
        self.stale = 0              # invalidated entries discarded

    def __len__(self) -> int:
        """Occupied slots (live + not-yet-released stale entries)."""
        return self.hi - len(self.free)

    def push(self, time_: float, act: Activity) -> None:
        self.seq += 1
        slot = act.cal_slot
        if 0 <= slot < self.hi and self.acts[slot] is act:
            # In-place re-arm: overwrite the slot this activity already
            # owns (whether its entry was still valid or stale).
            self.times[slot] = time_
            self.seqs[slot] = self.seq
            self.epochs[slot] = act.epoch
            return
        if self.free:
            slot = self.free.pop()
        else:
            slot = self.hi
            if slot >= self.times.shape[0]:
                self._grow()
            self.hi = slot + 1
        self.times[slot] = time_
        self.seqs[slot] = self.seq
        self.epochs[slot] = act.epoch
        self.acts[slot] = act
        act.cal_slot = slot

    def _grow(self) -> None:
        cap = 2 * self.times.shape[0]
        for name in ("times", "seqs", "epochs"):
            old = getattr(self, name)
            new = np.empty(cap, dtype=old.dtype)
            new[:old.shape[0]] = old
            setattr(self, name, new)
        self.times[self.hi:] = INF
        self.acts.extend([None] * (cap - len(self.acts)))

    def _release(self, slot: int) -> None:
        act = self.acts[slot]
        self.acts[slot] = None
        self.times[slot] = INF
        if act is not None and act.cal_slot == slot:
            act.cal_slot = -1
        self.free.append(slot)

    def pop(self) -> Optional[Tuple[float, Activity]]:
        """The earliest valid ``(time, activity)`` event, or ``None``
        when no valid entry remains (the engine's deadlock signal)."""
        times = self.times
        seqs = self.seqs
        epochs = self.epochs
        acts = self.acts
        while True:
            hi = self.hi
            if hi == 0:
                return None
            view = times[:hi]
            k = int(view.argmin())
            t = float(view[k])
            if t == INF:
                return None
            ties = np.flatnonzero(view == t)
            if ties.shape[0] > 1:
                k = int(ties[seqs[ties].argmin()])
            act = acts[k]
            if act.done or epochs[k] != act.epoch:
                self.stale += 1
                self._release(k)
                continue
            self._release(k)
            return t, act

    def compact(self) -> None:
        """Drop every stale entry and repack the survivors densely.

        Survivors keep their ``(time, seq)`` keys, so pop order is
        untouched; their slots change, so ``cal_slot`` is rewritten
        (dangling ``cal_slot`` values on evicted activities are safe —
        :meth:`push` verifies slot ownership before reusing one).
        """
        hi = self.hi
        acts = self.acts
        epochs = self.epochs
        live = [s for s in range(hi)
                if acts[s] is not None
                and not acts[s].done and epochs[s] == acts[s].epoch]
        self.stale += (hi - len(self.free)) - len(live)
        n = len(live)
        if n:
            idx = np.asarray(live, dtype=np.intp)
            self.times[:n] = self.times[idx]
            self.seqs[:n] = self.seqs[idx]
            self.epochs[:n] = self.epochs[idx]
            survivors = [acts[s] for s in live]
            for i, a in enumerate(survivors):
                acts[i] = a
                a.cal_slot = i
        for s in range(n, hi):
            acts[s] = None
        self.times[n:hi] = INF
        self.hi = n
        self.free = []


class _Group:
    """A sharing group: an engine-maintained union of sharing components.

    Every constraint transitively connected to another through a
    multi-resource activity points at the same group, so re-rating needs
    no graph walk — the group *is* the (super)component.  Groups only
    ever merge, never split: a union of disjoint components is still a
    correct max-min subproblem (progressive filling of a block-diagonal
    system yields each block's independent solution), and monotone
    merging is what keeps maintenance O(1) per membership change.

    Large groups additionally go *array-backed* (``vectorized``): the
    sharing state (remaining / rate / settled / bound) and the COO
    incidence live in persistent NumPy arrays maintained incrementally
    by swap-remove slot management, so a re-rate performs no
    per-activity Python work at all.  While array-backed, the arrays —
    not the activities' attributes — are authoritative for that state;
    the attributes are restored on :meth:`Engine._devectorize`.
    """

    __slots__ = (
        "cons", "acts", "vectorized",
        # Array-backed state (meaningful when vectorized is True):
        "acts_list", "row", "mem_of", "col", "n", "m", "ncols",
        "rem", "rate", "settled", "bnd", "mem_var", "mem_cons", "caps",
        "loadv", "work", "armed",
        # Incremental-patch state (array-backed groups only): the
        # constraint columns dirtied since the last solve, whether the
        # rate array holds a certified previous solution the incremental
        # patch may start from, and how many filling levels the last
        # full solve took (the cost a patch would save — patching is
        # only attempted when that cost clears _PATCH_MIN_LEVELS).
        "seeds", "inc_ok", "last_levels", "patch_streak",
    )

    def __init__(self) -> None:
        self.cons: List[Constraint] = []
        self.acts: Set[Activity] = set()
        self.vectorized = False
        self.armed: Optional[Activity] = None
        self.seeds: Optional[Set[int]] = None
        self.inc_ok = False
        self.last_levels = 0
        self.patch_streak = 0


class Process:
    """A simulated process: a generator driven by the engine.

    ``daemon`` processes (the fault injector) never count toward the
    engine's liveness: the run ends when every *non-daemon* process is
    done, and daemons are excluded from deadlock reports.  ``failure``
    holds the :class:`ActivityFailed` that killed the process, if any.
    """

    __slots__ = ("name", "generator", "alive", "_wait_token", "result",
                 "daemon", "failure")

    def __init__(self, name: str, generator: Generator,
                 daemon: bool = False) -> None:
        self.name = name
        self.generator = generator
        self.alive = True
        self._wait_token = 0  # invalidates stale WaitAny registrations
        self.result = None
        self.daemon = daemon
        self.failure: Optional[ActivityFailed] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return f"Process({self.name}, {state})"


class _FailureWake:
    """Queued wake-up that throws instead of sending (fault propagation)."""

    __slots__ = ("error",)

    def __init__(self, error: ActivityFailed) -> None:
        self.error = error


class Engine:
    """Owns the simulated clock, the processes, and the active activities."""

    def __init__(
        self,
        metrics: Optional[EngineMetrics] = None,
        lmm_mode: str = "auto",
        vector_threshold: int = VECTOR_THRESHOLD,
        incremental: bool = True,
    ) -> None:
        if lmm_mode not in LMM_MODES:
            raise ValueError(
                f"unknown lmm_mode {lmm_mode!r}; use one of {LMM_MODES}"
            )
        # Which max-min implementation re-rates sharing components:
        # "auto" uses the NumPy filling for components of at least
        # ``vector_threshold`` activities and the pure-Python one below it
        # (small components are faster without array-building overhead);
        # "reference"/"vectorized" force one path (oracle tests, benches);
        # "native" runs array-backed groups through the optional Numba
        # kernel and fails here, loudly, when the extra is missing —
        # never mid-run, and never on any other mode.
        if lmm_mode == "native":
            from . import _native
            if not _native.available():
                raise RuntimeError(_native.unavailable_reason())
            self._fill = native_fill
        else:
            self._fill = fill_vectorized
        self.lmm_mode = lmm_mode
        self.vector_threshold = int(vector_threshold)
        # Incremental certified re-solve of array-backed groups
        # (lmm.patch_solve).  On by default; the off switch exists for
        # A/B benchmarking and for bisecting a suspected patch bug —
        # correctness never depends on it either way (every certified
        # patch equals the full solve by construction).
        self.incremental = bool(incremental)
        self.now = 0.0
        self._processes: List[Process] = []
        self._ready: deque = deque()
        self._live_count = 0
        self._calendar = _Calendar()
        self._dirty: Set[Constraint] = set()
        # Calendar-compaction watermark: rebuild when the occupied-slot
        # prefix doubles past the live-entry count observed at the
        # previous compaction.
        self._heap_floor = 4096
        # Progressive-filling levels, accumulated unconditionally (one
        # integer add per filling) and windowed into the metrics by run().
        self._maxmin_iters = 0
        # Count of recomputes settled by the vectorized filling (same
        # accumulate-then-window pattern).
        self._vector_fillings = 0
        # Solo activities started or completed on an otherwise-idle
        # constraint without any sharing recompute (same pattern).
        self._idle_advances = 0
        # Incremental-solver provenance (same pattern): certified
        # patches applied, patch attempts that fell back to a full
        # solve, full group solves, calendar compaction sweeps, and the
        # per-solve filling-level histogram {levels: solves}.
        self._inc_patches = 0
        self._patch_fallbacks = 0
        self._full_resolves = 0
        self._calendar_rebuilds = 0
        self._level_hist: dict = {}
        # Optional telemetry; the counters themselves are loop-locals or
        # plain integer accumulators, so enabling metrics never changes
        # the arithmetic the hot paths execute.
        self.metrics = metrics
        # Optional diagnostics callback, called with the blocked processes
        # when a deadlock is detected; returns (extra message, details).
        self.deadlock_hook: Optional[
            Callable[[List[Process]], Tuple[str, dict]]
        ] = None
        # Optional fault-propagation callback, called as (proc, exc) when
        # a process dies of an ActivityFailed (see repro.faults).
        self.process_failed_hook: Optional[
            Callable[[Process, ActivityFailed], None]
        ] = None

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------
    def add_process(self, name: str, generator: Generator,
                    daemon: bool = False) -> Process:
        """Register a generator as a simulated process, ready to run.

        ``daemon`` processes do not keep the simulation alive (see
        :class:`Process`); the fault injector is one.
        """
        proc = Process(name, generator, daemon=daemon)
        self._processes.append(proc)
        if not daemon:
            self._live_count += 1
        self._ready.append((proc, None))
        return proc

    def kill_process(self, proc: Process, reason: str = "") -> bool:
        """Terminate a process from outside (a host crash killing its
        resident ranks).  Runs the generator's cleanup via ``close()``;
        returns False if the process was already dead."""
        if not proc.alive:
            return False
        proc.alive = False
        proc._wait_token += 1  # drop any registered waits
        proc.generator.close()
        exc = ActivityFailed(None, reason)
        proc.failure = exc
        if not proc.daemon:
            self._live_count -= 1
        hook = self.process_failed_hook
        if hook is not None:
            hook(proc, exc)
        return True

    # ------------------------------------------------------------------
    # Operations processes can yield (built here, waited on by yielding)
    # ------------------------------------------------------------------
    def exec_activity(
        self,
        constraint: Constraint,
        amount: float,
        bound: Optional[float] = None,
        name: str = "",
    ) -> ExecActivity:
        act = ExecActivity(constraint, amount, bound=bound, name=name)
        self.start_activity(act)
        return act

    def comm_activity(
        self,
        links,
        size: float,
        latency: float,
        rate_factor: float = 1.0,
        bound: Optional[float] = None,
        name: str = "",
    ) -> CommActivity:
        act = CommActivity(
            list(links), size, latency, rate_factor=rate_factor,
            bound=bound, name=name,
        )
        self.start_activity(act)
        return act

    def timer(self, duration: float, name: str = "") -> Timer:
        act = Timer(duration, name=name)
        self.start_activity(act)
        return act

    def start_activity(self, act: Activity) -> Activity:
        """Hand an already-built activity to the lazy fluid loop."""
        act.start_time = self.now
        self._enter_phase(act, act.begin(self.now))
        return act

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run until all processes finish (or ``until`` seconds of simulated
        time elapse).  Returns the final simulated time."""
        cal = self._calendar
        metrics = self.metrics
        # Telemetry accumulates unconditionally in loop-locals — a few
        # integer increments per event, immeasurable next to the event
        # processing itself, and branchless so the loop executes the
        # exact same bytecode whether metrics are on or off.  Only the
        # flush (in the finally below, so it also runs on deadlock) is
        # guarded.
        popped = fast = generic = comp_total = comp_max = 0
        stale0 = cal.stale
        maxmin_iters0 = self._maxmin_iters
        vector_fillings0 = self._vector_fillings
        idle_advances0 = self._idle_advances
        inc_patches0 = self._inc_patches
        patch_fallbacks0 = self._patch_fallbacks
        full_resolves0 = self._full_resolves
        rebuilds0 = self._calendar_rebuilds
        try:
            while True:
                self._run_ready()
                if self._dirty:
                    size = self._recompute_dirty()
                    if size:
                        if size < 0:  # single-constraint fast path
                            fast += 1
                            size = -size
                        else:
                            generic += 1
                        comp_total += size
                        if size > comp_max:
                            comp_max = size
                    # A recompute may complete drained activities inline,
                    # waking processes and dirtying constraints; settle
                    # all of that at the current instant before touching
                    # the event heap.
                    continue
                if self._live_count == 0:
                    return self.now
                # Pop the next valid completion event.
                item = cal.pop()
                if item is None:
                    raise self._deadlock()
                time_, act = item
                popped += 1
                if until is not None and time_ > until:
                    # Re-arm the event and pause the clock at the horizon.
                    cal.push(time_, act)
                    self.now = until
                    return self.now
                if time_ > self.now:
                    self.now = time_
                # Idle-advance fast path (completion side).  The dirty
                # set is empty here (the recompute branch above always
                # restarts the loop), so when the completing activity is
                # the *only* user of its single, ungrouped-with-anything
                # constraint — the compiled replay's fused compute burst
                # — no other activity's rate can change: unregister it
                # directly and skip dirtying the constraint, which would
                # only buy a guaranteed-no-op recompute pass.
                constraints = act.constraints
                if act.registered and len(constraints) == 1:
                    cons = constraints[0]
                    group = cons.group
                    if (not group.vectorized and len(group.cons) == 1
                            and len(group.acts) == 1
                            and len(cons.users) == 1):
                        self._idle_advances += 1
                        act.remaining = 0.0
                        group.acts.discard(act)
                        cons.users.discard(act)
                        act.registered = False
                        self._enter_phase(act, act.on_phase_end(self.now))
                        self._maybe_compact()
                        continue
                self._end_phase(act)
                self._maybe_compact()
        finally:
            hist, self._level_hist = self._level_hist, {}
            if metrics is not None:
                metrics.events_popped += popped
                metrics.stale_skipped += cal.stale - stale0
                metrics.fastpath_recomputes += fast
                metrics.generic_recomputes += generic
                metrics.component_acts += comp_total
                metrics.maxmin_iterations += (self._maxmin_iters
                                              - maxmin_iters0)
                metrics.vectorized_recomputes += (self._vector_fillings
                                                  - vector_fillings0)
                metrics.idle_advances += (self._idle_advances
                                          - idle_advances0)
                metrics.incremental_patches += (self._inc_patches
                                                - inc_patches0)
                metrics.patch_fallbacks += (self._patch_fallbacks
                                            - patch_fallbacks0)
                metrics.full_resolves += (self._full_resolves
                                          - full_resolves0)
                metrics.calendar_rebuilds += (self._calendar_rebuilds
                                              - rebuilds0)
                mh = metrics.level_hist
                for levels, count in hist.items():
                    mh[levels] = mh.get(levels, 0) + count
                if comp_max > metrics.max_component_acts:
                    metrics.max_component_acts = comp_max

    def _deadlock(self) -> DeadlockError:
        """Build the structured no-progress error, consulting the
        diagnostics hook (the replayer installs one) for layer-specific
        context — which action each rank is stuck in, what is unmatched."""
        blocked_procs = [p for p in self._processes
                         if p.alive and not p.daemon]
        blocked = [p.name for p in blocked_procs]
        message = (
            f"t={self.now:g}: no activity can progress; blocked "
            f"processes: {blocked[:20]}"
            + ("..." if len(blocked) > 20 else "")
        )
        details: dict = {}
        if self.deadlock_hook is not None:
            extra, details = self.deadlock_hook(blocked_procs)
            if extra:
                message += "\n" + extra
        return DeadlockError(message, blocked=blocked, details=details)

    # ------------------------------------------------------------------
    # Phase transitions
    # ------------------------------------------------------------------
    def _enter_phase(self, act: Activity, phase: str) -> None:
        if phase == "done":
            act.finish_time = self.now
            self._complete(act)
        elif phase == "timer":
            act.epoch += 1
            act.rate = 0.0
            act.settled_at = self.now
            self._push(self.now + act.remaining, act)
        elif phase == "sharing":
            constraints = act.constraints
            if len(constraints) == 1:
                cons = constraints[0]
                g = cons.group
                if not cons.users and (
                    g is None
                    or (not g.vectorized and not g.acts
                        and len(g.cons) == 1)
                ):
                    # Idle-advance fast path (start side): a solo
                    # activity on an otherwise-idle constraint gets the
                    # full capacity, clipped by its bound — exactly what
                    # _rerate_single_constraint derives for n=1 — so the
                    # rate and completion event are set here, without
                    # dirtying the constraint.  (If the constraint is
                    # already in the dirty set from an earlier change,
                    # the pending recompute re-derives this same state —
                    # redundant but correct.)
                    act.settled_at = self.now
                    cons.users.add(act)
                    if g is None:
                        g = _Group()
                        cons.group = g
                        g.cons.append(cons)
                    g.acts.add(act)
                    act.registered = True
                    self._idle_advances += 1
                    cap = cons.capacity
                    bound = act.bound
                    rate = (bound if bound is not None and bound < cap
                            else cap)
                    act.epoch += 1
                    act.rate = rate
                    if rate == INF:
                        self._push(self.now, act)
                    elif rate > 0.0:
                        self._push(self.now + act.remaining / rate, act)
                    # rate == 0: stalled; nothing armed (same contract as
                    # _arm_earliest — a later re-rate or the deadlock
                    # report picks it up).
                    return
            act.settled_at = self.now
            dirty = self._dirty
            group: Optional[_Group] = None
            for cons in act.constraints:
                cons.users.add(act)
                dirty.add(cons)
                g = cons.group
                if g is not None and g is not group:
                    group = g if group is None \
                        else self._merge_groups(group, g)
            act.registered = True
            if act.constraints:
                if group is None:
                    group = _Group()
                grouped = group.cons
                for cons in act.constraints:
                    if cons.group is not group:
                        cons.group = group
                        grouped.append(cons)
                group.acts.add(act)
                if group.vectorized:
                    self._vec_add(group, act)
            if not act.constraints:
                # Unconstrained: bound-only or infinite rate.  A zero
                # bound means the activity is stalled (e.g. a flow over a
                # zero-capacity fatpipe): no completion event is armed, so
                # it only ends if something re-rates it — otherwise the
                # main loop reports the deadlock.
                act.epoch += 1
                act.rate = act.bound if act.bound is not None else INF
                if act.rate == INF:
                    self._push(self.now, act)
                elif act.rate > 0.0:
                    self._push(self.now + act.remaining / act.rate, act)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown activity phase {phase!r}")

    def _merge_groups(self, a: _Group, b: _Group) -> _Group:
        """Union two sharing groups (smaller absorbed into larger).

        Array-backed groups are devectorized first — merges are rare
        (they only happen while the sharing topology is still being
        discovered), so the O(n) attribute restore is a non-event; the
        merged group re-attaches on its next large re-rate.
        """
        if a.vectorized:
            self._devectorize(a)
        if b.vectorized:
            self._devectorize(b)
        if len(a.cons) < len(b.cons):
            a, b = b, a
        for cons in b.cons:
            cons.group = a
        a.cons.extend(b.cons)
        a.acts |= b.acts
        return a

    def _end_phase(self, act: Activity) -> None:
        act.remaining = 0.0
        if act.registered:
            constraints = act.constraints
            if constraints:
                group = constraints[0].group
                group.acts.discard(act)
                if group.vectorized:
                    self._vec_remove(group, act)
            for cons in constraints:
                cons.users.discard(act)
                self._dirty.add(cons)
            act.registered = False
        self._enter_phase(act, act.on_phase_end(self.now))

    # ------------------------------------------------------------------
    # Lazy sharing updates
    # ------------------------------------------------------------------
    def _recompute_dirty(self) -> int:
        """Settle and re-rate every activity affected by pending changes.

        Returns the sharing-component size for ``run()``'s telemetry
        locals: 0 when nothing needed re-rating, ``-n`` when the
        single-constraint fast path re-rated ``n`` activities, ``+n``
        when the generic solver handled ``n``.
        """
        seeds, self._dirty = self._dirty, set()
        # Fast path for the overwhelmingly common case — one dirty
        # constraint that is its whole sharing group, e.g. a compute
        # burst starting or ending on an otherwise idle CPU.
        if len(seeds) == 1:
            (cons,) = seeds
            users = cons.users
            if not users:
                return 0
            group = cons.group
            if group is not None and len(group.cons) == 1:
                # The whole group is this one constraint (so every user
                # touches nothing else): equal shares with bounds, no
                # generic filling needed.
                size = len(users)
                self._rerate_single_constraint(cons, users)
                return -size
        # One sharing group at a time.  Groups must be handled
        # independently: each arms its own earliest completion event, and
        # only the group an event belongs to is re-rated when it fires.
        # No graph walk happens here — every dirty constraint already
        # points at its group (maintained by _enter_phase/_end_phase).
        now = self.now
        mode = self.lmm_mode
        done_groups: Set[int] = set()
        total = 0
        for seed in seeds:
            group = seed.group
            if group is None:
                continue  # never had users
            gid = id(group)
            if gid in done_groups:
                continue
            done_groups.add(gid)
            if group.vectorized:
                if mode != "reference":
                    total += group.n
                    self._solve_group(group, now)
                    continue
                # A platform can be re-used by a reference-mode engine
                # after an auto/vectorized run left groups array-backed.
                self._devectorize(group)
            acts = group.acts
            if not acts:
                continue
            total += len(acts)
            if len(group.cons) == 1:
                self._rerate_single_constraint(group.cons[0], acts)
                continue
            if mode in ("vectorized", "native") or (
                mode == "auto" and len(acts) >= self.vector_threshold
            ):
                self._vec_attach(group)
                self._solve_group(group, now)
                continue
            # Scalar settle at the old rates, collecting drained
            # activities.
            finished: Optional[List[Activity]] = None
            for act in acts:
                rate = act.rate
                if rate:
                    act.remaining -= (
                        INF if rate == INF
                        else rate * (now - act.settled_at)
                    )
                    if act.remaining < 0.0:
                        act.remaining = 0.0
                act.settled_at = now
                if act.remaining <= 0.0:
                    if finished is None:
                        finished = [act]
                    else:
                        finished.append(act)
            if finished is not None:
                # Complete the drained activities *inline* instead of
                # arming now-events and re-entering here once per pop: a
                # synchronized wave of n simultaneous completions costs
                # O(n) this way, not n recomputes of O(n).  Completion
                # re-dirties the touched constraints, so the survivors
                # are re-rated on the main loop's immediately following
                # pass (their settle then is a no-op — the clock has not
                # moved).
                for act in finished:
                    self._end_phase(act)
                continue
            iterations = self._maxmin(acts)
            self._maxmin_iters += iterations
            self._full_resolves += 1
            hist = self._level_hist
            hist[iterations] = hist.get(iterations, 0) + 1
            self._arm_earliest(acts, now)
        return total

    # ------------------------------------------------------------------
    # Array-backed sharing groups
    # ------------------------------------------------------------------
    @staticmethod
    def _grown(arr: np.ndarray, need: int) -> np.ndarray:
        """Amortized-doubling reallocation preserving the prefix."""
        new = np.empty(max(need, 2 * arr.shape[0]), dtype=arr.dtype)
        new[:arr.shape[0]] = arr
        return new

    def _vec_attach(self, group: _Group) -> None:
        """Switch a group to array-backed sharing state.

        From here on the group's arrays are authoritative for
        remaining / rate / settled_at of its member activities; every
        pending completion event is invalidated (epoch bump) so only
        events armed from the arrays can fire.
        """
        acts_list = list(group.acts)
        n = len(acts_list)
        cap = max(64, 2 * n)
        rem = np.empty(cap)
        rate = np.empty(cap)
        settled = np.empty(cap)
        bnd = np.empty(cap)
        for i, a in enumerate(acts_list):
            rem[i] = a.remaining
            rate[i] = a.rate
            settled[i] = a.settled_at
            b = a.bound
            bnd[i] = INF if b is None else b
            a.epoch += 1
        group.acts_list = acts_list
        group.row = {a: i for i, a in enumerate(acts_list)}
        group.n = n
        group.rem, group.rate, group.settled, group.bnd = (
            rem, rate, settled, bnd)
        cons_list = group.cons
        col = {c: j for j, c in enumerate(cons_list)}
        ncols = len(cons_list)
        caps = np.empty(max(64, 2 * ncols))
        for j, c in enumerate(cons_list):
            caps[j] = c.capacity
        group.col = col
        group.ncols = ncols
        group.caps = caps
        mem_of = {}
        mv: List[int] = []
        mc: List[int] = []
        row = group.row
        for a in acts_list:
            i = row[a]
            slots = []
            for c in a.constraints:
                slots.append(len(mv))
                mv.append(i)
                mc.append(col[c])
            mem_of[a] = slots
        m = len(mv)
        mem_var = np.empty(max(256, 2 * m), dtype=np.intp)
        mem_cons = np.empty(max(256, 2 * m), dtype=np.intp)
        mem_var[:m] = mv
        mem_cons[:m] = mc
        group.mem_var, group.mem_cons, group.m = mem_var, mem_cons, m
        group.mem_of = mem_of
        # Per-constraint membership counts, maintained incrementally by
        # _vec_add/_vec_remove.  Counts are integers, so the float adds
        # are exact and the solver sees the same loads a bincount would
        # produce — this just skips recomputing them every solve.
        loadv = np.zeros(caps.shape[0])
        if m:
            loadv[:ncols] = np.bincount(mem_cons[:m], minlength=ncols)
        group.loadv = loadv
        group.work = {}
        group.armed = None
        # The attribute-backed rates this snapshot inherits may predate
        # pending membership changes without any seed record of them, so
        # the first array solve must be a full one; it then certifies
        # the rate array and arms the incremental path.
        group.seeds = set()
        group.inc_ok = False
        group.vectorized = True

    def _devectorize(self, group: _Group) -> None:
        """Restore attribute-backed state (merges, mode changes)."""
        n = group.n
        for a, r, q, s in zip(group.acts_list, group.rem[:n].tolist(),
                              group.rate[:n].tolist(),
                              group.settled[:n].tolist()):
            a.remaining = r
            a.rate = q
            a.settled_at = s
            a.epoch += 1
        group.vectorized = False
        group.armed = None
        group.seeds = None
        group.inc_ok = False
        group.acts_list = group.row = group.mem_of = group.col = None
        group.rem = group.rate = group.settled = group.bnd = None
        group.mem_var = group.mem_cons = group.caps = None
        group.loadv = group.work = None

    def _vec_add(self, group: _Group, act: Activity) -> None:
        """O(1) amortized: append one activity's row and memberships."""
        i = group.n
        if i >= group.rem.shape[0]:
            group.rem = self._grown(group.rem, i + 1)
            group.rate = self._grown(group.rate, i + 1)
            group.settled = self._grown(group.settled, i + 1)
            group.bnd = self._grown(group.bnd, i + 1)
        group.rem[i] = act.remaining
        group.rate[i] = act.rate
        group.settled[i] = act.settled_at
        b = act.bound
        group.bnd[i] = INF if b is None else b
        group.row[act] = i
        group.acts_list.append(act)
        group.n = i + 1
        col = group.col
        m = group.m
        slots = []
        seeds = group.seeds
        for c in act.constraints:
            j = col.get(c)
            if j is None:
                j = group.ncols
                col[c] = j
                if j >= group.caps.shape[0]:
                    group.caps = self._grown(group.caps, j + 1)
                    group.loadv = self._grown(group.loadv, j + 1)
                group.caps[j] = c.capacity
                group.loadv[j] = 0.0
                group.ncols = j + 1
            group.loadv[j] += 1.0
            seeds.add(j)
            if m >= group.mem_var.shape[0]:
                group.mem_var = self._grown(group.mem_var, m + 1)
                group.mem_cons = self._grown(group.mem_cons, m + 1)
            group.mem_var[m] = i
            group.mem_cons[m] = j
            slots.append(m)
            m += 1
        group.m = m
        group.mem_of[act] = slots

    def _vec_remove(self, group: _Group, act: Activity) -> None:
        """O(1): swap-remove one activity's row and memberships."""
        mem_var = group.mem_var
        mem_cons = group.mem_cons
        mem_of = group.mem_of
        acts_list = group.acts_list
        m = group.m
        # Largest slot first: every position above the slot being freed
        # then belongs to some *other* activity, so the fix-up below
        # never chases the activity being removed.
        loadv = group.loadv
        seeds = group.seeds
        for s in sorted(mem_of.pop(act), reverse=True):
            j = int(mem_cons[s])
            loadv[j] -= 1.0
            seeds.add(j)
            last = m - 1
            if s != last:
                moved_row = int(mem_var[last])
                mem_var[s] = moved_row
                mem_cons[s] = mem_cons[last]
                lst = mem_of[acts_list[moved_row]]
                lst[lst.index(last)] = s
            m -= 1
        group.m = m
        i = group.row.pop(act)
        last = group.n - 1
        last_act = acts_list.pop()
        if last_act is not act:
            acts_list[i] = last_act
            group.row[last_act] = i
            group.rem[i] = group.rem[last]
            group.rate[i] = group.rate[last]
            group.settled[i] = group.settled[last]
            group.bnd[i] = group.bnd[last]
            for s in mem_of[last_act]:
                mem_var[s] = i
        group.n = last

    def _solve_group(self, group: _Group, now: float) -> None:
        """Settle, re-rate and re-arm one array-backed group — no
        per-activity Python work at all on this path.

        Re-rating tries the certified incremental patch first (when
        enabled and the group carries a previous certified solution):
        only the cone of constraints/variables affected by the seed
        columns is re-filled, and the patched vector is accepted only
        when the max-min optimality certificate holds — otherwise the
        full progressive filling runs, and the fallback is counted.
        """
        n = group.n
        if n == 0:
            if group.seeds:
                group.seeds.clear()
            return
        rem = group.rem[:n]
        rate = group.rate[:n]
        settled = group.settled[:n]
        inf_mask = np.isinf(rate)
        has_inf = bool(inf_mask.any())
        # When nothing accrued progress since the last settle (the
        # common re-rate immediately after an inline-completion wave at
        # the same instant), the settle is arithmetic identity — skip it.
        if has_inf or float(settled.min()) < now:
            rem -= rate * (now - settled)
            if has_inf:
                # An infinite old rate drains instantly (and inf * 0
                # time deltas would otherwise leave NaNs behind).
                rem[inf_mask] = 0.0
            np.maximum(rem, 0.0, out=rem)
            settled[:] = now
            done = rem <= 0.0
            if done.any():
                # Inline-completion contract — see _recompute_dirty:
                # finish the drained wave now (each completion
                # swap-removes its rows), survivors re-rate on the main
                # loop's immediately following pass.
                acts_list = group.acts_list
                for a in [acts_list[i]
                          for i in np.nonzero(done)[0].tolist()]:
                    self._end_phase(a)
                return
        seeds = group.seeds
        if (self.incremental and group.inc_ok and seeds
                and group.last_levels >= _PATCH_MIN_LEVELS
                and group.patch_streak < _PATCH_PROBE_EVERY):
            seed_cols = np.fromiter(seeds, dtype=np.intp, count=len(seeds))
            seeds.clear()
            ok, levels, _cone = patch_solve(
                group.caps[:group.ncols],
                group.bnd[:n],
                rate,  # patched in place; restored on failure
                group.mem_var[:group.m],
                group.mem_cons[:group.m],
                seed_cols,
                fill=self._fill,
            )
            if ok:
                self._inc_patches += 1
                group.patch_streak += 1
                self._maxmin_iters += levels
                if levels:
                    hist = self._level_hist
                    hist[levels] = hist.get(levels, 0) + 1
                self._rearm_group(group, now, rem, rate)
                return
            self._patch_fallbacks += 1
        elif seeds:
            seeds.clear()
        self._vector_fillings += 1
        self._full_resolves += 1
        rates, iterations = self._fill(
            group.caps[:group.ncols],
            group.bnd[:n],
            None,  # engine activities are equal-weight
            group.mem_var[:group.m],
            group.mem_cons[:group.m],
            load=group.loadv[:group.ncols],
            work=group.work,
        )
        self._maxmin_iters += iterations
        hist = self._level_hist
        hist[iterations] = hist.get(iterations, 0) + 1
        rate[:] = rates
        group.inc_ok = True
        group.last_levels = iterations
        group.patch_streak = 0
        self._rearm_group(group, now, rem, rate)

    def _rearm_group(self, group: _Group, now: float,
                     rem: np.ndarray, rate: np.ndarray) -> None:
        """Min-arm one array-backed group after a re-rate.

        O(1) invalidation: only the previously armed activity can hold
        a live calendar event for this group, so one epoch bump (or an
        in-place calendar re-arm) replaces the per-activity sweep.
        """
        prev = group.armed
        if prev is not None:
            prev.epoch += 1
        with np.errstate(divide="ignore"):
            times = rem / rate
        k = int(times.argmin())
        best_t = float(times[k])
        if best_t < INF:
            act = group.acts_list[k]
            group.armed = act
            self._push(now + best_t, act)
        else:
            group.armed = None

    def _arm_earliest(self, acts, now: float) -> None:
        """Arm one completion event: the component's earliest.

        Every other activity's predicted end is invalidated (epoch bump)
        but *not* pushed — by the time it could matter, this component
        has been re-rated (the armed event completing re-dirties it), and
        a fresh earliest is armed.  This keeps the heap at O(components),
        not O(activities), and shrinks both push traffic and stale pops
        by the component size.
        """
        best = None
        best_t = INF
        for act in acts:
            act.epoch += 1
            rate = act.rate
            if rate > 0.0:
                if rate == INF:
                    # Infinite rate with remaining > 0: completes now.
                    best, best_t = act, now
                    break
                t = now + act.remaining / rate
                if t < best_t:
                    best, best_t = act, t
            # rate == 0: saturated at zero — no event; if everyone ends up
            # rate-less the main loop reports a deadlock.
        if best is not None:
            self._push(best_t, best)

    def _rerate_single_constraint(self, cons: Constraint, users) -> None:
        """Max-min over one constraint: bounded users below the fair share
        keep their bound; the rest split what remains equally."""
        now = self.now
        finished = None
        for act in users:
            rate = act.rate
            if rate:
                act.remaining -= (INF if rate == INF else
                                  rate * (now - act.settled_at))
                if act.remaining < 0.0:
                    act.remaining = 0.0
            act.settled_at = now
            if act.remaining <= 0.0:
                if finished is None:
                    finished = [act]
                else:
                    finished.append(act)
        if finished is not None:
            # Same inline-completion contract as _recompute_dirty (the
            # survivors re-rate on the next main-loop pass).
            for act in finished:
                self._end_phase(act)
            return
        remaining_cap = cons.capacity
        unfixed = sorted(
            users,
            key=lambda a: a.bound if a.bound is not None else INF,
        )
        n = len(unfixed)
        idx = 0
        while idx < n:
            share = remaining_cap / (n - idx)
            act = unfixed[idx]
            if act.bound is not None and act.bound < share:
                act.rate = act.bound
                remaining_cap -= act.bound
                idx += 1
            else:
                for j in range(idx, n):
                    unfixed[j].rate = share
                break
        self._arm_earliest(users, now)

    @staticmethod
    def _maxmin(acts: Set[Activity]) -> int:
        """Equal-weight progressive filling with per-activity bounds.
        Returns the number of filling levels (telemetry)."""
        remaining_cap = {}
        load = {}
        for act in acts:
            for cons in act.constraints:
                if cons in load:
                    load[cons] += 1
                else:
                    load[cons] = 1
                    remaining_cap[cons] = cons.capacity
        unfixed = set(acts)
        iterations = 0
        while unfixed:
            iterations += 1
            level = INF
            for cons, weight in load.items():
                if weight > 0:
                    share = remaining_cap[cons] / weight
                    if share < level:
                        level = share
            for act in unfixed:
                if act.bound is not None and act.bound < level:
                    level = act.bound
            if level == INF:
                for act in unfixed:
                    act.rate = INF
                break
            threshold = level + 1e-12 * (level if level > 1.0 else 1.0)
            fixed = []
            for act in unfixed:
                if act.bound is not None and act.bound <= threshold:
                    fixed.append((act, act.bound))
                    continue
                for cons in act.constraints:
                    weight = load[cons]
                    if weight > 0 and remaining_cap[cons] / weight <= threshold:
                        fixed.append((act, level))
                        break
            if not fixed:  # numerical corner: force progress
                fixed = [(act, level) for act in unfixed]
            for act, rate in fixed:
                act.rate = rate
                unfixed.discard(act)
                for cons in act.constraints:
                    cap = remaining_cap[cons] - rate
                    remaining_cap[cons] = cap if cap > 0.0 else 0.0
                    load[cons] -= 1
        return iterations

    # ------------------------------------------------------------------
    # Event-calendar plumbing
    # ------------------------------------------------------------------
    def _push(self, time_: float, act: Activity) -> None:
        self._calendar.push(time_, act)

    def _maybe_compact(self) -> None:
        """Drop stale calendar entries once they dominate (lazy deletion).

        Triggered when the occupied-slot prefix doubles past the live
        count seen at the previous compaction — amortised O(1) per
        event.  The dropped-entry count flows into ``stale_skipped``
        through the calendar's own ``stale`` counter (windowed by
        ``run()``)."""
        cal = self._calendar
        if cal.hi > 2 * self._heap_floor:
            cal.compact()
            self._calendar_rebuilds += 1
            if self.metrics is not None:
                self.metrics.compactions += 1
            self._heap_floor = max(4096, cal.hi)

    # ------------------------------------------------------------------
    # Completion and process scheduling
    # ------------------------------------------------------------------
    def complete_waitable(self, waitable: Waitable) -> None:
        """Complete a derived waitable (e.g. an MPI request): fire its
        callbacks and wake every process blocked on it.  Used by protocol
        layers whose objects are not kernel activities."""
        if waitable.done:
            return
        self._complete(waitable)

    def complete_at(self, waitable: Waitable, when: float) -> None:
        """Complete a derived waitable at absolute time ``when`` (or now,
        if ``when`` has already passed).  The sharded replay driver uses
        this to release parked ranks at the collective exit times the
        coordinator computed for them."""
        if waitable.done:
            return
        if when <= self.now:
            self._complete(waitable)
            return
        t = Timer(when - self.now, name="complete_at")
        t.on_complete(lambda _t: self.complete_waitable(waitable))
        self.start_activity(t)

    # ------------------------------------------------------------------
    # Fault injection (see repro.faults; no-ops in fault-free runs)
    # ------------------------------------------------------------------
    def fail_waitable(self, waitable: Waitable, reason: str = "") -> bool:
        """Move a waitable to the terminal FAILED state.

        Completion callbacks never run; ``on_fail`` callbacks do, and
        every process blocked on it is woken with an
        :class:`ActivityFailed` thrown at its yield point.  Returns
        False if the waitable already reached a terminal state.
        """
        if waitable.done or waitable.failed:
            return False
        waitable._fire_failure(reason)
        waiters, waitable.waiters = waitable.waiters, []
        for proc, token in waiters:
            if proc.alive and proc._wait_token == token:
                proc._wait_token += 1  # consume: ignore other WaitAny fires
                self._ready.append((proc, _FailureWake(
                    ActivityFailed(waitable, reason))))
        return True

    def fail_activity(self, act: Activity, reason: str = "") -> bool:
        """FAIL a kernel activity: unregister it from resource sharing
        (the survivors are re-rated through the normal lazy recompute,
        scalar or vectorized alike), invalidate its pending completion
        event, and propagate the failure to its waiters."""
        if act.done or act.failed:
            return False
        act.remaining = 0.0
        if act.registered:
            constraints = act.constraints
            if constraints:
                group = constraints[0].group
                group.acts.discard(act)
                if group.vectorized:
                    self._vec_remove(group, act)
            for cons in constraints:
                cons.users.discard(act)
                self._dirty.add(cons)
            act.registered = False
        act.epoch += 1  # drop any armed completion/timer event
        act.finish_time = self.now
        return self.fail_waitable(act, reason)

    def set_capacity(self, cons: Constraint, capacity: float) -> None:
        """Change a constraint's capacity mid-run (link degradation or
        restoration) and re-price its in-flight users through the lazy
        recompute path.  Array-backed sharing groups snapshot capacities,
        so the snapshot is patched too."""
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        cons.capacity = float(capacity)
        group = cons.group
        if group is not None and group.vectorized:
            j = group.col.get(cons)
            if j is not None:
                group.caps[j] = cons.capacity
                group.seeds.add(j)
        self._dirty.add(cons)

    def _complete(self, waitable: Waitable) -> None:
        waitable._fire()
        waiters, waitable.waiters = waitable.waiters, []
        for proc, token in waiters:
            if proc.alive and proc._wait_token == token:
                proc._wait_token += 1  # consume: ignore other WaitAny fires
                self._ready.append((proc, waitable))

    def _run_ready(self) -> None:
        while self._ready:
            proc, sendval = self._ready.popleft()
            if not proc.alive:
                continue
            self._step(proc, sendval)

    def _step(self, proc: Process, sendval) -> None:
        generator = proc.generator
        while True:
            try:
                if type(sendval) is _FailureWake:
                    # The waitable this process blocked on FAILED: the
                    # fault surfaces inside the process as an exception.
                    yielded = generator.throw(sendval.error)
                else:
                    yielded = generator.send(sendval)
            except StopIteration as stop:
                proc.alive = False
                proc.result = stop.value
                if not proc.daemon:
                    self._live_count -= 1
                return
            except ActivityFailed as exc:
                # The process did not handle the fault: it dies, the rest
                # of the simulation keeps running (peers blocked on it
                # surface through the deadlock machinery).
                proc.alive = False
                proc.failure = exc
                proc._wait_token += 1
                if not proc.daemon:
                    self._live_count -= 1
                hook = self.process_failed_hook
                if hook is not None:
                    hook(proc, exc)
                return
            if isinstance(yielded, WaitAny):
                done = next((w for w in yielded.waitables if w.done), None)
                if done is not None:
                    sendval = done
                    continue
                failed = next(
                    (w for w in yielded.waitables if w.failed), None)
                if failed is not None:
                    sendval = _FailureWake(
                        ActivityFailed(failed, failed.failure or ""))
                    continue
                token = proc._wait_token
                for w in yielded.waitables:
                    w.waiters.append((proc, token))
                return
            if isinstance(yielded, Waitable):
                if yielded.done:
                    sendval = yielded
                    continue
                if yielded.failed:
                    sendval = _FailureWake(
                        ActivityFailed(yielded, yielded.failure or ""))
                    continue
                yielded.waiters.append((proc, proc._wait_token))
                return
            raise TypeError(
                f"process {proc.name!r} yielded {yielded!r}; expected a "
                "Waitable or WaitAny"
            )
