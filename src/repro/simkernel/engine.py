"""Lazy discrete-event fluid simulation engine.

Simulated processes are Python generators.  A process blocks by yielding
either a :class:`~repro.simkernel.activity.Waitable` (resume when it
completes) or a :class:`WaitAny` over several waitables (resume when the
first completes; the completed one is sent back into the generator).

Resource sharing is *lazily* maintained, as in SimGrid's kernel: every
constraint records which activities currently use it, and when the
activity mix changes, only the affected *sharing component* — activities
transitively connected to the change through shared constraints — is
settled (progress accrued at the old rate) and re-rated (max-min fair
share recomputed).  Predicted completion instants live in a heap with
epoch-validated lazy deletion.  The cost of an event is proportional to
the size of its component, not to the number of activities in flight —
which is what lets thousand-rank replays run in reasonable time.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Generator, List, Optional, Sequence, Set

from .activity import Activity, CommActivity, ExecActivity, Timer, Waitable
from .lmm import Constraint

__all__ = ["Engine", "Process", "WaitAny", "DeadlockError"]

INF = float("inf")


class DeadlockError(RuntimeError):
    """Raised when live processes remain but nothing can make progress."""


class WaitAny:
    """Yielded by a process to block until any of ``waitables`` completes."""

    __slots__ = ("waitables",)

    def __init__(self, waitables: Sequence[Waitable]) -> None:
        self.waitables = list(waitables)
        if not self.waitables:
            raise ValueError("WaitAny needs at least one waitable")


class Process:
    """A simulated process: a generator driven by the engine."""

    __slots__ = ("name", "generator", "alive", "_wait_token", "result")

    def __init__(self, name: str, generator: Generator) -> None:
        self.name = name
        self.generator = generator
        self.alive = True
        self._wait_token = 0  # invalidates stale WaitAny registrations
        self.result = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return f"Process({self.name}, {state})"


class Engine:
    """Owns the simulated clock, the processes, and the active activities."""

    def __init__(self) -> None:
        self.now = 0.0
        self._processes: List[Process] = []
        self._ready: deque = deque()
        self._live_count = 0
        self._heap: list = []       # (time, seq, epoch, activity)
        self._seq = 0               # heap tie-breaker
        self._dirty: Set[Constraint] = set()
        # Heap-compaction watermark: compact when the heap doubles past
        # the live-entry count observed at the previous compaction.
        self._heap_floor = 4096

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------
    def add_process(self, name: str, generator: Generator) -> Process:
        """Register a generator as a simulated process, ready to run."""
        proc = Process(name, generator)
        self._processes.append(proc)
        self._live_count += 1
        self._ready.append((proc, None))
        return proc

    # ------------------------------------------------------------------
    # Operations processes can yield (built here, waited on by yielding)
    # ------------------------------------------------------------------
    def exec_activity(
        self,
        constraint: Constraint,
        amount: float,
        bound: Optional[float] = None,
        name: str = "",
    ) -> ExecActivity:
        act = ExecActivity(constraint, amount, bound=bound, name=name)
        self.start_activity(act)
        return act

    def comm_activity(
        self,
        links,
        size: float,
        latency: float,
        rate_factor: float = 1.0,
        bound: Optional[float] = None,
        name: str = "",
    ) -> CommActivity:
        act = CommActivity(
            list(links), size, latency, rate_factor=rate_factor,
            bound=bound, name=name,
        )
        self.start_activity(act)
        return act

    def timer(self, duration: float, name: str = "") -> Timer:
        act = Timer(duration, name=name)
        self.start_activity(act)
        return act

    def start_activity(self, act: Activity) -> Activity:
        """Hand an already-built activity to the lazy fluid loop."""
        act.start_time = self.now
        self._enter_phase(act, act.begin(self.now))
        return act

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run until all processes finish (or ``until`` seconds of simulated
        time elapse).  Returns the final simulated time."""
        heap = self._heap
        while True:
            self._run_ready()
            if self._dirty:
                self._recompute_dirty()
            if self._live_count == 0:
                return self.now
            # Pop the next valid completion event.
            act = None
            while heap:
                time_, _, epoch, candidate = heapq.heappop(heap)
                if candidate.done or epoch != candidate.epoch:
                    continue
                act = candidate
                break
            if act is None:
                blocked = [p.name for p in self._processes if p.alive]
                raise DeadlockError(
                    f"t={self.now:g}: no activity can progress; blocked "
                    f"processes: {blocked[:20]}"
                    + ("..." if len(blocked) > 20 else "")
                )
            if until is not None and time_ > until:
                # Re-arm the event and pause the clock at the horizon.
                heapq.heappush(heap, (time_, self._next_seq(), epoch, act))
                self.now = until
                return self.now
            if time_ > self.now:
                self.now = time_
            self._end_phase(act)
            self._maybe_compact()

    # ------------------------------------------------------------------
    # Phase transitions
    # ------------------------------------------------------------------
    def _enter_phase(self, act: Activity, phase: str) -> None:
        if phase == "done":
            act.finish_time = self.now
            self._complete(act)
        elif phase == "timer":
            act.epoch += 1
            act.rate = 0.0
            act.settled_at = self.now
            self._push(self.now + act.remaining, act)
        elif phase == "sharing":
            act.settled_at = self.now
            for cons in act.constraints:
                cons.users.add(act)
                self._dirty.add(cons)
            act.registered = True
            if not act.constraints:
                # Unconstrained: bound-only or infinite rate.
                act.epoch += 1
                act.rate = act.bound if act.bound else INF
                duration = (act.remaining / act.rate) if act.rate != INF else 0.0
                self._push(self.now + duration, act)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown activity phase {phase!r}")

    def _end_phase(self, act: Activity) -> None:
        act.remaining = 0.0
        if act.registered:
            for cons in act.constraints:
                cons.users.discard(act)
                self._dirty.add(cons)
            act.registered = False
        self._enter_phase(act, act.on_phase_end(self.now))

    # ------------------------------------------------------------------
    # Lazy sharing updates
    # ------------------------------------------------------------------
    def _recompute_dirty(self) -> None:
        """Settle and re-rate every activity affected by pending changes."""
        seeds, self._dirty = self._dirty, set()
        # Fast path for the overwhelmingly common case — one dirty
        # constraint whose (at most one) user touches nothing else, e.g. a
        # compute burst starting or ending on an otherwise idle CPU.
        if len(seeds) == 1:
            (cons,) = seeds
            users = cons.users
            if not users:
                return
            if all(len(act.constraints) == 1 for act in users):
                # The whole component is this one constraint (e.g. a CPU
                # with its folded compute bursts): equal shares with
                # bounds, no BFS and no generic filling needed.
                self._rerate_single_constraint(cons, users)
                return
        # BFS over the bipartite activity/constraint graph.  Disjoint
        # components may be swept together: max-min allocations are
        # independent across components, so one filling pass is equivalent.
        comp_cons: Set[Constraint] = set()
        comp_acts: Set[Activity] = set()
        stack = [c for c in seeds if c.users]
        comp_cons.update(seeds)
        while stack:
            cons = stack.pop()
            for act in cons.users:
                if act not in comp_acts:
                    comp_acts.add(act)
                    for other in act.constraints:
                        if other not in comp_cons:
                            comp_cons.add(other)
                            stack.append(other)
        if not comp_acts:
            return
        now = self.now
        # Settle progress at the old rates.
        for act in comp_acts:
            rate = act.rate
            if rate:
                act.remaining -= (INF if rate == INF else
                                  rate * (now - act.settled_at))
                if act.remaining < 0.0:
                    act.remaining = 0.0
            act.settled_at = now

        self._maxmin(comp_acts)

        # Re-arm completion events at the new rates.
        for act in comp_acts:
            act.epoch += 1
            rate = act.rate
            if rate == INF or act.remaining <= 0.0:
                self._push(now, act)
            elif rate > 0.0:
                self._push(now + act.remaining / rate, act)
            # rate == 0: saturated at zero — no event; if everyone ends up
            # rate-less the main loop reports a deadlock.

    def _rerate_single_constraint(self, cons: Constraint, users) -> None:
        """Max-min over one constraint: bounded users below the fair share
        keep their bound; the rest split what remains equally."""
        now = self.now
        for act in users:
            rate = act.rate
            if rate:
                act.remaining -= (INF if rate == INF else
                                  rate * (now - act.settled_at))
                if act.remaining < 0.0:
                    act.remaining = 0.0
            act.settled_at = now
        remaining_cap = cons.capacity
        unfixed = sorted(
            users,
            key=lambda a: a.bound if a.bound is not None else INF,
        )
        n = len(unfixed)
        idx = 0
        while idx < n:
            share = remaining_cap / (n - idx)
            act = unfixed[idx]
            if act.bound is not None and act.bound < share:
                act.rate = act.bound
                remaining_cap -= act.bound
                idx += 1
            else:
                for j in range(idx, n):
                    unfixed[j].rate = share
                break
        for act in users:
            act.epoch += 1
            rate = act.rate
            if rate == INF or act.remaining <= 0.0:
                self._push(now, act)
            elif rate > 0.0:
                self._push(now + act.remaining / rate, act)

    @staticmethod
    def _maxmin(acts: Set[Activity]) -> None:
        """Equal-weight progressive filling with per-activity bounds."""
        remaining_cap = {}
        load = {}
        for act in acts:
            for cons in act.constraints:
                if cons in load:
                    load[cons] += 1
                else:
                    load[cons] = 1
                    remaining_cap[cons] = cons.capacity
        unfixed = set(acts)
        while unfixed:
            level = INF
            for cons, weight in load.items():
                if weight > 0:
                    share = remaining_cap[cons] / weight
                    if share < level:
                        level = share
            for act in unfixed:
                if act.bound is not None and act.bound < level:
                    level = act.bound
            if level == INF:
                for act in unfixed:
                    act.rate = INF
                break
            threshold = level + 1e-12 * (level if level > 1.0 else 1.0)
            fixed = []
            for act in unfixed:
                if act.bound is not None and act.bound <= threshold:
                    fixed.append((act, act.bound))
                    continue
                for cons in act.constraints:
                    weight = load[cons]
                    if weight > 0 and remaining_cap[cons] / weight <= threshold:
                        fixed.append((act, level))
                        break
            if not fixed:  # numerical corner: force progress
                fixed = [(act, level) for act in unfixed]
            for act, rate in fixed:
                act.rate = rate
                unfixed.discard(act)
                for cons in act.constraints:
                    cap = remaining_cap[cons] - rate
                    remaining_cap[cons] = cap if cap > 0.0 else 0.0
                    load[cons] -= 1

    # ------------------------------------------------------------------
    # Heap plumbing
    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _push(self, time_: float, act: Activity) -> None:
        heapq.heappush(self._heap, (time_, self._next_seq(), act.epoch, act))

    def _maybe_compact(self) -> None:
        """Drop stale heap entries once they dominate (lazy deletion).

        Triggered when the heap doubles past the live count seen at the
        previous compaction — amortised O(1) per event."""
        heap = self._heap
        if len(heap) > 2 * self._heap_floor:
            live = [e for e in heap if not e[3].done and e[2] == e[3].epoch]
            # In place: run() holds a reference to this very list.
            heap[:] = live
            heapq.heapify(heap)
            self._heap_floor = max(4096, len(live))

    # ------------------------------------------------------------------
    # Completion and process scheduling
    # ------------------------------------------------------------------
    def complete_waitable(self, waitable: Waitable) -> None:
        """Complete a derived waitable (e.g. an MPI request): fire its
        callbacks and wake every process blocked on it.  Used by protocol
        layers whose objects are not kernel activities."""
        if waitable.done:
            return
        self._complete(waitable)

    def _complete(self, waitable: Waitable) -> None:
        waitable._fire()
        waiters, waitable.waiters = waitable.waiters, []
        for proc, token in waiters:
            if proc.alive and proc._wait_token == token:
                proc._wait_token += 1  # consume: ignore other WaitAny fires
                self._ready.append((proc, waitable))

    def _run_ready(self) -> None:
        while self._ready:
            proc, sendval = self._ready.popleft()
            if not proc.alive:
                continue
            self._step(proc, sendval)

    def _step(self, proc: Process, sendval) -> None:
        while True:
            try:
                yielded = proc.generator.send(sendval)
            except StopIteration as stop:
                proc.alive = False
                proc.result = stop.value
                self._live_count -= 1
                return
            if isinstance(yielded, WaitAny):
                done = next((w for w in yielded.waitables if w.done), None)
                if done is not None:
                    sendval = done
                    continue
                token = proc._wait_token
                for w in yielded.waitables:
                    w.waiters.append((proc, token))
                return
            if isinstance(yielded, Waitable):
                if yielded.done:
                    sendval = yielded
                    continue
                yielded.waiters.append((proc, proc._wait_token))
                return
            raise TypeError(
                f"process {proc.name!r} yielded {yielded!r}; expected a "
                "Waitable or WaitAny"
            )
