"""Lazy discrete-event fluid simulation engine.

Simulated processes are Python generators.  A process blocks by yielding
either a :class:`~repro.simkernel.activity.Waitable` (resume when it
completes) or a :class:`WaitAny` over several waitables (resume when the
first completes; the completed one is sent back into the generator).

Resource sharing is *lazily* maintained, as in SimGrid's kernel: every
constraint records which activities currently use it, and when the
activity mix changes, only the affected *sharing component* — activities
transitively connected to the change through shared constraints — is
settled (progress accrued at the old rate) and re-rated (max-min fair
share recomputed).  Predicted completion instants live in a heap with
epoch-validated lazy deletion.  The cost of an event is proportional to
the size of its component, not to the number of activities in flight —
which is what lets thousand-rank replays run in reasonable time.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Generator, List, Optional, Sequence, Set, Tuple

from .activity import Activity, CommActivity, ExecActivity, Timer, Waitable
from .lmm import Constraint
from .telemetry import EngineMetrics

__all__ = ["Engine", "Process", "WaitAny", "DeadlockError"]

INF = float("inf")


class DeadlockError(RuntimeError):
    """Raised when live processes remain but nothing can make progress.

    Besides the human-readable message, carries the structured state the
    diagnostics layers need: ``blocked`` (names of the stuck processes)
    and ``details`` (a dict filled in by the engine's ``deadlock_hook``
    — the replayer reports each rank's current action, pending Irecvs,
    and the unmatched (src, dst, tag) communication counts there).
    """

    def __init__(self, message: str, blocked: Sequence[str] = (),
                 details: Optional[dict] = None) -> None:
        super().__init__(message)
        self.blocked = list(blocked)
        self.details = details if details is not None else {}


class WaitAny:
    """Yielded by a process to block until any of ``waitables`` completes."""

    __slots__ = ("waitables",)

    def __init__(self, waitables: Sequence[Waitable]) -> None:
        self.waitables = list(waitables)
        if not self.waitables:
            raise ValueError("WaitAny needs at least one waitable")


class Process:
    """A simulated process: a generator driven by the engine."""

    __slots__ = ("name", "generator", "alive", "_wait_token", "result")

    def __init__(self, name: str, generator: Generator) -> None:
        self.name = name
        self.generator = generator
        self.alive = True
        self._wait_token = 0  # invalidates stale WaitAny registrations
        self.result = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return f"Process({self.name}, {state})"


class Engine:
    """Owns the simulated clock, the processes, and the active activities."""

    def __init__(self, metrics: Optional[EngineMetrics] = None) -> None:
        self.now = 0.0
        self._processes: List[Process] = []
        self._ready: deque = deque()
        self._live_count = 0
        self._heap: list = []       # (time, seq, epoch, activity)
        self._seq = 0               # heap tie-breaker
        self._dirty: Set[Constraint] = set()
        # Heap-compaction watermark: compact when the heap doubles past
        # the live-entry count observed at the previous compaction.
        self._heap_floor = 4096
        # Progressive-filling levels, accumulated unconditionally (one
        # integer add per filling) and windowed into the metrics by run().
        self._maxmin_iters = 0
        # Optional telemetry; the counters themselves are loop-locals or
        # plain integer accumulators, so enabling metrics never changes
        # the arithmetic the hot paths execute.
        self.metrics = metrics
        # Optional diagnostics callback, called with the blocked processes
        # when a deadlock is detected; returns (extra message, details).
        self.deadlock_hook: Optional[
            Callable[[List[Process]], Tuple[str, dict]]
        ] = None

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------
    def add_process(self, name: str, generator: Generator) -> Process:
        """Register a generator as a simulated process, ready to run."""
        proc = Process(name, generator)
        self._processes.append(proc)
        self._live_count += 1
        self._ready.append((proc, None))
        return proc

    # ------------------------------------------------------------------
    # Operations processes can yield (built here, waited on by yielding)
    # ------------------------------------------------------------------
    def exec_activity(
        self,
        constraint: Constraint,
        amount: float,
        bound: Optional[float] = None,
        name: str = "",
    ) -> ExecActivity:
        act = ExecActivity(constraint, amount, bound=bound, name=name)
        self.start_activity(act)
        return act

    def comm_activity(
        self,
        links,
        size: float,
        latency: float,
        rate_factor: float = 1.0,
        bound: Optional[float] = None,
        name: str = "",
    ) -> CommActivity:
        act = CommActivity(
            list(links), size, latency, rate_factor=rate_factor,
            bound=bound, name=name,
        )
        self.start_activity(act)
        return act

    def timer(self, duration: float, name: str = "") -> Timer:
        act = Timer(duration, name=name)
        self.start_activity(act)
        return act

    def start_activity(self, act: Activity) -> Activity:
        """Hand an already-built activity to the lazy fluid loop."""
        act.start_time = self.now
        self._enter_phase(act, act.begin(self.now))
        return act

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run until all processes finish (or ``until`` seconds of simulated
        time elapse).  Returns the final simulated time."""
        heap = self._heap
        metrics = self.metrics
        # Telemetry accumulates unconditionally in loop-locals — a few
        # integer increments per event, immeasurable next to the event
        # processing itself, and branchless so the loop executes the
        # exact same bytecode whether metrics are on or off.  Only the
        # flush (in the finally below, so it also runs on deadlock) is
        # guarded.
        popped = stale = fast = generic = comp_total = comp_max = 0
        maxmin_iters0 = self._maxmin_iters
        try:
            while True:
                self._run_ready()
                if self._dirty:
                    size = self._recompute_dirty()
                    if size:
                        if size < 0:  # single-constraint fast path
                            fast += 1
                            size = -size
                        else:
                            generic += 1
                        comp_total += size
                        if size > comp_max:
                            comp_max = size
                if self._live_count == 0:
                    return self.now
                # Pop the next valid completion event.
                act = None
                while heap:
                    time_, _, epoch, candidate = heapq.heappop(heap)
                    if candidate.done or epoch != candidate.epoch:
                        stale += 1
                        continue
                    act = candidate
                    break
                if act is None:
                    raise self._deadlock()
                popped += 1
                if until is not None and time_ > until:
                    # Re-arm the event and pause the clock at the horizon.
                    heapq.heappush(heap,
                                   (time_, self._next_seq(), epoch, act))
                    self.now = until
                    return self.now
                if time_ > self.now:
                    self.now = time_
                self._end_phase(act)
                self._maybe_compact()
        finally:
            if metrics is not None:
                metrics.events_popped += popped
                metrics.stale_skipped += stale
                metrics.fastpath_recomputes += fast
                metrics.generic_recomputes += generic
                metrics.component_acts += comp_total
                metrics.maxmin_iterations += (self._maxmin_iters
                                              - maxmin_iters0)
                if comp_max > metrics.max_component_acts:
                    metrics.max_component_acts = comp_max

    def _deadlock(self) -> DeadlockError:
        """Build the structured no-progress error, consulting the
        diagnostics hook (the replayer installs one) for layer-specific
        context — which action each rank is stuck in, what is unmatched."""
        blocked_procs = [p for p in self._processes if p.alive]
        blocked = [p.name for p in blocked_procs]
        message = (
            f"t={self.now:g}: no activity can progress; blocked "
            f"processes: {blocked[:20]}"
            + ("..." if len(blocked) > 20 else "")
        )
        details: dict = {}
        if self.deadlock_hook is not None:
            extra, details = self.deadlock_hook(blocked_procs)
            if extra:
                message += "\n" + extra
        return DeadlockError(message, blocked=blocked, details=details)

    # ------------------------------------------------------------------
    # Phase transitions
    # ------------------------------------------------------------------
    def _enter_phase(self, act: Activity, phase: str) -> None:
        if phase == "done":
            act.finish_time = self.now
            self._complete(act)
        elif phase == "timer":
            act.epoch += 1
            act.rate = 0.0
            act.settled_at = self.now
            self._push(self.now + act.remaining, act)
        elif phase == "sharing":
            act.settled_at = self.now
            for cons in act.constraints:
                cons.users.add(act)
                self._dirty.add(cons)
            act.registered = True
            if not act.constraints:
                # Unconstrained: bound-only or infinite rate.  A zero
                # bound means the activity is stalled (e.g. a flow over a
                # zero-capacity fatpipe): no completion event is armed, so
                # it only ends if something re-rates it — otherwise the
                # main loop reports the deadlock.
                act.epoch += 1
                act.rate = act.bound if act.bound is not None else INF
                if act.rate == INF:
                    self._push(self.now, act)
                elif act.rate > 0.0:
                    self._push(self.now + act.remaining / act.rate, act)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown activity phase {phase!r}")

    def _end_phase(self, act: Activity) -> None:
        act.remaining = 0.0
        if act.registered:
            for cons in act.constraints:
                cons.users.discard(act)
                self._dirty.add(cons)
            act.registered = False
        self._enter_phase(act, act.on_phase_end(self.now))

    # ------------------------------------------------------------------
    # Lazy sharing updates
    # ------------------------------------------------------------------
    def _recompute_dirty(self) -> int:
        """Settle and re-rate every activity affected by pending changes.

        Returns the sharing-component size for ``run()``'s telemetry
        locals: 0 when nothing needed re-rating, ``-n`` when the
        single-constraint fast path re-rated ``n`` activities, ``+n``
        when the generic solver handled ``n``.
        """
        seeds, self._dirty = self._dirty, set()
        # Fast path for the overwhelmingly common case — one dirty
        # constraint whose (at most one) user touches nothing else, e.g. a
        # compute burst starting or ending on an otherwise idle CPU.
        if len(seeds) == 1:
            (cons,) = seeds
            users = cons.users
            if not users:
                return 0
            if all(len(act.constraints) == 1 for act in users):
                # The whole component is this one constraint (e.g. a CPU
                # with its folded compute bursts): equal shares with
                # bounds, no BFS and no generic filling needed.
                self._rerate_single_constraint(cons, users)
                return -len(users)
        # BFS over the bipartite activity/constraint graph.  Disjoint
        # components may be swept together: max-min allocations are
        # independent across components, so one filling pass is equivalent.
        comp_cons: Set[Constraint] = set()
        comp_acts: Set[Activity] = set()
        stack = [c for c in seeds if c.users]
        comp_cons.update(seeds)
        while stack:
            cons = stack.pop()
            for act in cons.users:
                if act not in comp_acts:
                    comp_acts.add(act)
                    for other in act.constraints:
                        if other not in comp_cons:
                            comp_cons.add(other)
                            stack.append(other)
        if not comp_acts:
            return 0
        now = self.now
        # Settle progress at the old rates.
        for act in comp_acts:
            rate = act.rate
            if rate:
                act.remaining -= (INF if rate == INF else
                                  rate * (now - act.settled_at))
                if act.remaining < 0.0:
                    act.remaining = 0.0
            act.settled_at = now

        self._maxmin_iters += self._maxmin(comp_acts)

        # Re-arm completion events at the new rates.
        for act in comp_acts:
            act.epoch += 1
            rate = act.rate
            if rate == INF or act.remaining <= 0.0:
                self._push(now, act)
            elif rate > 0.0:
                self._push(now + act.remaining / rate, act)
            # rate == 0: saturated at zero — no event; if everyone ends up
            # rate-less the main loop reports a deadlock.
        return len(comp_acts)

    def _rerate_single_constraint(self, cons: Constraint, users) -> None:
        """Max-min over one constraint: bounded users below the fair share
        keep their bound; the rest split what remains equally."""
        now = self.now
        for act in users:
            rate = act.rate
            if rate:
                act.remaining -= (INF if rate == INF else
                                  rate * (now - act.settled_at))
                if act.remaining < 0.0:
                    act.remaining = 0.0
            act.settled_at = now
        remaining_cap = cons.capacity
        unfixed = sorted(
            users,
            key=lambda a: a.bound if a.bound is not None else INF,
        )
        n = len(unfixed)
        idx = 0
        while idx < n:
            share = remaining_cap / (n - idx)
            act = unfixed[idx]
            if act.bound is not None and act.bound < share:
                act.rate = act.bound
                remaining_cap -= act.bound
                idx += 1
            else:
                for j in range(idx, n):
                    unfixed[j].rate = share
                break
        for act in users:
            act.epoch += 1
            rate = act.rate
            if rate == INF or act.remaining <= 0.0:
                self._push(now, act)
            elif rate > 0.0:
                self._push(now + act.remaining / rate, act)

    @staticmethod
    def _maxmin(acts: Set[Activity]) -> int:
        """Equal-weight progressive filling with per-activity bounds.
        Returns the number of filling levels (telemetry)."""
        remaining_cap = {}
        load = {}
        for act in acts:
            for cons in act.constraints:
                if cons in load:
                    load[cons] += 1
                else:
                    load[cons] = 1
                    remaining_cap[cons] = cons.capacity
        unfixed = set(acts)
        iterations = 0
        while unfixed:
            iterations += 1
            level = INF
            for cons, weight in load.items():
                if weight > 0:
                    share = remaining_cap[cons] / weight
                    if share < level:
                        level = share
            for act in unfixed:
                if act.bound is not None and act.bound < level:
                    level = act.bound
            if level == INF:
                for act in unfixed:
                    act.rate = INF
                break
            threshold = level + 1e-12 * (level if level > 1.0 else 1.0)
            fixed = []
            for act in unfixed:
                if act.bound is not None and act.bound <= threshold:
                    fixed.append((act, act.bound))
                    continue
                for cons in act.constraints:
                    weight = load[cons]
                    if weight > 0 and remaining_cap[cons] / weight <= threshold:
                        fixed.append((act, level))
                        break
            if not fixed:  # numerical corner: force progress
                fixed = [(act, level) for act in unfixed]
            for act, rate in fixed:
                act.rate = rate
                unfixed.discard(act)
                for cons in act.constraints:
                    cap = remaining_cap[cons] - rate
                    remaining_cap[cons] = cap if cap > 0.0 else 0.0
                    load[cons] -= 1
        return iterations

    # ------------------------------------------------------------------
    # Heap plumbing
    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _push(self, time_: float, act: Activity) -> None:
        heapq.heappush(self._heap, (time_, self._next_seq(), act.epoch, act))

    def _maybe_compact(self) -> None:
        """Drop stale heap entries once they dominate (lazy deletion).

        Triggered when the heap doubles past the live count seen at the
        previous compaction — amortised O(1) per event."""
        heap = self._heap
        if len(heap) > 2 * self._heap_floor:
            live = [e for e in heap if not e[3].done and e[2] == e[3].epoch]
            if self.metrics is not None:
                self.metrics.compactions += 1
                self.metrics.stale_skipped += len(heap) - len(live)
            # In place: run() holds a reference to this very list.
            heap[:] = live
            heapq.heapify(heap)
            self._heap_floor = max(4096, len(live))

    # ------------------------------------------------------------------
    # Completion and process scheduling
    # ------------------------------------------------------------------
    def complete_waitable(self, waitable: Waitable) -> None:
        """Complete a derived waitable (e.g. an MPI request): fire its
        callbacks and wake every process blocked on it.  Used by protocol
        layers whose objects are not kernel activities."""
        if waitable.done:
            return
        self._complete(waitable)

    def _complete(self, waitable: Waitable) -> None:
        waitable._fire()
        waiters, waitable.waiters = waitable.waiters, []
        for proc, token in waiters:
            if proc.alive and proc._wait_token == token:
                proc._wait_token += 1  # consume: ignore other WaitAny fires
                self._ready.append((proc, waitable))

    def _run_ready(self) -> None:
        while self._ready:
            proc, sendval = self._ready.popleft()
            if not proc.alive:
                continue
            self._step(proc, sendval)

    def _step(self, proc: Process, sendval) -> None:
        while True:
            try:
                yielded = proc.generator.send(sendval)
            except StopIteration as stop:
                proc.alive = False
                proc.result = stop.value
                self._live_count -= 1
                return
            if isinstance(yielded, WaitAny):
                done = next((w for w in yielded.waitables if w.done), None)
                if done is not None:
                    sendval = done
                    continue
                token = proc._wait_token
                for w in yielded.waitables:
                    w.waiters.append((proc, token))
                return
            if isinstance(yielded, Waitable):
                if yielded.done:
                    sendval = yielded
                    continue
                yielded.waiters.append((proc, proc._wait_token))
                return
            raise TypeError(
                f"process {proc.name!r} yielded {yielded!r}; expected a "
                "Waitable or WaitAny"
            )
